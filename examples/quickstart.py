#!/usr/bin/env python3
"""Quickstart: the full paper pipeline on one design, end to end.

1. Synthesize a Table 2-style design and fit an FPGA architecture.
2. Sweep placer options to generate placements; route each for ground truth.
3. Train the cGAN forecaster on the image pairs.
4. Forecast the heat map of a held-out placement and compare with the
   routed ground truth (per-pixel accuracy, congestion score, speedup).

Run:  python examples/quickstart.py [scale]     (scale: smoke|default|paper)
Artifacts land in examples/out/quickstart/.
"""

import sys
from pathlib import Path

from repro.config import get_scale
from repro.flows import build_design_bundle, measure_speedup
from repro.fpga.generators import scaled_suite
from repro.gan import (
    Pix2Pix,
    Pix2PixConfig,
    Pix2PixTrainer,
    image_congestion_score,
    per_pixel_accuracy,
)
from repro.viz import difference_image, write_png

OUT_DIR = Path(__file__).parent / "out" / "quickstart"


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    spec = scaled_suite(scale)[0]  # diffeq1 at this scale
    print(f"[1/4] building dataset for {spec.name}: {spec.num_luts} LUTs, "
          f"{spec.num_nets} nets, {scale.placements_per_design} placements")
    bundle = build_design_bundle(spec, scale, seed=1)
    print(f"      grid {bundle.arch.width}x{bundle.arch.height}, "
          f"channel width {bundle.channel_width}, "
          f"images {bundle.layout.image_size}px")

    train = bundle.dataset[:-2]
    test = bundle.dataset[len(bundle.dataset) - 2:]
    print(f"[2/4] training cGAN on {len(train)} pairs "
          f"({scale.epochs} epochs)")
    model = Pix2Pix(Pix2PixConfig.from_scale(
        scale, image_size=bundle.layout.image_size))
    trainer = Pix2PixTrainer(model)
    history = trainer.fit(train, scale.epochs, log_every=1)

    print("[3/4] forecasting held-out placements")
    for index, sample in enumerate(test):
        forecast = trainer.forecast(sample)
        accuracy = per_pixel_accuracy(forecast, sample.y_image)
        predicted = image_congestion_score(forecast, bundle.channel_mask)
        print(f"      placement {index}: per-pixel acc {accuracy:.1%}, "
              f"predicted congestion {predicted:.3f} "
              f"(true {sample.true_congestion:.3f})")
        write_png(OUT_DIR / f"test{index}_input_place.png",
                  sample.place_image)
        write_png(OUT_DIR / f"test{index}_forecast.png", forecast)
        write_png(OUT_DIR / f"test{index}_truth.png", sample.y_image)
        write_png(OUT_DIR / f"test{index}_error.png",
                  difference_image(forecast, sample.y_image))

    report = measure_speedup(bundle, trainer)
    print(f"[4/4] speedup: routing {report.mean_route_seconds * 1e3:.0f} ms "
          f"vs inference {report.mean_infer_seconds * 1e3:.1f} ms "
          f"-> {report.speedup:.0f}x")
    print(f"done; images in {OUT_DIR}")


if __name__ == "__main__":
    main()
