#!/usr/bin/env python3
"""Constrained placement exploration by inference (paper Figure 9).

Train a forecaster on the ode design's placement sweep, then — using
forecasts only — pick the placements with (a) overall max congestion,
(b) overall min congestion, and minimum congestion in the (c) upper,
(d) lower and (e) right regions of the floorplan.  Each choice is compared
against the routed ground truth.

Run:  python examples/placement_exploration.py [scale]
Artifacts land in examples/out/exploration/.
"""

import sys
from pathlib import Path

from repro.config import get_scale
from repro.flows import build_suite_bundles, run_exploration
from repro.gan import Pix2Pix, Pix2PixConfig, Pix2PixTrainer
from repro.gan.dataset import Dataset
from repro.viz import write_png

OUT_DIR = Path(__file__).parent / "out" / "exploration"


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    # Train across several designs — cross-design diversity is what teaches
    # the model the placement-to-congestion mapping (see EXPERIMENTS.md) —
    # then explore the ode design's placement pool, as in Figure 9.
    designs = ["diffeq1", "raygentop", "OR1200", "ode"]
    print(f"building placement pools for {designs} "
          f"({scale.placements_per_design} placements each)")
    bundles = build_suite_bundles(scale, seed=3, designs=designs)
    bundle = bundles["ode"]
    train = Dataset()
    for b in bundles.values():
        train.extend(b.dataset)

    model = Pix2Pix(Pix2PixConfig.from_scale(
        scale, image_size=bundle.layout.image_size))
    trainer = Pix2PixTrainer(model)
    epochs = scale.epochs * 2
    print(f"training on {len(train)} pairs ({epochs} epochs)")
    trainer.fit(train, epochs)

    outcome = run_exploration(bundle, trainer)
    print(f"\nforecast-vs-truth rank correlation (overall congestion): "
          f"rho = {outcome.rank_correlation:.2f}\n")
    print(f"{'objective':<12} {'chosen':>6} {'pred':>7} {'true':>7} "
          f"{'oracle':>6} {'regret':>7}")
    for obj in outcome.outcomes:
        print(f"{obj.objective:<12} {obj.chosen_index:>6} "
              f"{obj.predicted_score:>7.3f} {obj.true_score:>7.3f} "
              f"{obj.best_true_index:>6} {obj.regret:>7.4f}")
        sample = bundle.dataset[obj.chosen_index]
        forecast = trainer.forecast(sample)
        write_png(OUT_DIR / f"{obj.objective}_place.png", sample.place_image)
        write_png(OUT_DIR / f"{obj.objective}_forecast.png", forecast)
        write_png(OUT_DIR / f"{obj.objective}_truth.png", sample.y_image)
    print(f"\nimages for each Figure 9 column written to {OUT_DIR}")


if __name__ == "__main__":
    main()
