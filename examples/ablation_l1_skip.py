#!/usr/bin/env python3
"""L1 and skip-connection ablation (paper Section 5.3, Figures 7 and 8).

Trains the three model variants the paper compares on an OR1200-style
design — full model (L1 + all skips), no-L1, and single-skip — then writes
the Figure 7 inference images and prints the Figure 8 loss statistics
(final losses and the "training noise" of each curve).

Run:  python examples/ablation_l1_skip.py [scale]
Artifacts land in examples/out/ablation/.
"""

import sys
from pathlib import Path

from repro.config import get_scale
from repro.flows import build_design_bundle, run_ablation
from repro.fpga.generators import scaled_suite
from repro.viz import write_png

OUT_DIR = Path(__file__).parent / "out" / "ablation"


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    spec = next(s for s in scaled_suite(scale) if s.name == "OR1200")
    print(f"building dataset for {spec.name}")
    bundle = build_design_bundle(spec, scale, seed=7)

    print(f"training 3 variants x {scale.epochs} epochs")
    results = run_ablation(scale, bundle, epochs=scale.epochs, seed=0)

    write_png(OUT_DIR / "truth.png",
              next(iter(results.values())).truth01)
    print(f"\n{'variant':<14} {'acc':>7} {'G loss':>9} {'D loss':>9} "
          f"{'G noise':>9}")
    for name, result in results.items():
        print(f"{name:<14} {result.accuracy:>7.1%} "
              f"{result.history.g_total[-1]:>9.3f} "
              f"{result.history.d_total[-1]:>9.3f} "
              f"{result.loss_noise:>9.4f}")
        safe = name.replace("/", "").replace(" ", "_")
        write_png(OUT_DIR / f"forecast_{safe}.png", result.forecast01)

    print("\nloss curves (G total per epoch):")
    for name, result in results.items():
        curve = " ".join(f"{v:.2f}" for v in result.history.g_total)
        print(f"  {name:<14} {curve}")
    print(f"\nFigure 7 images written to {OUT_DIR}")


if __name__ == "__main__":
    main()
