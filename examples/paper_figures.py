#!/usr/bin/env python3
"""Regenerate the paper's qualitative figures (Figures 2 and 4).

Figure 2 — the motivating example: img_floor, img_place, img_route
(ground truth after routing) and the img_route - img_place difference,
for one placement of a small design on the Figure 2-style architecture
(memory column 3, multiplier column 7, 8-port I/O pads).

Figure 4 — connectivity images of two different placements of the same
netlist.

Run:  python examples/paper_figures.py [scale]
Artifacts land in examples/out/figures/.
"""

import sys
from pathlib import Path

from repro.config import get_scale
from repro.fpga import (
    PathFinderRouter,
    Placement,
    PlacerOptions,
    SimulatedAnnealingPlacer,
    generate_design,
    paper_architecture,
)
from repro.fpga.generators import minimum_architecture_size, scaled_suite
from repro.fpga.router import estimate_channel_width
from repro.viz import (
    FloorplanLayout,
    difference_image,
    minimum_image_size,
    render_connectivity,
    render_floorplan,
    render_placement,
    render_routing,
    write_png,
)

OUT_DIR = Path(__file__).parent / "out" / "figures"


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    spec = scaled_suite(scale)[0]
    netlist = generate_design(spec, cluster_size=scale.cluster_size, seed=2)
    width = minimum_architecture_size(netlist)
    arch = paper_architecture(width, channel_width=scale.channel_width)
    print(f"design {spec.name}: grid {arch.width}x{arch.height}, "
          f"memory columns {arch.mem_columns}, "
          f"multiplier columns {arch.mul_columns}")

    result = SimulatedAnnealingPlacer(
        netlist, arch, PlacerOptions(seed=4)).place()
    channel_width = estimate_channel_width(netlist, arch, result.placement)
    arch = paper_architecture(width, channel_width=channel_width)
    placement = Placement(netlist, arch, list(result.placement.site_of))
    routing = PathFinderRouter(netlist, arch, placement).route()
    print(f"routing {'succeeded' if routing.converged else 'overflowed'} "
          f"with a channel width factor of {channel_width}.")

    image_size = max(scale.image_size, minimum_image_size(arch))
    layout = FloorplanLayout(arch, image_size)

    # Figure 2: floor plan, placement, routing heat map, difference.
    img_floor = render_floorplan(arch, layout)
    img_place = render_placement(placement, layout, base=img_floor)
    img_route = render_routing(placement, routing, layout,
                               place_image=img_place)
    write_png(OUT_DIR / "fig2a_img_floor.png", img_floor)
    write_png(OUT_DIR / "fig2b_img_place.png", img_place)
    write_png(OUT_DIR / "fig2d_img_route.png", img_route)
    write_png(OUT_DIR / "fig2e_route_minus_place.png",
              difference_image(img_route, img_place))
    print(f"Figure 2 panels written "
          f"(mean utilization {routing.mean_utilization:.3f}, "
          f"max {routing.max_utilization:.2f})")

    # Figure 4: connectivity images of two different placements.
    for tag, seed in (("a", 4), ("b", 12)):
        placed = SimulatedAnnealingPlacer(
            netlist, arch, PlacerOptions(seed=seed)).place().placement
        connect = render_connectivity(netlist, placed, layout)
        write_png(OUT_DIR / f"fig4{tag}_img_connect.png", connect)
    print(f"Figure 4 connectivity images written to {OUT_DIR}")


if __name__ == "__main__":
    main()
