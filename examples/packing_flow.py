#!/usr/bin/env python3
"""The full front-half of the paper's Figure 1 flow, stage by stage.

Synthesizes a flat LUT/FF netlist, packs it into CLBs (VPack-style),
places and routes the packed design, runs static timing analysis, and
renders the image pair the cGAN would consume — demonstrating every
substrate the forecaster sits on.

Run:  python examples/packing_flow.py
Artifacts land in examples/out/packing/.
"""

from pathlib import Path

from repro.fpga import (
    PathFinderRouter,
    Placement,
    PlacerOptions,
    SimulatedAnnealingPlacer,
    TimingAnalyzer,
    generate_flat_design,
    pack,
    paper_architecture,
)
from repro.fpga.generators import minimum_architecture_size
from repro.fpga.packing import PrimitiveType
from repro.fpga.router import estimate_channel_width
from repro.viz import (
    FloorplanLayout,
    minimum_image_size,
    render_connectivity,
    render_placement,
    render_routing,
    write_png,
)

OUT_DIR = Path(__file__).parent / "out" / "packing"


def main() -> None:
    print("[1/5] synthesizing flat netlist (120 LUTs, 40 FFs, 380 nets)")
    flat = generate_flat_design("packdemo", num_luts=120, num_ffs=40,
                                num_nets=380, seed=11)
    print(f"      {len(flat.primitives)} primitives "
          f"({flat.count_type(PrimitiveType.LUT)} LUTs, "
          f"{flat.count_type(PrimitiveType.FF)} FFs, "
          f"{flat.count_type(PrimitiveType.IO)} I/Os), "
          f"{len(flat.nets)} nets")

    print("[2/5] packing into CLBs (cluster size 4, VPack-style)")
    packed = pack(flat, cluster_size=4)
    netlist = packed.netlist
    print(f"      {len(packed.clusters)} CLBs; "
          f"{packed.absorbed_nets} nets absorbed inside clusters "
          f"({packed.absorption:.0%}), {packed.external_nets} external")

    print("[3/5] placing (simulated annealing)")
    width = minimum_architecture_size(netlist)
    arch = paper_architecture(width, channel_width=16)
    placed = SimulatedAnnealingPlacer(
        netlist, arch, PlacerOptions(seed=7)).place()
    print(f"      grid {width}x{width}, HPWL cost "
          f"{placed.initial_cost:.0f} -> {placed.final_cost:.0f} "
          f"({placed.improvement:.0%} better)")

    print("[4/5] routing (PathFinder) and timing")
    channel_width = estimate_channel_width(netlist, arch, placed.placement)
    arch = paper_architecture(width, channel_width=channel_width)
    placement = Placement(netlist, arch, list(placed.placement.site_of))
    routing = PathFinderRouter(netlist, arch, placement).route()
    timing = TimingAnalyzer(netlist, placement, routing=routing).report()
    print(f"      channel width {channel_width}, "
          f"{'converged' if routing.converged else 'overflowed'} in "
          f"{routing.iterations} iterations, wirelength "
          f"{routing.wirelength}")
    print(f"      critical path: {timing.depth} blocks, "
          f"delay {timing.critical_delay:.2f}")

    print("[5/5] rendering the cGAN image pair")
    layout = FloorplanLayout(arch, minimum_image_size(arch))
    place_img = render_placement(placement, layout)
    route_img = render_routing(placement, routing, layout,
                               place_image=place_img)
    connect_img = render_connectivity(netlist, placement, layout)
    write_png(OUT_DIR / "img_place.png", place_img)
    write_png(OUT_DIR / "img_route.png", route_img)
    write_png(OUT_DIR / "img_connect.png", connect_img)
    print(f"done; images in {OUT_DIR} "
          f"(mean utilization {routing.mean_utilization:.3f})")


if __name__ == "__main__":
    main()
