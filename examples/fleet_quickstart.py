#!/usr/bin/env python3
"""Fleet quickstart: artifact store -> job pool -> routed serving -> obs.

1. Build a sharded dataset store and a trained checkpoint, then ingest
   both into one content-addressed artifact store (every blob named by
   its sha256; identical content dedups for free).
2. Fan forecast jobs over a multi-process worker pool via the on-disk
   job spool, twice — serial and 3 workers — and show the artifact
   digests are identical: forecast bytes are worker-count invariant.
3. Serve the same checkpoint through the fleet router — N workers
   behind one front with a shared forecast cache, admission control,
   and queue-depth backpressure — and query it over real HTTP.
4. Render one dashboard frame (``repro obs top``) over the fleet's
   published telemetry.

Run:  python examples/fleet_quickstart.py [scale]  (scale: smoke|default|paper)
Artifacts land in examples/out/fleet_quickstart/.
"""

import json
import shutil
import sys
import urllib.request
from pathlib import Path

import numpy as np

from repro.config import get_scale
from repro.data import ShardedStore
from repro.fleet import ArtifactStore, FleetRouter, JobStore, WorkerPool
from repro.gan import Dataset, Pix2Pix, Pix2PixConfig, Sample
from repro.obs.dashboard import Dashboard, DirectorySource
from repro.serve import ForecastCache, ForecastServer

OUT_DIR = Path(__file__).parent / "out" / "fleet_quickstart"
SIZE = 16
SAMPLES = 6


def make_dataset(count: int = SAMPLES) -> Dataset:
    rng = np.random.default_rng(11)
    return Dataset([
        Sample(design="demo",
               x=rng.normal(size=(4, SIZE, SIZE)).astype(np.float32),
               y=np.tanh(rng.normal(size=(3, SIZE, SIZE))
                         ).astype(np.float32),
               true_congestion=0.5)
        for _ in range(count)
    ])


def drain(tag: str, workers: int, ckpt_dir: Path, store_dir: Path) -> list:
    """Submit one forecast job per sample and drain the spool."""
    spool = OUT_DIR / f"jobs-{tag}"
    jobs = JobStore(spool)
    for index in range(SAMPLES):
        jobs.submit("forecast", {
            "checkpoints": str(ckpt_dir), "model": "demo",
            "input": {"store": str(store_dir), "index": index},
            "artifacts": str(OUT_DIR / f"art-{tag}")})
    counts = WorkerPool(spool, workers=workers).run_until_drained(timeout=300)
    assert counts["failed"] == 0
    return [job.result["artifact"] for job in jobs.jobs("done")]


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    if OUT_DIR.exists():
        shutil.rmtree(OUT_DIR)
    OUT_DIR.mkdir(parents=True)

    print("[1/4] dataset store + checkpoint -> content-addressed artifacts")
    store_dir = OUT_DIR / "store"
    ShardedStore.from_dataset(store_dir, make_dataset(), shard_size=3)
    model = Pix2Pix(Pix2PixConfig.from_scale(scale, image_size=SIZE, seed=0))
    ckpt_dir = OUT_DIR / "ckpts"
    ckpt_dir.mkdir()
    model.save(ckpt_dir / "demo.npz")
    artifacts = ArtifactStore(OUT_DIR / "registry")
    ckpt_ref = artifacts.put_checkpoint(ckpt_dir / "demo.npz")
    data_ref = artifacts.put_dataset_store(store_dir)
    again = artifacts.put_checkpoint(ckpt_dir / "demo.npz")
    assert again.digest == ckpt_ref.digest          # dedup: same bytes
    print(f"      checkpoint {ckpt_ref.digest[:12]} "
          f"({ckpt_ref.size_bytes} bytes)")
    print(f"      dataset    {data_ref.digest[:12]} "
          f"({len(data_ref.files)} files)")
    print(f"      verify: {len(artifacts.verify())} corrupt blob(s)")

    print("[2/4] forecast jobs: serial drain vs 3-worker pool")
    serial = drain("serial", 1, ckpt_dir, store_dir)
    fleet = drain("fleet", 3, ckpt_dir, store_dir)
    assert serial == fleet
    print(f"      {len(fleet)} forecasts, digests byte-identical "
          f"across worker counts:")
    for digest in fleet[:3]:
        print(f"        {digest[:12]}")

    print("[3/4] fleet serving front: 2 workers, shared cache, HTTP")
    obs_dir = OUT_DIR / "telemetry"
    router = FleetRouter.local(ckpt_dir, workers=2, mode="thread",
                               cache=ForecastCache(64), obs_dir=obs_dir,
                               publish_interval=0.2)
    sample = make_dataset()[0]
    with router, ForecastServer(router, port=0) as server:
        body = json.dumps({"model": "demo",
                           "input": sample.x.tolist()}).encode()
        request = urllib.request.Request(
            f"{server.url}/v1/forecast", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as response:
            cold = json.loads(response.read())
        with urllib.request.urlopen(request) as response:
            warm = json.loads(response.read())
        with urllib.request.urlopen(f"{server.url}/fleet/status") as response:
            status = json.loads(response.read())
    assert cold["cached"] is False and warm["cached"] is True
    assert cold["forecast"] == warm["forecast"]
    routed = status["stats"]["routed_by_worker"]
    print(f"      cold {cold['latency_ms']:.2f} ms, cached repeat "
          f"{warm['latency_ms']:.2f} ms (same bytes)")
    print(f"      routed by worker: {routed}, "
          f"inflight cap {status['stats']['max_inflight']}")

    print("[4/4] one dashboard frame over the fleet telemetry")
    # The router now publishes breaker/retry/restart series too; raise
    # the preview cap so the routing counters stay visible in the frame.
    dashboard = Dashboard(DirectorySource(obs_dir), color=False,
                          series_limit=24)
    dashboard.tick()
    frame = dashboard.frame()
    print("\n".join(f"  | {line}" for line in frame.splitlines()))
    print(f"done; artifacts in {OUT_DIR}")


if __name__ == "__main__":
    main()
