#!/usr/bin/env python3
"""Fleet observability: a sweep's merged telemetry, a dashboard, an alert.

1. Run a two-spec sweep; every worker publishes its metrics registry as
   an atomic JSON snapshot under ``<root>/telemetry/``.
2. Aggregate the snapshots into one logical registry — counters sum,
   histograms merge bucket-by-bucket — and render the merged Prometheus
   text plus the per-worker drill-down (what ``repro obs agg`` prints).
3. Render one frame of the live dashboard (``repro obs top``) over the
   sweep directory.
4. Serve the trained model with a drift monitor seeded from the
   training-time reference profile, push drifted traffic through it,
   and watch a declarative alert rule fire into ``alerts.jsonl``.

Run:  python examples/obs_fleet.py [scale]  (scale: smoke|default|paper)
Artifacts land in examples/out/fleet/.
"""

import json
import shutil
import sys
from pathlib import Path

import numpy as np

from repro.config import get_scale
from repro.gan import Dataset, Sample
from repro.obs import (
    AlertManager,
    AlertRule,
    aggregate_dir,
    flatten_export,
)
from repro.obs.dashboard import Dashboard, DirectorySource
from repro.obs.drift import DriftMonitor, ReferenceProfile
from repro.obs.metrics import MetricsRegistry
from repro.serve import BatchingEngine, ModelRegistry
from repro.train import EvalSpec, TrainSpec
from repro.train.sweep import run_sweep
from repro.viz.colors import utilization_to_rgb

OUT_DIR = Path(__file__).parent / "out" / "fleet"
SIZE = 16


def make_dataset(count: int = 8) -> Dataset:
    rng = np.random.default_rng(11)
    return Dataset([
        Sample(design="demo",
               x=rng.normal(size=(4, SIZE, SIZE)).astype(np.float32),
               y=np.tanh(rng.normal(size=(3, SIZE, SIZE))
                         ).astype(np.float32),
               true_congestion=0.5)
        for _ in range(count)
    ])


def spec_for(name: str, seed: int, scale_name: str,
             archive: Path) -> TrainSpec:
    return TrainSpec(name=name, data=f"archive:{archive}",
                     scale=scale_name, seed=seed, epochs=2, order="stream",
                     model={"base_filters": 4, "disc_filters": 4},
                     eval=EvalSpec(every_epochs=1))


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    if OUT_DIR.exists():
        shutil.rmtree(OUT_DIR)
    root = OUT_DIR / "sweep"
    root.mkdir(parents=True)

    print("[1/4] sweep of 2 runs, each publishing worker telemetry")
    archive = OUT_DIR / "data.npz"
    make_dataset().save(archive)
    specs = [spec_for("fleet-a", 3, scale.name, archive),
             spec_for("fleet-b", 4, scale.name, archive)]
    rows = run_sweep(specs, root, workers=2, log=print)
    assert all(row["status"] == "completed" for row in rows)

    print("[2/4] merged fleet telemetry (what `repro obs agg` prints)")
    fleet = aggregate_dir(root)
    totals = flatten_export(fleet.merged)
    print(f"  workers: {', '.join(fleet.workers)}")
    print(f"  fleet train_steps_total: {totals['train_steps_total']:.0f}")
    prometheus = fleet.render_prometheus(per_worker=True)
    (OUT_DIR / "fleet.prom").write_text(prometheus)
    drilldown = [line for line in prometheus.splitlines()
                 if line.startswith("train_steps_total{")]
    for line in drilldown:
        print(f"  {line}")
    summary = json.loads((root / "sweep.json").read_text())
    assert summary["telemetry"]["per_worker_steps"]

    print("[3/4] one dashboard frame (what `repro obs top` draws)")
    dashboard = Dashboard(DirectorySource(root), color=False)
    dashboard.tick()
    frame = dashboard.frame()
    print("\n".join(f"  | {line}" for line in frame.splitlines()))

    print("[4/4] drift monitor + alert rule over the served model")
    from repro.serve.registry import load_checkpoint

    model, info = load_checkpoint(root / "fleet-a" / "export" / "fleet-a.npz")
    registry = ModelRegistry()
    registry.register("fleet-a", model)
    metrics = MetricsRegistry()
    monitor = DriftMonitor(metrics=metrics, window=32)
    monitor.set_reference("fleet-a", ReferenceProfile.load(
        root / "fleet-a" / "export" / "fleet-a-reference.json"))
    rules = [AlertRule(
        name="forecast-drift",
        metric="serve_drift_score_shift{model=fleet-a}",
        op=">", value=0.5, severity="page",
        message="hotspot-score distribution far from training profile")]
    manager = AlertManager(rules, log_path=OUT_DIR / "alerts.jsonl",
                           metrics=metrics)
    engine = BatchingEngine(registry, metrics=metrics, drift=monitor)
    rng = np.random.default_rng(5)
    with engine:
        # Normal traffic first: the engine feeds every forecast image to
        # the monitor, and the scores sit where the reference expects.
        for _ in range(8):
            engine.forecast(
                "fleet-a",
                rng.normal(size=(4, SIZE, SIZE)).astype(np.float32))
    # Then inject forecasts far from the training profile (all-cold heat
    # maps; the monitor only sees images, so synthesize them directly).
    cold = np.broadcast_to(utilization_to_rgb(0.05), (SIZE, SIZE, 3))
    for index in range(48):
        monitor.observe("fleet-a", cold, digest=f"cold-{index}")
    transitions = manager.evaluate(flatten_export(metrics.export()))
    for event in transitions:
        print(f"  ALERT {event.state}: {event.rule} "
              f"({rules[0].describe()}, value {event.value:.2f})")
    assert any(event.state == "firing" for event in transitions)
    status = monitor.status()["fleet-a"]
    print(f"  drift status: shift {status['score_shift']:.2f}, "
          f"novelty rate {status['novelty_rate']:.2f}")
    print(f"  transitions logged to {OUT_DIR / 'alerts.jsonl'}")
    print("done.")


if __name__ == "__main__":
    main()
