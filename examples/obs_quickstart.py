#!/usr/bin/env python3
"""Observability quickstart: one instrumented run, four views of it.

1. Train a tiny model with telemetry and span tracing enabled — timing
   events land in ``telemetry.jsonl``, spans in ``trace.jsonl``, and
   (the whole point) the model artifacts are byte-identical to an
   uninstrumented run's.
2. Read the run back: the throughput summary and the span table, the
   same aggregates ``repro obs summary`` / ``repro obs trace`` print.
3. Export the span log as Chrome ``trace_event`` JSON for
   ``chrome://tracing`` / Perfetto.
4. Profile the model per layer (wall time + gemm counts), and render a
   serving engine's metrics registry as Prometheus text.

Run:  python examples/obs_quickstart.py [scale]  (scale: smoke|default|paper)
Artifacts land in examples/out/obs/.
"""

import shutil
import sys
from pathlib import Path

import numpy as np

from repro.config import get_scale
from repro.gan import Dataset, Sample
from repro.obs import (
    Profiler,
    format_span_summary,
    format_telemetry_summary,
    read_spans,
    read_telemetry,
    summarize_spans,
    summarize_telemetry,
    write_chrome_trace,
)
from repro.serve import BatchingEngine, ForecastCache, ModelRegistry
from repro.train import EvalSpec, Runner, TrainSpec

OUT_DIR = Path(__file__).parent / "out" / "obs"
SIZE = 16


def make_dataset(count: int = 8) -> Dataset:
    rng = np.random.default_rng(7)
    return Dataset([
        Sample(design="demo",
               x=rng.normal(size=(4, SIZE, SIZE)).astype(np.float32),
               y=np.tanh(rng.normal(size=(3, SIZE, SIZE))
                         ).astype(np.float32),
               true_congestion=0.5)
        for _ in range(count)
    ])


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    if OUT_DIR.exists():
        shutil.rmtree(OUT_DIR)
    dataset = make_dataset()

    print("[1/4] instrumented training run (telemetry + span tracing)")
    spec = TrainSpec(name="demo", data="inline", scale=scale.name, seed=7,
                     epochs=max(2, scale.epochs // 2), order="shuffle",
                     model={"base_filters": 4, "disc_filters": 4},
                     eval=EvalSpec(every_epochs=1))
    runner = Runner.create(spec, OUT_DIR / "runs", dataset=dataset,
                           trace=True)
    result = runner.run()
    run_dir = OUT_DIR / "runs" / "demo"
    print(f"  finished at step {result.global_step}; "
          f"telemetry + trace in {run_dir}")

    print("[2/4] reading it back (what `repro obs summary/trace` print)")
    print(format_telemetry_summary(
        summarize_telemetry(read_telemetry(run_dir / "telemetry.jsonl"))))
    spans = read_spans(run_dir / "trace.jsonl")
    print(format_span_summary(summarize_spans(spans)))

    print("[3/4] exporting for chrome://tracing")
    chrome_path = OUT_DIR / "trace_chrome.json"
    count = write_chrome_trace(spans, chrome_path)
    print(f"  wrote {count} traceEvents to {chrome_path}")

    print("[4/4] per-layer profile + Prometheus metrics")
    x = np.stack([sample.x for sample in dataset.samples[:2]])
    with Profiler().attach(runner.model.generator, prefix="gen.") as prof:
        runner.model.generator.forward(x)
        print(prof.format_table(top=5))
        totals = prof.snapshot()["totals"]
    print(f"  generator forward: {totals['gemms']} gemms "
          f"in {totals['ms']:.1f} ms")

    registry = ModelRegistry()
    registry.register("demo", runner.model)
    engine = BatchingEngine(registry, max_batch=4,
                            cache=ForecastCache(16))
    with engine:
        engine.forecast("demo", dataset.samples[0].x)
        engine.forecast("demo", dataset.samples[0].x)  # cache hit
        text = engine.metrics.render_prometheus()
    prometheus_path = OUT_DIR / "metrics.prom"
    prometheus_path.write_text(text)
    shown = [line for line in text.splitlines()
             if line.startswith(("# TYPE", "serve_requests_total ",
                                 "serve_cache_hits_total "))]
    print("\n".join(f"  {line}" for line in shown))
    print(f"full exposition in {prometheus_path}")


if __name__ == "__main__":
    main()
