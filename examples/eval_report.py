#!/usr/bin/env python3
"""Evaluation walkthrough: build -> train -> eval -> baselines -> compare.

1. Build a small two-design sharded dataset (2 generation workers).
2. Train the cGAN briefly from the streaming loader and checkpoint it.
3. Evaluate the checkpoint with the streaming runner — once over
   everything, once on the leave-one-design-out generalization split —
   and write deterministic JSON reports.
4. Score the non-learned baselines on the same split for context.
5. Re-run the evaluation and diff the two reports with
   ``compare_reports`` (they must be byte-identical).

Run:  python examples/eval_report.py [scale]   (scale: smoke|default|paper)
Artifacts land in examples/out/eval/.
"""

import shutil
import sys
from pathlib import Path

from repro.config import get_scale
from repro.data import ShardedStore, StreamingLoader, build_design_store
from repro.eval import (
    BASELINES,
    CheckpointForecaster,
    compare_reports,
    evaluate_store,
    evaluation_report,
    make_baseline,
    parse_split,
    render_report,
    write_report,
)
from repro.flows import suite_image_size
from repro.fpga.generators import scaled_suite
from repro.gan import Pix2Pix, Pix2PixConfig, Pix2PixTrainer

OUT_DIR = Path(__file__).parent / "out" / "eval"
WORKERS = 2


def metric_table(reports: dict[str, dict]) -> str:
    names = sorted(next(iter(reports.values()))["metrics"])
    width = max(len(n) for n in names)
    lines = ["    " + " " * width + "  "
             + "  ".join(f"{label:>14}" for label in reports)]
    for name in names:
        cells = "  ".join(f"{report['metrics'][name]:14.4f}"
                          for report in reports.values())
        lines.append(f"    {name:<{width}}  {cells}")
    return "\n".join(lines)


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    store_dir = OUT_DIR / "store"
    if store_dir.exists():
        shutil.rmtree(store_dir)

    specs = scaled_suite(scale)[:2]
    print(f"[1/5] building {[s.name for s in specs]} "
          f"({scale.placements_per_design} placements each, "
          f"{WORKERS} workers)")
    image_size = suite_image_size(scale, specs, seed=1)
    store = None
    for spec in specs:
        store = build_design_store(
            spec, scale, store_dir, seed=1, workers=WORKERS,
            shard_size=max(2, scale.placements_per_design // 2),
            image_size=image_size, store=store)

    print(f"[2/5] training ({scale.epochs} epochs, streamed) and "
          f"checkpointing")
    model = Pix2Pix(Pix2PixConfig.from_scale(
        scale, image_size=store.image_size, seed=1))
    Pix2PixTrainer(model, seed=1).fit_stream(
        StreamingLoader(store, seed=1, augment=True), scale.epochs)
    checkpoint = OUT_DIR / "model.npz"
    model.save(checkpoint)

    print("[3/5] evaluating the checkpoint (all samples + holdout split)")
    forecaster = CheckpointForecaster.from_checkpoint(checkpoint)
    holdout = parse_split(f"holdout:{specs[-1].name}")
    reports = {}
    for label, split in (("all", parse_split("all")), ("holdout", holdout)):
        result = evaluate_store(store, forecaster, split=split)
        reports[label] = evaluation_report(store, result,
                                           forecaster.identity, split)
        write_report(OUT_DIR / f"report_{label}.json", reports[label])
    print(f"    reports written to {OUT_DIR}/report_*.json")

    print(f"[4/5] scoring baselines on the holdout split "
          f"({', '.join(sorted(BASELINES))})")
    holdout_reports = {"cGAN": reports["holdout"]}
    for name in sorted(BASELINES):
        baseline, identity = make_baseline(name, store, holdout)
        result = evaluate_store(store, baseline, split=holdout)
        holdout_reports[name] = evaluation_report(store, result, identity,
                                                  holdout)
    print(metric_table(holdout_reports))

    print("[5/5] re-running the evaluation and diffing the reports")
    rerun = evaluation_report(
        store, evaluate_store(store, forecaster), forecaster.identity,
        parse_split("all"))
    identical = render_report(rerun) == render_report(reports["all"])
    comparison = compare_reports(reports["all"], rerun)
    print(f"    byte-identical re-run: {identical}")
    print(f"    compare: "
          f"{'ok' if comparison.ok else comparison.format()}")
    if not (identical and comparison.ok):
        raise SystemExit("evaluation was not reproducible")


if __name__ == "__main__":
    main()
