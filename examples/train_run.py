#!/usr/bin/env python3
"""Training-run quickstart: run -> interrupt -> status -> resume -> verify.

1. Build a tiny in-memory dataset and describe a run with a
   ``TrainSpec`` (streaming order, augmentation, per-step checkpoints,
   an eval hook tracking best NRMS).
2. Execute it to completion in one run directory, then execute the same
   spec again but kill it mid-epoch (``stop_after_steps``).
3. Read the interrupted run's progress the way ``repro train status``
   does — from the JSON artifacts alone, no numpy.
4. Resume and verify exact resume: the loss log and the exported
   checkpoint weights are bitwise-identical to the uninterrupted run.

Run:  python examples/train_run.py [scale]   (scale: smoke|default|paper)
Artifacts land in examples/out/train/.
"""

import shutil
import sys
from pathlib import Path

import numpy as np

from repro.config import get_scale
from repro.flows import build_design_bundle
from repro.fpga.generators import scaled_suite
from repro.train import EvalSpec, Runner, TrainSpec
from repro.train.status import format_run_status, read_run_status

OUT_DIR = Path(__file__).parent / "out" / "train"


def make_spec(name: str, scale) -> TrainSpec:
    return TrainSpec(
        name=name,
        data="inline",
        scale=scale.name,
        seed=3,
        epochs=max(2, scale.epochs // 2),
        order="stream",
        augment=True,
        checkpoint_every_steps=4,
        eval=EvalSpec(every_epochs=1),
    )


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    runs = OUT_DIR / "runs"
    if runs.exists():
        shutil.rmtree(runs)

    print("[1/4] generating a small dataset (placements -> routed pairs)")
    bundle = build_design_bundle(scaled_suite(scale)[0], scale,
                                 num_placements=4, seed=3)
    dataset = bundle.dataset

    print("[2/4] uninterrupted run, then the same spec killed mid-epoch")
    straight = Runner.create(make_spec("straight", scale), runs,
                             dataset=dataset)
    result = straight.run()
    print(f"  straight:  {result.status} at step {result.global_step}, "
          f"best nrms {result.best_value:.4f}")
    stop_at = result.global_step // 2 + 1   # mid-epoch, off the ckpt grid
    killed = Runner.create(make_spec("killed", scale), runs,
                           dataset=dataset)
    partial = killed.run(stop_after_steps=stop_at)
    print(f"  killed:    {partial.status} at step {partial.global_step}")

    print("[3/4] status from the run directory (stdlib-only read)")
    print(format_run_status(read_run_status(runs / "killed")))

    print("[4/4] resume and verify bitwise-exact recovery")
    resumed = Runner.resume(runs / "killed", dataset=dataset).run()
    print(f"  resumed:   {resumed.status} at step {resumed.global_step}")
    losses_a = (runs / "straight" / "losses.jsonl").read_bytes()
    losses_b = (runs / "killed" / "losses.jsonl").read_bytes()
    assert losses_a == losses_b, "loss logs diverged"
    with np.load(runs / "straight" / "export" / "straight.npz") as a, \
            np.load(runs / "killed" / "export" / "killed.npz") as b:
        keys = [key for key in a.files if key != "config_json"]
        for key in keys:
            assert np.array_equal(a[key], b[key]), key
    print(f"  exact resume verified: losses.jsonl and {len(keys)} weight "
          f"arrays identical")
    print(f"run directories in {runs}")


if __name__ == "__main__":
    main()
