#!/usr/bin/env python3
"""Data pipeline quickstart: parallel build -> verify -> stream-train.

1. Build a sharded dataset for two designs with a 2-process worker pool
   (per-placement route-and-render work, deterministically seeded).
2. Print the manifest summary and verify shard integrity.
3. Train the cGAN from the streaming loader — shard-aware shuffling plus
   dihedral augmentation, never holding the whole corpus in memory.
4. Merge the store with a converted legacy archive to show corpus growth.

Run:  python examples/data_pipeline.py [scale]   (scale: smoke|default|paper)
Artifacts land in examples/out/data/.
"""

import shutil
import sys
from pathlib import Path

from repro.config import get_scale
from repro.data import ShardedStore, StreamingLoader, build_design_store
from repro.flows import suite_image_size
from repro.fpga.generators import scaled_suite
from repro.gan import Pix2Pix, Pix2PixConfig, Pix2PixTrainer

OUT_DIR = Path(__file__).parent / "out" / "data"
WORKERS = 2


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    specs = scaled_suite(scale)[:2]
    store_dir = OUT_DIR / "store"
    if store_dir.exists():
        shutil.rmtree(store_dir)

    print(f"[1/4] building {[s.name for s in specs]} with {WORKERS} "
          f"workers ({scale.placements_per_design} placements each)")
    image_size = suite_image_size(scale, specs, seed=1)
    store = None
    for spec in specs:
        store = build_design_store(
            spec, scale, store_dir, seed=1, workers=WORKERS,
            shard_size=max(2, scale.placements_per_design // 2),
            image_size=image_size, store=store)

    print("[2/4] manifest summary + integrity check")
    for key, value in store.stats().items():
        print(f"    {key:>20}: {value}")
    problems = store.verify()
    print(f"    verify: {'ok' if not problems else problems}")

    print(f"[3/4] streaming training ({scale.epochs} epochs, "
          f"augmented, shard-bounded memory)")
    loader = StreamingLoader(store, seed=1, augment=True)
    model = Pix2Pix(Pix2PixConfig.from_scale(
        scale, image_size=store.image_size, seed=1))
    trainer = Pix2PixTrainer(model, seed=1)
    history = trainer.fit_stream(loader, scale.epochs,
                                 log_every=max(1, scale.epochs // 5))
    print(f"    final G loss {history.g_total[-1]:.4f}; peak residency "
          f"{loader.peak_resident_samples}/{len(loader)} samples "
          f"({loader.shard_loads} shard loads)")

    print("[4/4] legacy archive -> store conversion + merge")
    archive = OUT_DIR / "legacy.npz"
    store.load_shard(0).save(archive)           # stand-in legacy file
    converted_dir = OUT_DIR / "converted"
    merged_dir = OUT_DIR / "merged"
    for path in (converted_dir, merged_dir):
        if path.exists():
            shutil.rmtree(path)
    converted = ShardedStore.convert_archive(archive, converted_dir)
    merged = ShardedStore.create(merged_dir, shard_size=store.shard_size)
    merged.merge_from(store)
    merged.merge_from(converted)
    merged.flush()
    print(f"    merged corpus: {merged.num_samples} samples in "
          f"{merged.num_shards} shard(s); verify "
          f"{'ok' if not merged.verify() else 'FAILED'}")


if __name__ == "__main__":
    main()
