#!/usr/bin/env python3
"""Real-time congestion forecasting during simulated annealing (Section 5.4).

Trains a forecaster on one design, then re-places the design from scratch
while forecasting the routing heat map at every few annealing temperatures —
the frames of the paper's GIF demo.  Prints how the predicted congestion
falls as the annealer improves the placement.

Run:  python examples/live_forecast.py [scale]
Frames land in examples/out/realtime/.
"""

import sys
from pathlib import Path

from repro.config import get_scale
from repro.flows import build_design_bundle, live_forecast
from repro.fpga import PlacerOptions
from repro.fpga.generators import scaled_suite
from repro.gan import Pix2Pix, Pix2PixConfig, Pix2PixTrainer

OUT_DIR = Path(__file__).parent / "out" / "realtime"


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    spec = next(s for s in scaled_suite(scale) if s.name == "OR1200")
    print(f"building training data for {spec.name}")
    bundle = build_design_bundle(spec, scale, seed=5)

    model = Pix2Pix(Pix2PixConfig.from_scale(
        scale, image_size=bundle.layout.image_size))
    trainer = Pix2PixTrainer(model)
    print(f"training on {len(bundle.dataset)} pairs ({scale.epochs} epochs)")
    trainer.fit(bundle.dataset, scale.epochs)

    print("annealing a fresh placement with live forecasts...")
    frames = live_forecast(
        bundle, model,
        options=PlacerOptions(seed=99, alpha_t=0.9),
        snapshot_every=2,
        connect_weight=scale.connect_weight,
        out_dir=OUT_DIR,
        gif_path=OUT_DIR / "live_forecast.gif",
    )
    print(f"\n{'frame':>5} {'temperature':>12} {'pred congestion':>16} "
          f"{'forecast ms':>12}")
    for index, frame in enumerate(frames):
        print(f"{index:>5} {frame.temperature:>12.4f} "
              f"{frame.predicted_congestion:>16.4f} "
              f"{frame.forecast_seconds * 1e3:>12.1f}")
    start, end = frames[0], frames[-1]
    print(f"\npredicted congestion {start.predicted_congestion:.4f} -> "
          f"{end.predicted_congestion:.4f} as placement converged")
    print(f"{len(frames)} frame pairs + live_forecast.gif written to "
          f"{OUT_DIR}")


if __name__ == "__main__":
    main()
