#!/usr/bin/env python3
"""Serving quickstart: train -> checkpoint -> serve -> query, end to end.

1. Build a small dataset for one design and train the cGAN forecaster.
2. Checkpoint the model and warm-load it into a model registry.
3. Start the micro-batching engine and the HTTP API on an ephemeral port.
4. Query it with the stdlib client — cold request, cached repeat, and a
   burst of concurrent requests that shares one batched forward — then
   print the server's own metrics.

Run:  python examples/serve_quickstart.py [scale]   (scale: smoke|default|paper)
Artifacts land in examples/out/serve/.
"""

import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.config import get_scale
from repro.flows import build_design_bundle
from repro.fpga.generators import scaled_suite
from repro.gan import Pix2Pix, Pix2PixConfig, Pix2PixTrainer
from repro.serve import (
    BatchingEngine,
    ForecastCache,
    ForecastClient,
    ForecastServer,
    ModelRegistry,
)
from repro.viz import write_png

OUT_DIR = Path(__file__).parent / "out" / "serve"


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else None)
    spec = scaled_suite(scale)[0]  # diffeq1 at this scale
    print(f"[1/4] building dataset for {spec.name} "
          f"({scale.placements_per_design} placements)")
    bundle = build_design_bundle(spec, scale, seed=1)

    print(f"[2/4] training cGAN ({scale.epochs} epochs) and checkpointing")
    model = Pix2Pix(Pix2PixConfig.from_scale(
        scale, image_size=bundle.layout.image_size))
    Pix2PixTrainer(model).fit(bundle.dataset, scale.epochs)
    checkpoint = OUT_DIR / f"{spec.name}.npz"
    model.save(checkpoint)

    print("[3/4] starting registry + engine + HTTP API")
    registry = ModelRegistry.from_directory(
        OUT_DIR, log=lambda msg: print(f"      {msg}"))
    engine = BatchingEngine(registry, max_batch=8, max_wait_ms=2.0,
                            cache=ForecastCache(128))
    with ForecastServer(engine, port=0) as server:
        client = ForecastClient(port=server.port)
        health = client.healthz()
        print(f"      {server.url} is {health['status']} "
              f"(version {health['version']}, models {health['models']})")

        print("[4/4] querying")
        sample = bundle.dataset[0]
        cold = client.forecast(spec.name, x=sample.x)
        warm = client.forecast(spec.name, x=sample.x)
        print(f"      cold forecast: {cold.latency_ms:8.2f} ms  "
              f"(cached={cold.cached})")
        print(f"      warm repeat:   {warm.latency_ms:8.2f} ms  "
              f"(cached={warm.cached})")
        write_png(OUT_DIR / "forecast.png", cold.forecast)

        burst = [s.x for s in bundle.dataset]
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=len(burst)) as pool:
            replies = list(pool.map(
                lambda x: ForecastClient(port=server.port).forecast(
                    spec.name, x=x),
                burst))
        elapsed = time.perf_counter() - start
        print(f"      burst of {len(replies)} concurrent requests: "
              f"{len(replies) / elapsed:.0f} forecasts/s")

        stats = client.metrics()["engine"]
        print(f"      engine: {stats['completed']} served in "
              f"{stats['batches']} batches "
              f"(mean occupancy {stats['mean_batch_occupancy']:.1f}), "
              f"cache hit rate {stats['cache']['hit_rate']:.0%}")
    print(f"done; checkpoint and forecast in {OUT_DIR}")


if __name__ == "__main__":
    main()
