"""Experiment scale presets.

The paper trains a 256x256 pix2pix model on an Nvidia 1080Ti for 250 epochs
over 1500 image pairs produced by VPR.  This reproduction runs the *same code
paths* on CPU-only numpy, so every experiment is parameterized by an
:class:`ExperimentScale`.  The ``paper`` preset keeps the published constants;
``default`` is tuned so the full benchmark suite completes on a laptop-class
CPU; ``smoke`` is for CI.

Select a preset globally with the ``REPRO_SCALE`` environment variable
(``paper`` / ``default`` / ``smoke``) or pass a scale object explicitly to the
flows APIs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ExperimentScale:
    """Bundle of knobs that trade fidelity for runtime.

    Attributes mirror the constants in Section 5 of the paper; see DESIGN.md
    for the mapping between paper-scale and reduced-scale runs.
    """

    name: str
    image_size: int            # w: rendered image resolution (paper: 256)
    base_filters: int          # U-Net first-layer filters (paper: 64)
    disc_filters: int          # discriminator first-layer filters (paper: 64)
    epochs: int                # cGAN training epochs (paper: 250)
    finetune_epochs: int       # strategy-2 fine-tuning epochs
    finetune_pairs: int        # strategy-2 pairs from the test design (paper: 10)
    placements_per_design: int  # dataset size per design (paper: 200)
    design_lut_scale: float    # multiplier on the paper's #LUT counts
    design_min_luts: int       # floor on scaled #LUTs
    design_max_luts: int       # ceiling on scaled #LUTs
    cluster_size: int          # LUT/FF pairs packed per CLB (VTR k6_N10: 10)
    channel_width: int         # routing channel capacity (Fig 2 example: 34)
    router_max_iters: int      # PathFinder rip-up & reroute iterations
    l1_weight: float = 50.0    # paper: L1 weight 50
    connect_weight: float = 0.1  # paper: lambda = 0.1
    learning_rate: float = 2e-4  # paper: 0.0002
    adam_beta1: float = 0.5    # paper: 0.5
    adam_beta2: float = 0.999  # paper: 0.999
    adam_eps: float = 1e-8     # paper: 1e-8
    batch_size: int = 1        # paper: 1
    top_k: int = 10            # Top10 metric

    def scaled_luts(self, paper_luts: int) -> int:
        """Scale a paper design's LUT count into this preset's budget."""
        scaled = int(round(paper_luts * self.design_lut_scale))
        return max(self.design_min_luts, min(self.design_max_luts, scaled))


PAPER = ExperimentScale(
    name="paper",
    image_size=256,
    base_filters=64,
    disc_filters=64,
    epochs=250,
    finetune_epochs=25,
    finetune_pairs=10,
    placements_per_design=200,
    design_lut_scale=1.0,
    design_min_luts=1,
    design_max_luts=10_000,
    cluster_size=10,
    channel_width=34,
    router_max_iters=30,
)

# CPU preset: the learning rate is raised to 1e-3 — at 1/8th the filter
# count and ~1% of the paper's step budget, the paper's 2e-4 leaves the
# model visibly undertrained (see EXPERIMENTS.md), while 1e-3 reaches
# paper-band per-pixel accuracy within ~10 epochs.
DEFAULT = ExperimentScale(
    name="default",
    image_size=64,
    base_filters=8,
    disc_filters=8,
    epochs=10,
    finetune_epochs=6,
    finetune_pairs=4,
    placements_per_design=12,
    design_lut_scale=0.02,
    design_min_luts=48,
    design_max_luts=220,
    cluster_size=4,
    channel_width=12,
    router_max_iters=8,
    learning_rate=1e-3,
    top_k=4,
)

SMOKE = ExperimentScale(
    name="smoke",
    image_size=32,
    base_filters=4,
    disc_filters=4,
    epochs=1,
    finetune_epochs=1,
    finetune_pairs=2,
    placements_per_design=4,
    design_lut_scale=0.005,
    design_min_luts=24,
    design_max_luts=48,
    cluster_size=4,
    channel_width=8,
    router_max_iters=4,
    learning_rate=1e-3,
    top_k=2,
)

_PRESETS = {scale.name: scale for scale in (PAPER, DEFAULT, SMOKE)}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Return a preset by name, or the one selected by ``REPRO_SCALE``.

    Raises ``KeyError`` for unknown names so typos fail loudly.
    """
    if name is None:
        name = os.environ.get("REPRO_SCALE", "default")
    return _PRESETS[name]


def custom_scale(base: ExperimentScale, **overrides) -> ExperimentScale:
    """Derive a modified preset (e.g. fewer epochs for a quick look)."""
    return replace(base, **overrides)
