"""The connectivity image img_connect (Section 4.2, Figure 4).

Graph(V, E', grids) is rasterized by drawing every net's driver-to-sink
edges between placed block centers, accumulating intensity where edges
overlap, then normalizing to [0, 1].  The result is a single-channel image
with the same spatial dimensions as img_place.
"""

from __future__ import annotations

import numpy as np

from repro.fpga.netlist import Netlist
from repro.fpga.placement import Placement
from repro.viz.layout import FloorplanLayout
from repro.viz.raster import draw_line_accumulate


def render_connectivity(netlist: Netlist, placement: Placement,
                        layout: FloorplanLayout,
                        log_compress: bool = True) -> np.ndarray:
    """Render Graph(V, E', grids) as a (size, size) float image in [0, 1].

    ``log_compress`` applies log1p before normalization so that a few very
    dense bundles do not crush the rest of the image to black — the same
    effect as the alpha-blended vector rendering the paper converts from.
    """
    size = layout.image_size
    accumulator = np.zeros((size, size), dtype=np.float32)
    centers: dict[int, tuple[int, int]] = {}
    for block in netlist.blocks:
        centers[block.id] = layout.block_center(
            placement.site_of[block.id], block.type)

    for net in netlist.nets:
        x0, y0 = centers[net.driver]
        for sink in net.sinks:
            x1, y1 = centers[sink]
            draw_line_accumulate(accumulator, x0, y0, x1, y1, 1.0)

    if log_compress:
        accumulator = np.log1p(accumulator)
    peak = accumulator.max()
    if peak > 0:
        accumulator /= peak
    return accumulator
