"""Minimal animated-GIF writer (GIF89a, pure Python).

The paper's Section 5.4 demo publishes GIF videos of the congestion forecast
evolving during placement; :func:`write_gif` produces the same artifact from
the frame sequence of :func:`repro.flows.realtime.live_forecast`.

Frames are quantized to a fixed 6x7x6 RGB palette (216 colors, web-safe
style), which preserves the Table 1 scheme and the yellow-to-purple gradient
well enough for inspection.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

_R_LEVELS, _G_LEVELS, _B_LEVELS = 6, 7, 6


def _build_palette() -> np.ndarray:
    """The fixed 252-entry palette, padded to 256, as (256, 3) uint8."""
    palette = np.zeros((256, 3), dtype=np.uint8)
    index = 0
    for r in range(_R_LEVELS):
        for g in range(_G_LEVELS):
            for b in range(_B_LEVELS):
                palette[index] = (
                    round(r * 255 / (_R_LEVELS - 1)),
                    round(g * 255 / (_G_LEVELS - 1)),
                    round(b * 255 / (_B_LEVELS - 1)),
                )
                index += 1
    return palette


_PALETTE = _build_palette()


def quantize(frame: np.ndarray) -> np.ndarray:
    """Map an (H, W, 3) image (float [0,1] or uint8) to palette indices."""
    frame = np.asarray(frame)
    if frame.dtype != np.uint8:
        frame = np.clip(np.rint(frame * 255.0), 0, 255).astype(np.uint8)
    r = np.rint(frame[..., 0] / 255.0 * (_R_LEVELS - 1)).astype(np.int32)
    g = np.rint(frame[..., 1] / 255.0 * (_G_LEVELS - 1)).astype(np.int32)
    b = np.rint(frame[..., 2] / 255.0 * (_B_LEVELS - 1)).astype(np.int32)
    return ((r * _G_LEVELS + g) * _B_LEVELS + b).astype(np.uint16)


def _lzw_encode(indices: np.ndarray, code_size: int) -> bytes:
    """GIF-variant LZW compression of a flat index stream."""
    clear_code = 1 << code_size
    end_code = clear_code + 1
    max_code = 4096

    out = bytearray()
    bit_buffer = 0
    bit_count = 0
    code_width = code_size + 1

    def emit(code: int, width: int) -> None:
        nonlocal bit_buffer, bit_count
        bit_buffer |= code << bit_count
        bit_count += width
        while bit_count >= 8:
            out.append(bit_buffer & 0xFF)
            bit_buffer >>= 8
            bit_count -= 8

    table: dict[bytes, int] = {bytes([i]): i for i in range(clear_code)}
    next_code = end_code + 1
    emit(clear_code, code_width)

    prefix = b""
    for value in indices:
        symbol = bytes([int(value)])
        candidate = prefix + symbol
        if candidate in table:
            prefix = candidate
            continue
        emit(table[prefix], code_width)
        if next_code < max_code:
            table[candidate] = next_code
            if next_code == (1 << code_width) and code_width < 12:
                code_width += 1
            next_code += 1
        else:
            emit(clear_code, code_width)
            table = {bytes([i]): i for i in range(clear_code)}
            next_code = end_code + 1
            code_width = code_size + 1
        prefix = symbol
    if prefix:
        emit(table[prefix], code_width)
    emit(end_code, code_width)
    if bit_count:
        out.append(bit_buffer & 0xFF)
    return bytes(out)


def _blocks(data: bytes) -> bytes:
    """Chop a byte stream into GIF sub-blocks (<= 255 bytes each)."""
    out = bytearray()
    for start in range(0, len(data), 255):
        chunk = data[start:start + 255]
        out.append(len(chunk))
        out.extend(chunk)
    out.append(0)
    return bytes(out)


def write_gif(path: str | Path, frames: list[np.ndarray],
              delay_cs: int = 20, loop: bool = True) -> Path:
    """Write an animated GIF from (H, W, 3) frames.

    ``delay_cs`` is the inter-frame delay in centiseconds; ``loop`` adds the
    Netscape looping extension.
    """
    if not frames:
        raise ValueError("need at least one frame")
    height, width = np.asarray(frames[0]).shape[:2]
    for frame in frames:
        if np.asarray(frame).shape[:2] != (height, width):
            raise ValueError("all frames must share one size")

    out = bytearray()
    out.extend(b"GIF89a")
    out.extend(struct.pack("<HH", width, height))
    out.append(0xF7)  # global color table, 8 bits, 256 entries
    out.append(0)     # background color
    out.append(0)     # aspect ratio
    out.extend(_PALETTE.tobytes())

    if loop:
        out.extend(b"\x21\xFF\x0BNETSCAPE2.0\x03\x01\x00\x00\x00")

    code_size = 8
    for frame in frames:
        indices = quantize(frame).ravel()
        out.extend(b"\x21\xF9\x04\x00")              # graphic control
        out.extend(struct.pack("<H", delay_cs))
        out.extend(b"\x00\x00")
        out.append(0x2C)                              # image descriptor
        out.extend(struct.pack("<HHHH", 0, 0, width, height))
        out.append(0x00)                              # no local palette
        out.append(code_size)
        out.extend(_blocks(_lzw_encode(indices, code_size)))
    out.append(0x3B)                                  # trailer

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(bytes(out))
    return path
