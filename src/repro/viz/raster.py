"""Minimal pure-numpy rasterizer: RGB canvas, rectangles, Bresenham lines."""

from __future__ import annotations

import numpy as np


class Canvas:
    """An RGB image buffer with pixel-rect fills.

    Coordinates are ``(col, row)`` pixels with half-open rects
    ``[x0, x1) x [y0, y1)``; row 0 is the top of the image.
    """

    def __init__(self, width: int, height: int,
                 background: np.ndarray | None = None):
        if width < 1 or height < 1:
            raise ValueError("canvas must be at least 1x1")
        self.width = width
        self.height = height
        self.pixels = np.ones((height, width, 3), dtype=np.float32)
        if background is not None:
            self.pixels[...] = np.asarray(background, dtype=np.float32)

    def fill_rect(self, x0: int, y0: int, x1: int, y1: int,
                  color: np.ndarray) -> None:
        """Fill [x0, x1) x [y0, y1), silently clipped to the canvas."""
        x0, x1 = max(0, x0), min(self.width, x1)
        y0, y1 = max(0, y0), min(self.height, y1)
        if x0 >= x1 or y0 >= y1:
            return
        self.pixels[y0:y1, x0:x1] = np.asarray(color, dtype=np.float32)

    def to_array(self) -> np.ndarray:
        """The (height, width, 3) float32 image in [0, 1]."""
        return self.pixels

    def to_uint8(self) -> np.ndarray:
        return np.clip(np.rint(self.pixels * 255.0), 0, 255).astype(np.uint8)


def draw_line_accumulate(buffer: np.ndarray, x0: int, y0: int,
                         x1: int, y1: int, intensity: float = 1.0) -> None:
    """Add ``intensity`` along the Bresenham line into a 2-D buffer.

    Used by the connectivity image: overlapping nets accumulate, so dense
    bundles of edges show up brighter (the vector-to-bitmap conversion of
    Section 4.2).
    """
    height, width = buffer.shape
    dx = abs(x1 - x0)
    dy = -abs(y1 - y0)
    sx = 1 if x0 < x1 else -1
    sy = 1 if y0 < y1 else -1
    err = dx + dy
    x, y = x0, y0
    while True:
        if 0 <= x < width and 0 <= y < height:
            buffer[y, x] += intensity
        if x == x1 and y == y1:
            break
        e2 = 2 * err
        if e2 >= dy:
            err += dy
            x += sx
        if e2 <= dx:
            err += dx
            y += sy
