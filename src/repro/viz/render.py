"""Renderers for img_floor, img_place and img_route (Figure 2 of the paper).

``render_floorplan``   — the empty fabric (Figure 2a).
``render_placement``   — used CLB/IO spots filled black; partially used I/O
                         pads fill proportionally to used ports (Figure 2b).
``render_routing``     — the placement image with every routing-channel pixel
                         colorized by utilization (Figure 2d, the ground
                         truth the cGAN is trained against).
``difference_image``   — pixel-to-pixel |a - b| (Figure 2e).
"""

from __future__ import annotations

import numpy as np

from repro.fpga.arch import BlockType, FpgaArchitecture
from repro.fpga.placement import Placement
from repro.fpga.router import RoutingResult
from repro.viz.colors import COLOR_SCHEME, ColorScheme, utilization_to_rgb
from repro.viz.layout import FloorplanLayout
from repro.viz.raster import Canvas


def render_floorplan(arch: FpgaArchitecture, layout: FloorplanLayout,
                     scheme: ColorScheme = COLOR_SCHEME) -> np.ndarray:
    """The empty floorplan: channels white, sites in their scheme colors."""
    canvas = Canvas(layout.image_size, layout.image_size,
                    background=scheme.white)
    for x in range(1, arch.width + 1):
        for y in (0, arch.height + 1):
            canvas.fill_rect(*layout.io_rect(x, y), scheme.io_pad)
    for y in range(1, arch.height + 1):
        for x in (0, arch.width + 1):
            canvas.fill_rect(*layout.io_rect(x, y), scheme.io_pad)
    for site in arch.clb_sites:
        canvas.fill_rect(*layout.block_rect(site, BlockType.CLB),
                         scheme.lightblue)
    for site in arch.mem_sites:
        canvas.fill_rect(*layout.block_rect(site, BlockType.MEM),
                         scheme.lightyellow)
    for site in arch.mul_sites:
        canvas.fill_rect(*layout.block_rect(site, BlockType.MUL), scheme.pink)
    return canvas.to_array().copy()


def render_placement(placement: Placement, layout: FloorplanLayout,
                     scheme: ColorScheme = COLOR_SCHEME,
                     base: np.ndarray | None = None) -> np.ndarray:
    """img_place: the floorplan with used CLB and I/O spots in black.

    Memory and multiplier blocks keep their scheme colors (Table 1 paints
    them identically whether used or not).  I/O pads fill from the pad edge
    proportionally to how many of their eight ports are used.
    """
    arch = placement.arch
    if base is None:
        base = render_floorplan(arch, layout, scheme)
    image = base.copy()
    canvas = Canvas(layout.image_size, layout.image_size)
    canvas.pixels = image

    filled_pads: set[tuple[int, int]] = set()
    for block in placement.netlist.blocks:
        site = placement.site_of[block.id]
        if block.type is BlockType.CLB:
            canvas.fill_rect(*layout.block_rect(site, block.type),
                             scheme.black)
        elif block.type is BlockType.IO:
            pad = (site.x, site.y)
            if pad in filled_pads:
                continue
            filled_pads.add(pad)
            fraction = placement.io_fill_fraction(site.x, site.y)
            x0, y0, x1, y1 = layout.io_rect(site.x, site.y)
            # Fill a fraction of the pad area from its inner edge.
            if site.x == 0 or site.x == arch.width + 1:
                fill_h = max(1, round((y1 - y0) * fraction))
                canvas.fill_rect(x0, y0, x1, y0 + fill_h, scheme.black)
            else:
                fill_w = max(1, round((x1 - x0) * fraction))
                canvas.fill_rect(x0, y0, x0 + fill_w, y1, scheme.black)
        # MEM / MUL keep their floorplan colors per Table 1.
    return canvas.to_array()


def render_routing(placement: Placement, routing: RoutingResult,
                   layout: FloorplanLayout,
                   scheme: ColorScheme = COLOR_SCHEME,
                   place_image: np.ndarray | None = None) -> np.ndarray:
    """img_route: img_place with channel pixels colorized by utilization."""
    if place_image is None:
        place_image = render_placement(placement, layout, scheme)
    image = place_image.copy()
    canvas = Canvas(layout.image_size, layout.image_size)
    canvas.pixels = image

    arch = placement.arch
    h_util = routing.h_utilization()
    v_util = routing.v_utilization()
    for x in range(1, arch.width + 1):
        for y in range(0, arch.height + 1):
            color = utilization_to_rgb(float(h_util[x - 1, y]), scheme)
            canvas.fill_rect(*layout.hchan_rect(x, y), color)
    for x in range(0, arch.width + 1):
        for y in range(1, arch.height + 1):
            color = utilization_to_rgb(float(v_util[x, y - 1]), scheme)
            canvas.fill_rect(*layout.vchan_rect(x, y), color)
    return canvas.to_array()


def difference_image(image_a: np.ndarray, image_b: np.ndarray) -> np.ndarray:
    """Pixel-to-pixel absolute difference (Figure 2e)."""
    if image_a.shape != image_b.shape:
        raise ValueError(
            f"shape mismatch: {image_a.shape} vs {image_b.shape}")
    return np.abs(image_a.astype(np.float32) - image_b.astype(np.float32))
