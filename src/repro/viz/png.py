"""Minimal PNG and PPM writers (plus a reader for files we write).

Supports 8-bit grayscale and RGB, no interlacing — exactly what the
experiment artifacts need, with zero dependencies beyond ``zlib``.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

import numpy as np

_PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def _chunk(tag: bytes, payload: bytes) -> bytes:
    return (struct.pack(">I", len(payload)) + tag + payload
            + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF))


def _to_uint8(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image)
    if image.dtype == np.uint8:
        return image
    return np.clip(np.rint(image * 255.0), 0, 255).astype(np.uint8)


def write_png(path: str | Path, image: np.ndarray) -> Path:
    """Write a (H, W) grayscale or (H, W, 3) RGB image.

    Float images are assumed to be in [0, 1]; uint8 passes through.
    """
    data = _to_uint8(image)
    if data.ndim == 2:
        color_type = 0
        row_bytes = data[..., None]
    elif data.ndim == 3 and data.shape[2] == 3:
        color_type = 2
        row_bytes = data
    else:
        raise ValueError(f"unsupported image shape {data.shape}")

    height, width = data.shape[:2]
    raw = b"".join(
        b"\x00" + row_bytes[row].tobytes() for row in range(height))
    header = struct.pack(">IIBBBBB", width, height, 8, color_type, 0, 0, 0)
    blob = (_PNG_SIGNATURE
            + _chunk(b"IHDR", header)
            + _chunk(b"IDAT", zlib.compress(raw, 6))
            + _chunk(b"IEND", b""))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(blob)
    return path


def read_png(path: str | Path) -> np.ndarray:
    """Read a PNG produced by :func:`write_png` back into uint8 arrays."""
    blob = Path(path).read_bytes()
    if blob[:8] != _PNG_SIGNATURE:
        raise ValueError(f"{path} is not a PNG file")
    offset = 8
    width = height = None
    color_type = None
    idat = b""
    while offset < len(blob):
        (length,) = struct.unpack(">I", blob[offset:offset + 4])
        tag = blob[offset + 4:offset + 8]
        payload = blob[offset + 8:offset + 8 + length]
        offset += 12 + length
        if tag == b"IHDR":
            width, height, depth, color_type, comp, filt, interlace = (
                struct.unpack(">IIBBBBB", payload))
            if depth != 8 or interlace != 0 or color_type not in (0, 2):
                raise ValueError("unsupported PNG variant")
        elif tag == b"IDAT":
            idat += payload
        elif tag == b"IEND":
            break
    if width is None or color_type is None:
        raise ValueError("malformed PNG: missing IHDR")
    channels = 1 if color_type == 0 else 3
    raw = zlib.decompress(idat)
    stride = width * channels
    rows = []
    previous = np.zeros(stride, dtype=np.uint8)
    for row in range(height):
        start = row * (stride + 1)
        filter_type = raw[start]
        line = np.frombuffer(raw[start + 1:start + 1 + stride],
                             dtype=np.uint8).copy()
        if filter_type == 0:
            pass
        elif filter_type == 2:  # Up
            line = (line.astype(np.int32) + previous).astype(np.uint8)
        else:
            raise ValueError(f"unsupported PNG filter {filter_type}")
        rows.append(line)
        previous = line
    image = np.stack(rows).reshape(height, width, channels)
    return image[..., 0] if channels == 1 else image


def write_ppm(path: str | Path, image: np.ndarray) -> Path:
    """Write a binary PPM (P6) image; handy for quick shell inspection."""
    data = _to_uint8(image)
    if data.ndim == 2:
        data = np.repeat(data[..., None], 3, axis=-1)
    if data.ndim != 3 or data.shape[2] != 3:
        raise ValueError(f"unsupported image shape {data.shape}")
    height, width = data.shape[:2]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode())
        handle.write(data.tobytes())
    return path
