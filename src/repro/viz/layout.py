"""Floorplan-to-pixel geometry.

Section 4.2: "we adjust the resolution of img_place such that the dimension
of each placement element is >= 2x2" pixels.  The layout allocates, along each
axis, two units to each I/O pad ring and each tile, and one unit to each
routing channel, then maps units to pixels by proportional rounding.  With an
image at least twice the unit count wide, every element is >= 2x2 pixels
(:func:`minimum_image_size` returns the smallest power-of-two size that
guarantees it, power-of-two because the U-Net halves the image repeatedly).
"""

from __future__ import annotations

import numpy as np

from repro.fpga.arch import BlockType, FpgaArchitecture, Site

_IO_UNITS = 2
_TILE_UNITS = 2
_CHAN_UNITS = 1


def _axis_units(num_tiles: int) -> int:
    return 2 * _IO_UNITS + num_tiles * _TILE_UNITS + (num_tiles + 1) * _CHAN_UNITS


def minimum_image_size(arch: FpgaArchitecture) -> int:
    """Smallest power-of-two image size with every element >= 2x2 px.

    With at least one pixel per unit, proportional rounding gives each
    2-unit tile/pad at least 2 pixels and each 1-unit channel at least 1
    pixel; the paper's >= 2x2 constraint applies to placement elements.
    Power-of-two because the U-Net halves the image at every level.
    """
    units = max(_axis_units(arch.width), _axis_units(arch.height))
    size = 8
    while size < units:
        size *= 2
    return size


def _boundaries(num_tiles: int, size_px: int) -> list[tuple[int, int]]:
    """Pixel span of each element along one axis.

    Returns spans in axis order: io, chan 0, tile 1, chan 1, ..., tile N,
    chan N, io — a list of 2N + 3 (start, end) half-open pixel ranges.
    """
    units = [_IO_UNITS, _CHAN_UNITS]
    for _ in range(num_tiles):
        units.extend((_TILE_UNITS, _CHAN_UNITS))
    units.append(_IO_UNITS)
    total = sum(units)
    cumulative = np.cumsum([0] + units)
    edges = np.rint(cumulative * (size_px / total)).astype(int)
    return [(int(edges[i]), int(edges[i + 1])) for i in range(len(units))]


class FloorplanLayout:
    """Pixel rectangles for every architectural element at a resolution.

    All rect methods return ``(x0, y0, x1, y1)`` half-open pixel rects with
    row 0 at the *top* of the image (grid ``y`` grows upward, so the image is
    vertically flipped relative to grid coordinates).
    """

    def __init__(self, arch: FpgaArchitecture, image_size: int):
        if image_size < minimum_image_size(arch):
            raise ValueError(
                f"image size {image_size} below minimum "
                f"{minimum_image_size(arch)} for this architecture "
                "(elements must be >= 2x2 px)")
        self.arch = arch
        self.image_size = image_size
        self._x_spans = _boundaries(arch.width, image_size)
        self._y_spans = _boundaries(arch.height, image_size)

    # -- axis helpers ------------------------------------------------------------
    # Along-axis element order: index 0 = io, 1 = chan 0, 2 = tile 1,
    # 3 = chan 1, ..., 2k = tile k, 2k+1 = chan k, last = io.

    def _tile_span_x(self, x: int) -> tuple[int, int]:
        if not 1 <= x <= self.arch.width:
            raise ValueError(f"tile column {x} out of range")
        return self._x_spans[2 * x]

    def _chan_span_x(self, x: int) -> tuple[int, int]:
        if not 0 <= x <= self.arch.width:
            raise ValueError(f"vertical channel {x} out of range")
        return self._x_spans[2 * x + 1]

    def _io_span_x(self, left: bool) -> tuple[int, int]:
        return self._x_spans[0] if left else self._x_spans[-1]

    def _tile_span_y(self, y: int) -> tuple[int, int]:
        """Vertical pixel span of tile row y (flipped: row H is at top)."""
        if not 1 <= y <= self.arch.height:
            raise ValueError(f"tile row {y} out of range")
        start, end = self._y_spans[2 * y]
        return self._flip_y(start, end)

    def _chan_span_y(self, y: int) -> tuple[int, int]:
        if not 0 <= y <= self.arch.height:
            raise ValueError(f"horizontal channel {y} out of range")
        start, end = self._y_spans[2 * y + 1]
        return self._flip_y(start, end)

    def _io_span_y(self, bottom: bool) -> tuple[int, int]:
        start, end = self._y_spans[0] if bottom else self._y_spans[-1]
        return self._flip_y(start, end)

    def _flip_y(self, start: int, end: int) -> tuple[int, int]:
        return self.image_size - end, self.image_size - start

    # -- public rects --------------------------------------------------------------

    def tile_rect(self, x: int, y: int) -> tuple[int, int, int, int]:
        """Pixel rect of interior tile (x, y)."""
        x0, x1 = self._tile_span_x(x)
        y0, y1 = self._tile_span_y(y)
        return x0, y0, x1, y1

    def block_rect(self, site: Site, block_type: BlockType
                   ) -> tuple[int, int, int, int]:
        """Pixel rect of a block anchored at ``site`` (macros span rows)."""
        if block_type is BlockType.IO:
            return self.io_rect(site.x, site.y)
        height = self.arch.block_height(block_type)
        x0, y0, x1, y1 = self.tile_rect(site.x, site.y)
        if height > 1:
            _, top_y0, _, _ = self.tile_rect(site.x, site.y + height - 1)
            y0 = top_y0
        return x0, y0, x1, y1

    def io_rect(self, x: int, y: int) -> tuple[int, int, int, int]:
        """Pixel rect of the I/O pad at ring position (x, y)."""
        if not self.arch.is_io_tile(x, y):
            raise ValueError(f"({x},{y}) is not an I/O tile")
        if x == 0 or x == self.arch.width + 1:
            x0, x1 = self._io_span_x(left=(x == 0))
            y0, y1 = self._tile_span_y(y)
        else:
            x0, x1 = self._tile_span_x(x)
            y0, y1 = self._io_span_y(bottom=(y == 0))
        return x0, y0, x1, y1

    def hchan_rect(self, x: int, y: int) -> tuple[int, int, int, int]:
        """Pixel rect of horizontal channel segment H(x, y)."""
        x0, x1 = self._tile_span_x(x)
        y0, y1 = self._chan_span_y(y)
        return x0, y0, x1, y1

    def vchan_rect(self, x: int, y: int) -> tuple[int, int, int, int]:
        """Pixel rect of vertical channel segment V(x, y)."""
        x0, x1 = self._chan_span_x(x)
        y0, y1 = self._tile_span_y(y)
        return x0, y0, x1, y1

    def block_center(self, site: Site, block_type: BlockType
                     ) -> tuple[int, int]:
        """Center pixel (col, row) of a block, for connectivity lines."""
        x0, y0, x1, y1 = self.block_rect(site, block_type)
        return (x0 + x1) // 2, (y0 + y1) // 2

    def channel_pixel_mask(self) -> np.ndarray:
        """Boolean (size, size) mask of all routing-channel pixels."""
        mask = np.zeros((self.image_size, self.image_size), dtype=bool)
        for x in range(1, self.arch.width + 1):
            for y in range(0, self.arch.height + 1):
                x0, y0, x1, y1 = self.hchan_rect(x, y)
                mask[y0:y1, x0:x1] = True
        for x in range(0, self.arch.width + 1):
            for y in range(1, self.arch.height + 1):
                x0, y0, x1, y1 = self.vchan_rect(x, y)
                mask[y0:y1, x0:x1] = True
        return mask
