"""Image generation substrate.

Replaces the paper's VPR-interactive-mode image dumps: a pure-numpy
rasterizer, the Table 1 color scheme with the yellow-to-purple utilization
gradient, the floorplan-to-pixel layout logic (every element >= 2x2 pixels,
as Section 4.2 requires), renderers for ``img_floor`` / ``img_place`` /
``img_route``, the 1-channel connectivity image, and a minimal PNG codec for
artifact output.
"""

from repro.viz.colors import (
    COLOR_SCHEME,
    ColorScheme,
    decode_utilization,
    rgb_to_grayscale,
    utilization_to_rgb,
)
from repro.viz.connectivity import render_connectivity
from repro.viz.layout import FloorplanLayout, minimum_image_size
from repro.viz.png import read_png, write_png, write_ppm
from repro.viz.raster import Canvas, draw_line_accumulate
from repro.viz.render import (
    difference_image,
    render_floorplan,
    render_placement,
    render_routing,
)

__all__ = [
    "COLOR_SCHEME",
    "Canvas",
    "ColorScheme",
    "FloorplanLayout",
    "decode_utilization",
    "difference_image",
    "draw_line_accumulate",
    "minimum_image_size",
    "read_png",
    "render_connectivity",
    "render_floorplan",
    "render_placement",
    "render_routing",
    "rgb_to_grayscale",
    "utilization_to_rgb",
    "write_png",
    "write_ppm",
]
