"""Table 1 color scheme and the utilization gradient.

The paper (Table 1) uses VPR's default interactive-mode colors:

===========  =========================  =========================
Color        img_place                  img_route
===========  =========================  =========================
White        Routing channels           Out of floor plan
Lightblue    CLB spots                  Remaining CLB spots
Pink         Multiplier                 Multiplier
Lightyellow  Memory                     Memory
Black        Used CLB and IO spots      Used CLB and IO spots
Yellow2purple gradient      -           Routing utilization
===========  =========================  =========================

All colors are RGB floats in [0, 1].  The gradient is linear from yellow
(utilization 0) to purple (utilization 1), which makes decoding a generated
heat map back into utilization values a projection onto a line segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _rgb(r: float, g: float, b: float) -> np.ndarray:
    return np.array([r, g, b], dtype=np.float32)


@dataclass(frozen=True)
class ColorScheme:
    """Named colors for rendering placements and heat maps."""

    white: np.ndarray = field(default_factory=lambda: _rgb(1.0, 1.0, 1.0))
    lightblue: np.ndarray = field(
        default_factory=lambda: _rgb(0.678, 0.847, 0.902))
    pink: np.ndarray = field(default_factory=lambda: _rgb(1.0, 0.753, 0.796))
    lightyellow: np.ndarray = field(
        default_factory=lambda: _rgb(1.0, 1.0, 0.878))
    black: np.ndarray = field(default_factory=lambda: _rgb(0.0, 0.0, 0.0))
    # Unused I/O pads are not listed in Table 1; VPR draws them as light
    # outlines, rendered here as light gray.
    io_pad: np.ndarray = field(default_factory=lambda: _rgb(0.85, 0.85, 0.85))
    gradient_low: np.ndarray = field(
        default_factory=lambda: _rgb(1.0, 1.0, 0.0))    # yellow, util = 0
    gradient_high: np.ndarray = field(
        default_factory=lambda: _rgb(0.502, 0.0, 0.502))  # purple, util = 1


COLOR_SCHEME = ColorScheme()


def utilization_to_rgb(utilization: np.ndarray | float,
                       scheme: ColorScheme = COLOR_SCHEME) -> np.ndarray:
    """Map utilization in [0, 1] onto the yellow-to-purple gradient.

    Values outside [0, 1] (overused channels) are clipped, matching how a
    saturated color bar renders them.
    """
    u = np.clip(np.asarray(utilization, dtype=np.float32), 0.0, 1.0)
    u = u[..., None]
    return (1.0 - u) * scheme.gradient_low + u * scheme.gradient_high


def decode_utilization(rgb: np.ndarray,
                       scheme: ColorScheme = COLOR_SCHEME) -> np.ndarray:
    """Project RGB pixels back onto the gradient to recover utilization.

    The inverse of :func:`utilization_to_rgb` for on-gradient colors; for
    arbitrary colors it returns the utilization of the *closest* gradient
    point, which is how generated (imperfect) heat maps are scored.
    """
    rgb = np.asarray(rgb, dtype=np.float32)
    direction = scheme.gradient_high - scheme.gradient_low
    denom = float(direction @ direction)
    offset = rgb - scheme.gradient_low
    u = (offset @ direction) / denom
    return np.clip(u, 0.0, 1.0)


def gradient_distance(rgb: np.ndarray,
                      scheme: ColorScheme = COLOR_SCHEME) -> np.ndarray:
    """Euclidean distance from each pixel to the gradient line segment.

    Used to identify which pixels of a generated image are actually painting
    utilization (small distance) versus structure (large distance).
    """
    rgb = np.asarray(rgb, dtype=np.float32)
    u = decode_utilization(rgb, scheme)
    nearest = utilization_to_rgb(u, scheme)
    return np.linalg.norm(rgb - nearest, axis=-1)


def rgb_to_grayscale(rgb: np.ndarray) -> np.ndarray:
    """Luminance conversion with the ITU-R 601 weights.

    Matches ``tf.image.rgb_to_grayscale`` (the op the paper uses for its
    Section 5.2 grayscale ablation): Y = 0.2989 R + 0.587 G + 0.114 B,
    replicated back to three channels so model input shapes are unchanged.
    """
    rgb = np.asarray(rgb, dtype=np.float32)
    weights = np.array([0.2989, 0.587, 0.114], dtype=np.float32)
    gray = rgb @ weights
    return np.repeat(gray[..., None], 3, axis=-1)
