"""repro — reproduction of "Painting on Placement: Forecasting Routing
Congestion using Conditional Generative Adversarial Nets" (DAC 2019).

The package is organized as paper-contribution plus the substrates it
depends on, all implemented from scratch:

* :mod:`repro.gan`   — the pix2pix-style congestion forecaster (the paper's
  contribution): U-Net generator, patch discriminator, cGAN + L1 objective,
  metrics and trainers for both training strategies.
* :mod:`repro.nn`    — numpy deep-learning framework (stands in for
  TensorFlow).
* :mod:`repro.fpga`  — VPR-like FPGA substrate: architecture model, packed
  netlists, synthetic Table 2 designs, simulated-annealing placer,
  PathFinder router.
* :mod:`repro.viz`   — image generation: Table 1 colors, rasterizer,
  floorplan layout, img_place / img_route / connectivity renderers, PNG IO.
* :mod:`repro.flows` — end-to-end applications: dataset pipeline, Table 2,
  the ablations, Figure 9 exploration, real-time forecasting during SA.
* :mod:`repro.data`  — dataset platform: sharded on-disk store with a
  provenance manifest, parallel generation workers, streaming loader.
* :mod:`repro.train` — run orchestration: TrainSpec manifests, the
  epoch/step loop, run directories with exact-resume checkpoints, eval
  hooks, and the sweep driver.
* :mod:`repro.eval`  — evaluation platform: batched metric registry,
  streaming store evaluation, deterministic JSON reports.
* :mod:`repro.serve` — forecast serving: checkpoint registry,
  micro-batching inference engine, forecast cache, HTTP API + client.

Quickstart::

    from repro.config import get_scale
    from repro.flows import build_design_bundle
    from repro.fpga.generators import PAPER_SUITE

    scale = get_scale("smoke")
    bundle = build_design_bundle(PAPER_SUITE[0], scale)
    print(bundle.dataset[0].x.shape)   # (4, H, W) model input
"""

from repro.config import DEFAULT, PAPER, SMOKE, ExperimentScale, get_scale

__version__ = "1.2.0"

__all__ = [
    "DEFAULT",
    "ExperimentScale",
    "PAPER",
    "SMOKE",
    "get_scale",
    "__version__",
]
