"""Command-line interface: ``python -m repro <command>``.

Commands mirror the flows API:

* ``datagen``  — build a design's placement/routing dataset and save it.
* ``train``    — run orchestration: ``run`` a TrainSpec into a run
  directory, ``resume`` an interrupted run bitwise-exactly from its
  latest checkpoint, ``sweep`` many specs across worker processes, and
  ``status`` a run directory without importing numpy.  The legacy flat
  form (``repro train --designs ... --out ckpt.npz``) still trains the
  cGAN on generated suite data and writes a checkpoint.
* ``forecast`` — place a design fresh and forecast its heat map with a
  checkpointed model.
* ``table2``   — run the Table 2 experiment and print the rows.
* ``explore``  — run the Figure 9 constrained exploration.
* ``serve``    — serve checkpointed forecasters over HTTP with
  micro-batching and a forecast cache.
* ``data``     — sharded dataset store operations: ``build`` (parallel
  generation workers), ``merge``, ``stats``, ``verify``, and ``convert``
  for legacy single-file archives.
* ``eval``     — streaming evaluation over a sharded store: ``run`` a
  checkpoint or baseline against ground truth (deterministic JSON
  report), ``compare`` two reports with per-metric tolerances, and
  score all ``baselines``.
* ``obs``      — telemetry readers: ``summary`` and ``tail`` a run's
  ``telemetry.jsonl``, ``trace`` to aggregate a span log or export it
  as Chrome ``trace_event`` JSON.  Numpy-free like ``train status``.
* ``fleet``    — fleet-scale operations: ``up`` serves checkpoints
  through a multi-worker router (shared cache, admission control,
  backpressure, supervised restarts), ``route`` batch-forecasts store
  samples through a worker pool into a content-addressed artifact
  store, ``status`` reads a job spool and merged fleet telemetry,
  ``scrub`` quarantines corrupt artifact blobs, ``chaos`` drains a
  spool under a seeded fault plan to prove the recovery paths.

All experiment commands accept ``--scale {smoke,default,paper}``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro import __version__
from repro.config import get_scale


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default=None,
                        choices=["smoke", "default", "paper"],
                        help="experiment scale preset (default: $REPRO_SCALE "
                             "or 'default')")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Painting-on-Placement congestion forecasting "
                    "(DAC 2019 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    datagen = commands.add_parser(
        "datagen", help="generate a design's image-pair dataset")
    datagen.add_argument("--design", default="diffeq1",
                         help="Table 2 design name")
    datagen.add_argument("--placements", type=int, default=None,
                         help="placements to sweep (default: per scale)")
    datagen.add_argument("--seed", type=int, default=1)
    datagen.add_argument("--out", type=Path, required=True,
                         help="output .npz dataset path")
    _add_scale(datagen)

    train = commands.add_parser(
        "train",
        help="training runs: run/resume/sweep/status (or the legacy "
             "flat form: --designs ... --out ckpt.npz)")
    # Legacy flat form (kept working: `repro train --designs d --out m.npz`).
    train.add_argument("--designs", default=None,
                       help="comma-separated Table 2 design names "
                            "(legacy flat form)")
    train.add_argument("--epochs", type=int, default=None)
    train.add_argument("--seed", type=int, default=1)
    train.add_argument("--out", type=Path, default=None,
                       help="model checkpoint path (.npz, legacy flat form)")
    _add_scale(train)
    train_commands = train.add_subparsers(dest="train_command")

    train_run = train_commands.add_parser(
        "run", help="execute a TrainSpec into a run directory")
    train_run.add_argument("--spec", type=Path, required=True,
                           help="TrainSpec JSON file")
    train_run.add_argument("--runs", type=Path, required=True,
                           help="root directory; the run lives at "
                                "<runs>/<spec name>")
    train_run.add_argument("--stop-after-steps", type=int, default=None,
                           help="halt (with an exact-resume checkpoint) "
                                "once global_step reaches this count")
    train_run.add_argument("--log-every", type=int, default=None,
                           help="print losses every N epochs")
    train_run.add_argument("--trace", action="store_true",
                           help="record spans to <run dir>/trace.jsonl "
                                "(view with `repro obs trace`)")

    train_resume = train_commands.add_parser(
        "resume", help="continue a run from its latest checkpoint")
    train_resume.add_argument("run_dir", type=Path)
    train_resume.add_argument("--stop-after-steps", type=int, default=None)
    train_resume.add_argument("--log-every", type=int, default=None)
    train_resume.add_argument("--trace", action="store_true",
                              help="record spans to <run dir>/trace.jsonl")

    train_sweep = train_commands.add_parser(
        "sweep", help="fan a sweep file of specs across workers")
    train_sweep.add_argument("--specs", type=Path, required=True,
                             help="JSON: a list of specs, or "
                                  "{'base': {...}, 'runs': [...]}")
    train_sweep.add_argument("--runs", type=Path, required=True,
                             help="sweep root directory (one run dir per "
                                  "spec + sweep.json summary)")
    train_sweep.add_argument("--workers", type=int, default=0,
                             help="worker processes (0/1 = serial)")
    train_sweep.add_argument("--base-seed", type=int, default=0,
                             help="seed base for runs without an "
                                  "explicit seed")

    train_status = train_commands.add_parser(
        "status", help="render run-directory progress (no numpy import)")
    train_status.add_argument("run_dir", type=Path,
                              help="a run directory, or a root holding "
                                   "several")
    train_status.add_argument("--json", action="store_true",
                              help="emit machine-readable JSON")

    forecast = commands.add_parser(
        "forecast", help="forecast a fresh placement's heat map")
    forecast.add_argument("--model", type=Path, required=True)
    forecast.add_argument("--design", default="diffeq1")
    forecast.add_argument("--seed", type=int, default=1,
                          help="dataset/netlist seed (must match training)")
    forecast.add_argument("--placer-seed", type=int, default=1234)
    forecast.add_argument("--out", type=Path, required=True,
                          help="output directory for PNGs")
    _add_scale(forecast)

    table2 = commands.add_parser("table2", help="run the Table 2 experiment")
    table2.add_argument("--designs", default=None,
                        help="comma-separated subset (default: all eight)")
    table2.add_argument("--seed", type=int, default=1)
    table2.add_argument("--cache-dir", type=Path, default=None)
    _add_scale(table2)

    explore = commands.add_parser(
        "explore", help="Figure 9 constrained placement exploration")
    explore.add_argument("--design", default="ode")
    explore.add_argument("--seed", type=int, default=1)
    _add_scale(explore)

    serve = commands.add_parser(
        "serve", help="serve checkpointed forecasters over HTTP")
    serve.add_argument("--checkpoints", type=Path, required=True,
                       help="directory of .npz model checkpoints "
                            "(model id = file stem)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="TCP port (0 binds an ephemeral port)")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="requests stacked into one generator forward")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="how long an open batch waits for stragglers")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="forecast LRU capacity (0 disables caching)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")
    serve.add_argument("--obs-dir", type=Path, default=None,
                       help="fleet observability directory: publish "
                            "telemetry snapshots (and alerts.jsonl) here "
                            "for `repro obs agg/top`")
    serve.add_argument("--alert-rules", type=Path, default=None,
                       help="JSON alert rules evaluated against the live "
                            "registry (see repro.obs.alerts)")
    serve.add_argument("--publish-interval", type=float, default=2.0,
                       help="seconds between telemetry publishes "
                            "(with --obs-dir)")
    serve.add_argument("--threads", type=int, default=None,
                       help="gemm pool threads for conv hot paths "
                            "(default: REPRO_THREADS env or 1; results "
                            "are bitwise identical for any count)")
    serve.add_argument("--inference-mode", choices=("float32", "int8"),
                       default="float32",
                       help="numeric variant for fused eval: int8 "
                            "quantizes conv weights per output channel "
                            "(faster, small NRMS drift)")

    data = commands.add_parser(
        "data", help="sharded dataset store: build/merge/stats/verify")
    data_commands = data.add_subparsers(dest="data_command", required=True)

    build = data_commands.add_parser(
        "build", help="generate a sharded dataset with a worker pool")
    build.add_argument("--designs", default="diffeq1",
                       help="comma-separated Table 2 design names")
    build.add_argument("--placements", type=int, default=None,
                       help="placements per design (default: per scale)")
    build.add_argument("--seed", type=int, default=1)
    build.add_argument("--workers", type=int, default=0,
                       help="generation worker processes (0/1 = serial)")
    build.add_argument("--shard-size", type=int, default=16,
                       help="samples per shard file")
    build.add_argument("--out", type=Path, required=True,
                       help="output store directory")
    _add_scale(build)

    merge = data_commands.add_parser(
        "merge", help="merge stores into one (re-sharded)")
    merge.add_argument("inputs", type=Path, nargs="+",
                       help="input store directories")
    merge.add_argument("--out", type=Path, required=True,
                       help="output store directory")
    merge.add_argument("--shard-size", type=int, default=16)

    stats = data_commands.add_parser(
        "stats", help="print a store's manifest summary")
    stats.add_argument("store", type=Path)

    verify = data_commands.add_parser(
        "verify", help="recheck shard hashes and sample counts")
    verify.add_argument("store", type=Path)

    convert = data_commands.add_parser(
        "convert", help="convert a legacy .npz dataset archive to a store")
    convert.add_argument("archive", type=Path)
    convert.add_argument("--out", type=Path, required=True,
                         help="output store directory")
    convert.add_argument("--shard-size", type=int, default=16)

    evaluate = commands.add_parser(
        "eval", help="streaming evaluation: run/compare/baselines")
    eval_commands = evaluate.add_subparsers(dest="eval_command",
                                            required=True)

    def _add_eval_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--store", type=Path, required=True,
                            help="sharded dataset store directory")
        parser.add_argument("--split", default="all",
                            help="'all', 'design:<name>', or "
                                 "'holdout:<name>' (leave-one-design-out)")
        parser.add_argument("--batch-size", type=int, default=16)
        parser.add_argument("--thresholds", default="0.5,0.7",
                            help="comma-separated hotspot congestion "
                                 "thresholds")
        parser.add_argument("--roc-threshold", type=float, default=0.5,
                            help="target threshold for the ROC sweep")

    run = eval_commands.add_parser(
        "run", help="evaluate one checkpoint or baseline over a store")
    _add_eval_options(run)
    run.add_argument("--checkpoint", type=Path, default=None,
                     help="model checkpoint .npz path")
    run.add_argument("--checkpoints", type=Path, default=None,
                     help="checkpoint directory (serve registry layout)")
    run.add_argument("--model", default=None,
                     help="model id within --checkpoints (file stem)")
    run.add_argument("--baseline", default=None,
                     help="baseline name (see 'eval baselines')")
    run.add_argument("--workers", type=int, default=1,
                     help="shard-parallel worker processes (checkpoint "
                          "runs only; results are worker-count invariant)")
    run.add_argument("--threads", type=int, default=None,
                     help="gemm pool threads inside each worker "
                          "(default: REPRO_THREADS env or 1)")
    run.add_argument("--inference-mode", choices=("float32", "int8"),
                     default="float32",
                     help="numeric variant for checkpoint forecasts "
                          "(int8 reports carry an inference_mode marker)")
    run.add_argument("--out", type=Path, default=None,
                     help="write the JSON report here")

    compare = eval_commands.add_parser(
        "compare", help="diff two eval reports with tolerances")
    compare.add_argument("report_a", type=Path)
    compare.add_argument("report_b", type=Path)
    compare.add_argument("--tolerance", action="append", default=[],
                         metavar="METRIC=TOL",
                         help="per-metric absolute tolerance (repeatable)")
    compare.add_argument("--default-tolerance", type=float, default=1e-9,
                         help="absolute tolerance for unlisted metrics")
    compare.add_argument("--allow-different-data", action="store_true",
                         help="do not fail on dataset fingerprint mismatch")

    baselines = eval_commands.add_parser(
        "baselines", help="score every non-learned baseline over a store")
    _add_eval_options(baselines)
    baselines.add_argument("--out-dir", type=Path, default=None,
                           help="write one JSON report per baseline here")

    obs = commands.add_parser(
        "obs", help="telemetry readers: summary/tail/trace (no numpy)")
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)

    obs_summary = obs_commands.add_parser(
        "summary", help="aggregate a run's telemetry.jsonl")
    obs_summary.add_argument("run_dir", type=Path,
                             help="a run directory, or a telemetry.jsonl "
                                  "path")
    obs_summary.add_argument("--json", action="store_true",
                             help="emit machine-readable JSON")

    obs_tail = obs_commands.add_parser(
        "tail", help="print the newest telemetry events")
    obs_tail.add_argument("run_dir", type=Path,
                          help="a run directory, or a telemetry.jsonl path")
    obs_tail.add_argument("-n", "--count", type=int, default=10,
                          help="events to show (default 10)")

    obs_trace = obs_commands.add_parser(
        "trace", help="summarize a span log, or export it for "
                      "chrome://tracing")
    obs_trace.add_argument("trace", type=Path,
                           help="a trace.jsonl path, or a run directory "
                                "holding one")
    obs_trace.add_argument("--chrome", type=Path, default=None,
                           help="write Chrome trace_event JSON here "
                                "instead of printing the summary")

    obs_agg = obs_commands.add_parser(
        "agg", help="merge a telemetry directory's worker snapshots")
    obs_agg.add_argument("directory", type=Path,
                         help="a telemetry/ directory, or a parent "
                              "holding one (sweep root, serve obs dir)")
    obs_agg.add_argument("--json", action="store_true",
                         help="emit the merged registry snapshot as JSON "
                              "instead of Prometheus text")
    obs_agg.add_argument("--per-worker", action="store_true",
                         help="keep a worker label on every series "
                              "instead of merging them away")

    obs_top = obs_commands.add_parser(
        "top", help="live fleet dashboard over a telemetry directory "
                    "or serve URL")
    obs_top.add_argument("target",
                         help="telemetry directory (sweep root / serve "
                              "obs dir) or a serve base URL")
    obs_top.add_argument("--interval", type=float, default=2.0,
                         help="seconds between polls (default 2)")
    obs_top.add_argument("--frames", type=int, default=None,
                         help="render N frames then exit "
                              "(default: run until interrupted)")
    obs_top.add_argument("--window", type=float, default=30.0,
                         help="rate window in seconds (default 30)")

    obs_alerts = obs_commands.add_parser(
        "alerts", help="show alert transitions and what is firing now")
    obs_alerts.add_argument("path", type=Path,
                            help="an alerts.jsonl path, or a directory "
                                 "holding one")
    obs_alerts.add_argument("--json", action="store_true",
                            help="emit machine-readable JSON")

    fleet = commands.add_parser(
        "fleet", help="fleet-scale serving and batch forecasting: "
                      "up/status/route")
    fleet_commands = fleet.add_subparsers(dest="fleet_command",
                                          required=True)

    fleet_up = fleet_commands.add_parser(
        "up", help="serve checkpoints over HTTP through a multi-worker "
                   "router")
    fleet_up.add_argument("--checkpoints", type=Path, required=True,
                          help="directory of .npz model checkpoints")
    fleet_up.add_argument("--workers", type=int, default=2,
                          help="serving workers (default 2)")
    fleet_up.add_argument("--mode", default="process",
                          choices=["process", "thread"],
                          help="worker isolation (process scales across "
                               "cores; thread is cheaper to start)")
    fleet_up.add_argument("--host", default="127.0.0.1")
    fleet_up.add_argument("--port", type=int, default=8000,
                          help="TCP port (0 binds an ephemeral port)")
    fleet_up.add_argument("--max-batch", type=int, default=8,
                          help="per-worker micro-batch size")
    fleet_up.add_argument("--max-wait-ms", type=float, default=2.0,
                          help="per-worker batch wait for stragglers")
    fleet_up.add_argument("--cache-size", type=int, default=256,
                          help="shared forecast LRU capacity "
                               "(0 disables caching)")
    fleet_up.add_argument("--max-inflight", type=int, default=256,
                          help="admission control: reject (503) beyond "
                               "this many in-flight requests")
    fleet_up.add_argument("--queue-limit", type=int, default=32,
                          help="backpressure: reject when every worker "
                               "queue is this deep")
    fleet_up.add_argument("--verbose", action="store_true",
                          help="log every HTTP request")
    fleet_up.add_argument("--obs-dir", type=Path, default=None,
                          help="publish router + worker telemetry here "
                               "for `repro obs agg/top`")
    fleet_up.add_argument("--alert-rules", type=Path, default=None,
                          help="JSON alert rules evaluated against the "
                               "router registry")
    fleet_up.add_argument("--publish-interval", type=float, default=2.0,
                          help="seconds between telemetry publishes")
    fleet_up.add_argument("--threads", type=int, default=None,
                          help="gemm pool threads inside each worker "
                               "(default: REPRO_THREADS env or 1; with "
                               "--mode thread the last-started worker's "
                               "setting wins process-wide)")
    fleet_up.add_argument("--inference-mode",
                          choices=("float32", "int8"), default="float32",
                          help="numeric variant for worker fused eval "
                               "(int8: faster, small NRMS drift)")

    fleet_status = fleet_commands.add_parser(
        "status", help="job spool counts and merged fleet telemetry")
    fleet_status.add_argument("root", type=Path,
                              help="a job spool directory (or a sweep "
                                   "root holding jobs/)")
    fleet_status.add_argument("--json", action="store_true",
                              help="emit machine-readable JSON")

    fleet_route = fleet_commands.add_parser(
        "route", help="batch-forecast dataset samples through a worker "
                      "pool into an artifact store")
    fleet_route.add_argument("--checkpoints", type=Path, required=True,
                             help="directory of .npz model checkpoints")
    fleet_route.add_argument("--model", required=True,
                             help="model id (checkpoint file stem)")
    fleet_route.add_argument("--store", type=Path, required=True,
                             help="sharded dataset store to read inputs "
                                  "from")
    fleet_route.add_argument("--artifacts", type=Path, required=True,
                             help="content-addressed artifact store for "
                                  "the forecasts")
    fleet_route.add_argument("--count", type=int, default=None,
                             help="samples to forecast (default: all)")
    fleet_route.add_argument("--workers", type=int, default=2,
                             help="pool worker processes (0/1 = serial)")
    fleet_route.add_argument("--jobs", type=Path, default=None,
                             help="job spool directory (default: "
                                  "<artifacts>/jobs)")
    fleet_route.add_argument("--out", type=Path, default=None,
                             help="also materialize forecasts as .npy "
                                  "files here")

    fleet_scrub = fleet_commands.add_parser(
        "scrub", help="re-hash every blob and manifest in an artifact "
                      "store; quarantine corrupt files")
    fleet_scrub.add_argument("artifacts", type=Path,
                             help="artifact store root")
    fleet_scrub.add_argument("--no-quarantine", action="store_true",
                             help="report only; leave corrupt files in "
                                  "place")
    fleet_scrub.add_argument("--json", action="store_true",
                             help="emit the full report as JSON")

    fleet_chaos = fleet_commands.add_parser(
        "chaos", help="drain a forecast spool under a seeded fault plan "
                      "and report recovery (the CI chaos-smoke driver)")
    fleet_chaos.add_argument("--checkpoints", type=Path, required=True,
                             help="directory of .npz model checkpoints")
    fleet_chaos.add_argument("--model", required=True,
                             help="model id (checkpoint file stem)")
    fleet_chaos.add_argument("--store", type=Path, required=True,
                             help="sharded dataset store to read inputs "
                                  "from")
    fleet_chaos.add_argument("--artifacts", type=Path, required=True,
                             help="artifact store the forecasts (and the "
                                  "blob-corruption faults) land in")
    fleet_chaos.add_argument("--count", type=int, default=None,
                             help="samples to forecast (default: all)")
    fleet_chaos.add_argument("--workers", type=int, default=3,
                             help="pool worker processes")
    fleet_chaos.add_argument("--seed", type=int, default=0,
                             help="fault-plan seed (same seed, same "
                                  "faults)")
    fleet_chaos.add_argument("--plan", type=Path, default=None,
                             help="JSON fault plan to replay (overrides "
                                  "--seed generation)")
    fleet_chaos.add_argument("--faults", type=int, default=2,
                             help="faults to generate when no --plan")
    fleet_chaos.add_argument("--kinds", default="kill_worker,corrupt_blob",
                             help="comma-separated fault kinds for "
                                  "generation")
    fleet_chaos.add_argument("--jobs", type=Path, default=None,
                             help="job spool directory (default: "
                                  "<artifacts>/jobs)")
    fleet_chaos.add_argument("--lease-seconds", type=float, default=2.0,
                             help="job lease length (low = fast orphan "
                                  "requeue)")
    fleet_chaos.add_argument("--timeout", type=float, default=300.0,
                             help="drain deadline in seconds")
    fleet_chaos.add_argument("--report", type=Path, default=None,
                             help="also write the JSON report here")

    return parser


def _spec(scale, name: str):
    from repro.fpga.generators import scaled_suite

    for spec in scaled_suite(scale):
        if spec.name == name:
            return spec
    known = ", ".join(s.name for s in scaled_suite(scale))
    raise SystemExit(f"unknown design {name!r}; choose from: {known}")


def cmd_datagen(args) -> int:
    from repro.flows import build_design_bundle

    scale = get_scale(args.scale)
    bundle = build_design_bundle(_spec(scale, args.design), scale,
                                 num_placements=args.placements,
                                 seed=args.seed)
    bundle.dataset.save(args.out)
    print(f"wrote {len(bundle.dataset)} samples "
          f"({bundle.layout.image_size}px, channel width "
          f"{bundle.channel_width}) to {args.out}")
    return 0


def cmd_train(args) -> int:
    try:
        if args.train_command == "status":
            # Deliberately numpy-free: only repro.train.status is
            # imported, so polling a run never pays the model-stack
            # import cost.
            return _train_status(args)
        if args.train_command == "run":
            return _train_run(args)
        if args.train_command == "resume":
            return _train_resume(args)
        if args.train_command == "sweep":
            return _train_sweep(args)
        return _train_legacy(args)
    except (FileNotFoundError, FileExistsError, ValueError) as error:
        raise SystemExit(f"error: {error}") from None


def _print_run_result(result) -> None:
    state = "done" if result.completed else "interrupted"
    print(f"{state}: step {result.global_step}"
          + (f", best {result.best_value:.6f} at epoch {result.best_epoch}"
             if result.best_value is not None else ""))
    for path in result.exported:
        print(f"published {path}")
    if not result.completed:
        print(f"resume with: repro train resume {result.run_dir}")


def _train_run(args) -> int:
    from repro.train import Runner, TrainSpec

    spec = TrainSpec.load(args.spec)
    runner = Runner.create(spec, args.runs, log=print, trace=args.trace)
    print(f"run directory: {runner.run_dir}")
    result = runner.run(stop_after_steps=args.stop_after_steps,
                        log_every=args.log_every)
    _print_run_result(result)
    return 0


def _train_resume(args) -> int:
    from repro.train import Runner

    runner = Runner.resume(args.run_dir, log=print, trace=args.trace)
    result = runner.run(stop_after_steps=args.stop_after_steps,
                        log_every=args.log_every)
    _print_run_result(result)
    return 0


def _train_sweep(args) -> int:
    from repro.train import load_sweep_file, prepare_specs, run_sweep

    specs = prepare_specs(load_sweep_file(args.specs),
                          base_seed=args.base_seed)
    print(f"sweep: {len(specs)} run(s), {args.workers} worker(s) "
          f"-> {args.runs}")
    rows = run_sweep(specs, args.runs, workers=args.workers, log=print)
    failed = [row for row in rows if row["status"] == "failed"]
    if failed:
        raise SystemExit(f"{len(failed)} of {len(rows)} run(s) failed")
    return 0


def _train_status(args) -> int:
    import json as json_module

    from repro.train.status import (
        format_run_status,
        iter_run_dirs,
        read_run_status,
    )

    run_dirs = list(iter_run_dirs(args.run_dir))
    if not run_dirs:
        raise SystemExit(f"error: no run directories under {args.run_dir}")
    infos = [read_run_status(run_dir) for run_dir in run_dirs]
    if args.json:
        # Always an array, so consumers never probe the shape.
        print(json_module.dumps(infos, indent=1, sort_keys=True))
    else:
        print("\n\n".join(format_run_status(info) for info in infos))
    return 0


def _train_legacy(args) -> int:
    """The original flat ``repro train``: suite datagen + scratch run."""
    from repro.flows import build_suite_bundles
    from repro.gan.dataset import Dataset
    from repro.train import Runner, TrainSpec

    if args.designs is None or args.out is None:
        raise SystemExit("error: repro train needs a subcommand "
                         "(run/resume/sweep/status) or the legacy flags "
                         "--designs and --out")
    scale = get_scale(args.scale)
    designs = [name.strip() for name in args.designs.split(",")]
    bundles = build_suite_bundles(scale, seed=args.seed, designs=designs,
                                  log=print)
    combined = Dataset()
    for bundle in bundles.values():
        combined.extend(bundle.dataset)
    epochs = args.epochs if args.epochs is not None else scale.epochs
    spec = TrainSpec(name="train", data="inline", scale=scale.name,
                     seed=args.seed, epochs=epochs, order="shuffle",
                     publish=False)
    runner = Runner(spec, dataset=combined)
    print(f"training on {len(combined)} pairs for {epochs} epochs")
    runner.run(log_every=max(1, epochs // 5))
    runner.model.save(args.out)
    print(f"checkpoint written to {args.out}")
    return 0


def cmd_forecast(args) -> int:
    from repro.flows.datagen import build_design_bundle
    from repro.fpga import Placement, PlacerOptions, SimulatedAnnealingPlacer
    from repro.gan import Pix2Pix, image_congestion_score
    from repro.gan.dataset import from_unit_range, input_from_images
    from repro.viz import render_connectivity, render_placement, write_png

    scale = get_scale(args.scale)
    model = Pix2Pix.load(args.model)
    bundle = build_design_bundle(
        _spec(scale, args.design), scale, num_placements=1, seed=args.seed,
        image_size=model.config.image_size)
    result = SimulatedAnnealingPlacer(
        bundle.netlist, bundle.arch,
        PlacerOptions(seed=args.placer_seed)).place()
    placement = Placement(bundle.netlist, bundle.arch,
                          list(result.placement.site_of))
    place_image = render_placement(placement, bundle.layout)
    connect = render_connectivity(bundle.netlist, placement, bundle.layout)
    x = input_from_images(place_image, connect, scale.connect_weight)
    generated = model.generate(x, sample_noise=False)
    forecast = from_unit_range(generated[0].transpose(1, 2, 0))
    score = image_congestion_score(forecast, bundle.channel_mask)

    write_png(args.out / "place.png", place_image)
    write_png(args.out / "forecast.png", forecast)
    print(f"forecast congestion {score:.4f}; images in {args.out}")
    return 0


def cmd_table2(args) -> int:
    from repro.flows.experiments import Table2Row, run_table2

    scale = get_scale(args.scale)
    designs = ([name.strip() for name in args.designs.split(",")]
               if args.designs else None)
    rows = run_table2(scale, designs=designs, seed=args.seed,
                      cache_dir=args.cache_dir, log=print)
    print()
    print(Table2Row.header())
    for row in rows:
        print(row.format())
    return 0


def cmd_explore(args) -> int:
    from repro.flows import build_suite_bundles, run_exploration, train_explorer

    scale = get_scale(args.scale)
    bundles = build_suite_bundles(scale, seed=args.seed, log=print)
    bundle = bundles[args.design]
    trainer = train_explorer(scale, bundles, args.design, seed=args.seed)
    outcome = run_exploration(bundle, trainer)
    print(f"rank correlation rho={outcome.rank_correlation:.2f}")
    for obj in outcome.outcomes:
        print(f"  {obj.objective:<12} chosen={obj.chosen_index} "
              f"true={obj.true_score:.4f} regret={obj.regret:.4f}")
    return 0


def cmd_serve(args) -> int:
    from repro.serve import (
        BatchingEngine,
        ForecastCache,
        ForecastServer,
        ModelRegistry,
    )

    try:
        registry = ModelRegistry.from_directory(
            args.checkpoints, log=lambda msg: print(f"[registry] {msg}"))
    except (FileNotFoundError, ValueError) as error:
        raise SystemExit(f"error: {error}") from None
    cache = ForecastCache(args.cache_size) if args.cache_size else None
    # Drift monitoring switches on per model when training left a
    # reference profile (<stem>-reference.json) next to its checkpoint.
    from repro.obs.drift import DriftMonitor, ReferenceProfile
    from repro.obs.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    drift = None
    for model_id in registry.model_ids:
        reference = Path(args.checkpoints) / f"{model_id}-reference.json"
        if reference.exists():
            if drift is None:
                drift = DriftMonitor(metrics=metrics)
            drift.set_reference(model_id, ReferenceProfile.load(reference))
            print(f"[drift] reference profile loaded for {model_id}")
    engine = BatchingEngine(registry, max_batch=args.max_batch,
                            max_wait_ms=args.max_wait_ms, cache=cache,
                            metrics=metrics, drift=drift,
                            threads=args.threads,
                            inference_mode=args.inference_mode)
    server = ForecastServer(engine, host=args.host, port=args.port,
                            verbose=args.verbose, obs_dir=args.obs_dir,
                            alert_rules=args.alert_rules,
                            publish_interval=args.publish_interval)
    with server:
        print(f"serving {len(registry)} model(s) on {server.url} "
              f"(max_batch={args.max_batch}, "
              f"max_wait_ms={args.max_wait_ms}, "
              f"cache={args.cache_size})", flush=True)
        if args.obs_dir is not None:
            print(f"[obs] publishing telemetry to {args.obs_dir} "
                  f"every {args.publish_interval}s", flush=True)
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down")
    stats = engine.stats()
    print(f"served {stats['completed']} forecast(s) in "
          f"{stats['batches']} batch(es)")
    return 0


def cmd_data(args) -> int:
    from repro.data import StoreError

    try:
        return _run_data(args)
    except (StoreError, ValueError) as error:
        raise SystemExit(f"error: {error}") from None


def _run_data(args) -> int:
    from repro.data import ShardedStore, StoreError, build_design_store

    if args.data_command == "build":
        from repro.flows.datagen import suite_image_size

        scale = get_scale(args.scale)
        specs = [_spec(scale, name.strip())
                 for name in args.designs.split(",")]
        image_size = (suite_image_size(scale, specs, seed=args.seed)
                      if len(specs) > 1 else None)
        store = None
        for spec in specs:
            print(f"building {spec.name} "
                  f"({args.placements or scale.placements_per_design} "
                  f"placements, {args.workers} worker(s))")
            store = build_design_store(
                spec, scale, args.out, num_placements=args.placements,
                seed=args.seed, workers=args.workers,
                shard_size=args.shard_size, image_size=image_size,
                store=store)
        print(f"wrote {store.num_samples} samples in {store.num_shards} "
              f"shard(s) ({store.image_size}px) to {args.out}")
        return 0

    if args.data_command == "merge":
        merged = ShardedStore.create(args.out, shard_size=args.shard_size)
        for path in args.inputs:
            merged.merge_from(ShardedStore.open(path))
        merged.flush()
        print(f"merged {len(args.inputs)} store(s): {merged.num_samples} "
              f"samples in {merged.num_shards} shard(s) at {args.out}")
        return 0

    if args.data_command == "stats":
        store = ShardedStore.open(args.store)
        for key, value in store.stats().items():
            print(f"{key:>20}: {value}")
        return 0

    if args.data_command == "verify":
        store = ShardedStore.open(args.store)
        problems = store.verify()
        if problems:
            for problem in problems:
                print(f"FAIL {problem}")
            raise SystemExit(f"{len(problems)} problem(s) in {args.store}")
        print(f"ok: {store.num_samples} samples in {store.num_shards} "
              f"shard(s) verified")
        return 0

    if args.data_command == "convert":
        store = ShardedStore.convert_archive(
            args.archive, args.out, shard_size=args.shard_size)
        print(f"converted {args.archive} -> {args.out} "
              f"({store.num_samples} samples, {store.num_shards} shard(s))")
        return 0

    raise StoreError(f"unknown data command {args.data_command!r}")


def _parse_thresholds(text: str) -> tuple:
    try:
        values = tuple(float(part) for part in text.split(",") if part)
    except ValueError:
        raise SystemExit(f"error: bad thresholds {text!r}") from None
    if not values:
        raise SystemExit("error: need at least one hotspot threshold")
    return values


def _print_metrics(report: dict) -> None:
    for name in sorted(report["metrics"]):
        print(f"  {name:<24} {report['metrics'][name]:.6f}")


def cmd_eval(args) -> int:
    from repro.data import StoreError

    try:
        return _run_eval(args)
    except KeyError as error:
        # ModelRegistry.get raises KeyError with a readable message.
        raise SystemExit(f"error: {error.args[0]}") from None
    except (FileNotFoundError, StoreError, ValueError) as error:
        raise SystemExit(f"error: {error}") from None


def _run_eval(args) -> int:
    from repro.data import ShardedStore
    from repro.eval import (
        BASELINES,
        CheckpointForecaster,
        compare_reports,
        evaluate_store,
        evaluation_report,
        load_report,
        make_baseline,
        parse_split,
        write_report,
    )

    if args.eval_command == "compare":
        tolerances = {}
        for item in args.tolerance:
            name, _, value = item.partition("=")
            if not name or not value:
                raise SystemExit(f"error: bad --tolerance {item!r} "
                                 f"(expected METRIC=TOL)")
            tolerances[name] = float(value)
        comparison = compare_reports(
            load_report(args.report_a), load_report(args.report_b),
            tolerances=tolerances,
            default_tolerance=args.default_tolerance,
            require_same_data=not args.allow_different_data)
        print(f"comparing {args.report_a} -> {args.report_b}")
        print(comparison.format())
        if not comparison.ok:
            raise SystemExit(1)
        return 0

    store = ShardedStore.open(args.store)
    split = parse_split(args.split)
    thresholds = _parse_thresholds(args.thresholds)
    eval_kwargs = dict(split=split, thresholds=thresholds,
                       roc_threshold=args.roc_threshold,
                       batch_size=args.batch_size)

    if args.eval_command == "run":
        chosen = [bool(args.checkpoint),
                  bool(args.checkpoints and args.model), bool(args.baseline)]
        if sum(chosen) != 1:
            raise SystemExit(
                "error: choose exactly one of --checkpoint, "
                "--checkpoints + --model, or --baseline")
        if args.threads is not None:
            from repro.nn import parallel, set_num_threads

            set_num_threads(args.threads)
            # Spawned eval workers re-import fresh interpreters: carry
            # the thread count through the environment as well.
            os.environ[parallel.ENV_THREADS] = str(args.threads)
        if args.checkpoint:
            forecaster = CheckpointForecaster.from_checkpoint(
                args.checkpoint, inference_mode=args.inference_mode)
            identity = forecaster.identity
        elif args.baseline:
            if args.inference_mode != "float32":
                raise SystemExit(
                    "error: --inference-mode applies to checkpoint "
                    "forecasters, not baselines")
            forecaster, identity = make_baseline(args.baseline, store, split)
        else:
            from repro.serve import ModelRegistry

            registry = ModelRegistry.from_directory(args.checkpoints)
            forecaster = CheckpointForecaster.from_registry(
                registry, args.model, inference_mode=args.inference_mode)
            identity = forecaster.identity
        result = evaluate_store(store, forecaster, workers=args.workers,
                                **eval_kwargs)
        report = evaluation_report(store, result, identity, split,
                                   thresholds=thresholds,
                                   roc_threshold=args.roc_threshold,
                                   batch_size=args.batch_size)
        print(f"evaluated {identity['id']} on {result.num_samples} "
              f"sample(s) [{args.split}]")
        _print_metrics(report)
        if args.out is not None:
            write_report(args.out, report)
            print(f"report written to {args.out}")
        return 0

    if args.eval_command == "baselines":
        for name in sorted(BASELINES):
            forecaster, identity = make_baseline(name, store, split)
            result = evaluate_store(store, forecaster, **eval_kwargs)
            report = evaluation_report(store, result, identity, split,
                                       thresholds=thresholds,
                                       roc_threshold=args.roc_threshold,
                                       batch_size=args.batch_size)
            print(f"{name} ({result.num_samples} sample(s), {args.split}):")
            _print_metrics(report)
            if args.out_dir is not None:
                path = args.out_dir / f"{name}.json"
                write_report(path, report)
                print(f"  report written to {path}")
        return 0

    raise SystemExit(f"error: unknown eval command {args.eval_command!r}")


def cmd_obs(args) -> int:
    # Deliberately numpy-free, same contract as `repro train status`:
    # only repro.obs modules load, so tailing telemetry from a shell is
    # instant and works without the scientific stack.
    import json as json_module

    from repro.obs.render import (
        TELEMETRY_NAME,
        TRACE_NAME,
        format_span_summary,
        format_telemetry_record,
        format_telemetry_summary,
        read_telemetry,
        summarize_spans,
        summarize_telemetry,
        tail_telemetry,
    )

    def _resolve(path: Path, default_name: str) -> Path:
        return path / default_name if path.is_dir() else path

    if args.obs_command == "summary":
        path = _resolve(args.run_dir, TELEMETRY_NAME)
        records = read_telemetry(path)
        if not records:
            raise SystemExit(f"error: no telemetry at {path}")
        summary = summarize_telemetry(records)
        if args.json:
            print(json_module.dumps(summary, indent=1, sort_keys=True))
        else:
            print(format_telemetry_summary(summary))
        return 0

    if args.obs_command == "tail":
        path = _resolve(args.run_dir, TELEMETRY_NAME)
        records = tail_telemetry(path, count=args.count)
        if not records:
            raise SystemExit(f"error: no telemetry at {path}")
        for record in records:
            print(format_telemetry_record(record))
        return 0

    if args.obs_command == "trace":
        from repro.obs.trace import read_spans, write_chrome_trace

        path = _resolve(args.trace, TRACE_NAME)
        if not path.exists():
            raise SystemExit(f"error: no trace at {path}")
        spans = read_spans(path)
        if args.chrome is not None:
            count = write_chrome_trace(spans, args.chrome)
            print(f"wrote {count} event(s) to {args.chrome} "
                  f"(open in chrome://tracing or https://ui.perfetto.dev)")
            return 0
        if not spans:
            raise SystemExit(f"error: trace {path} is empty")
        print(format_span_summary(summarize_spans(spans)))
        return 0

    if args.obs_command == "agg":
        from repro.obs.aggregate import aggregate_dir

        fleet = aggregate_dir(args.directory)
        if not fleet.snapshots:
            raise SystemExit(f"error: no telemetry snapshots under "
                             f"{args.directory}")
        if args.json:
            registry = (fleet.worker_registry() if args.per_worker
                        else fleet.registry())
            print(json_module.dumps(
                {"workers": fleet.workers,
                 "merged": registry.snapshot()},
                indent=1, sort_keys=True))
        else:
            print(fleet.render_prometheus(per_worker=args.per_worker),
                  end="")
        return 0

    if args.obs_command == "top":
        from repro.obs.dashboard import make_source, run_top

        run_top(make_source(args.target), interval=args.interval,
                frames=args.frames, window=args.window)
        return 0

    if args.obs_command == "alerts":
        from repro.obs.alerts import ALERTS_NAME, read_alert_log
        from repro.obs.dashboard import firing_from_log

        path = _resolve(args.path, ALERTS_NAME)
        events, skipped = read_alert_log(path)
        if not events and not path.exists():
            raise SystemExit(f"error: no alert log at {path}")
        firing = firing_from_log(events)
        if args.json:
            print(json_module.dumps(
                {"events": events, "firing": firing,
                 "skipped_lines": skipped},
                indent=1, sort_keys=True))
            return 0
        for event in events:
            stamp = time.strftime(
                "%H:%M:%S", time.localtime(event.get("at_unix", 0)))
            print(f"{stamp}  {event.get('state', '?'):<9} "
                  f"{event.get('rule', '?'):<28} "
                  f"{event.get('condition', '')} "
                  f"(value {event.get('value')})")
        if skipped:
            print(f"[{skipped} unparseable line(s) skipped]")
        print(f"firing now: "
              f"{', '.join(e['rule'] for e in firing) if firing else 'none'}")
        return 0

    raise SystemExit(f"error: unknown obs command {args.obs_command!r}")


def cmd_fleet(args) -> int:
    try:
        if args.fleet_command == "up":
            return _fleet_up(args)
        if args.fleet_command == "status":
            return _fleet_status(args)
        if args.fleet_command == "route":
            return _fleet_route(args)
        if args.fleet_command == "scrub":
            return _fleet_scrub(args)
        if args.fleet_command == "chaos":
            return _fleet_chaos(args)
    except (FileNotFoundError, ValueError) as error:
        raise SystemExit(f"error: {error}") from None
    raise SystemExit(f"error: unknown fleet command {args.fleet_command!r}")


def _fleet_up(args) -> int:
    from repro.fleet import FleetRouter, WorkerError
    from repro.serve import ForecastCache, ForecastServer

    cache = ForecastCache(args.cache_size) if args.cache_size else None
    try:
        router = FleetRouter.local(
            args.checkpoints, workers=args.workers, mode=args.mode,
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
            cache=cache, obs_dir=args.obs_dir,
            publish_interval=args.publish_interval,
            max_inflight=args.max_inflight,
            worker_queue_limit=args.queue_limit,
            threads=args.threads,
            inference_mode=args.inference_mode)
    except (FileNotFoundError, ValueError, WorkerError) as error:
        raise SystemExit(f"error: {error}") from None
    server = ForecastServer(router, host=args.host, port=args.port,
                            verbose=args.verbose, obs_dir=args.obs_dir,
                            alert_rules=args.alert_rules,
                            publish_interval=args.publish_interval)
    with server:
        print(f"fleet: {args.workers} {args.mode} worker(s) serving "
              f"{len(router.registry)} model(s) on {server.url} "
              f"(max_inflight={args.max_inflight}, "
              f"queue_limit={args.queue_limit}, "
              f"cache={args.cache_size})", flush=True)
        if args.obs_dir is not None:
            print(f"[obs] fleet telemetry -> {args.obs_dir} "
                  f"(watch with: repro obs top {args.obs_dir})", flush=True)
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down fleet")
    stats = router.stats()
    print(f"routed {stats['completed']} forecast(s) across "
          f"{stats['workers']} worker(s)")
    return 0


def _fleet_status(args) -> int:
    import json as json_module

    from repro.fleet.jobs import JobStore
    from repro.obs.aggregate import aggregate_dir
    from repro.obs.timeseries import flatten_export

    root = args.root
    if not root.exists():
        raise SystemExit(f"error: no such directory: {root}")
    # Accept either the spool itself or a parent holding jobs/.
    spool = root if (root / "pending").is_dir() else root / "jobs"
    payload: dict = {"root": str(root)}
    if (spool / "pending").is_dir():
        store = JobStore(spool)
        payload["jobs"] = store.counts()
    fleet = aggregate_dir(root)
    if fleet.snapshots:
        payload["workers"] = fleet.workers
        payload["telemetry"] = {
            name: value
            for name, value in flatten_export(fleet.merged).items()
            if name.startswith("fleet_") or name.startswith("serve_")}
    if "jobs" not in payload and "telemetry" not in payload:
        raise SystemExit(f"error: {root} holds neither a job spool nor "
                         f"telemetry snapshots")
    if args.json:
        print(json_module.dumps(payload, indent=1, sort_keys=True))
        return 0
    if "jobs" in payload:
        counts = payload["jobs"]
        total = sum(counts.values())
        print(f"jobs ({total} total): "
              + ", ".join(f"{state} {count}"
                          for state, count in counts.items()))
    if "telemetry" in payload:
        print(f"workers publishing: {len(payload['workers'])} "
              f"({', '.join(payload['workers'])})")
        for name, value in sorted(payload["telemetry"].items()):
            print(f"  {name:<40} {value:g}")
    return 0


def _fleet_route(args) -> int:
    from repro.data import ShardedStore, StoreError
    from repro.fleet import ArtifactStore, JobStore, WorkerPool

    try:
        store = ShardedStore.open(args.store)
    except StoreError as error:
        raise SystemExit(f"error: {error}") from None
    count = store.num_samples if args.count is None \
        else min(args.count, store.num_samples)
    if count < 1:
        raise SystemExit("error: nothing to forecast (empty store)")
    spool_root = args.jobs if args.jobs is not None else args.artifacts / "jobs"
    if spool_root.exists():
        import shutil
        shutil.rmtree(spool_root)
    jobs = JobStore(spool_root)
    for index in range(count):
        jobs.submit("forecast", {
            "checkpoints": str(args.checkpoints), "model": args.model,
            "input": {"store": str(args.store), "index": index},
            "artifacts": str(args.artifacts)})
    print(f"routing {count} forecast job(s) through {args.workers} "
          f"worker(s) -> {args.artifacts}")
    counts = WorkerPool(spool_root, workers=args.workers).run_until_drained()
    failed = jobs.jobs("failed")
    for job in failed:
        last_line = (job.error or "?").strip().splitlines()[-1]
        print(f"  FAILED {job.job_id}: {last_line}")
    artifacts = ArtifactStore(args.artifacts)
    done = jobs.jobs("done")
    for job in done:
        print(f"  {job.job_id}: artifact {job.result['artifact'][:12]}")
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            data = artifacts.read_bytes(job.result["artifact"])
            (args.out / f"{job.job_id}.npy").write_bytes(data)
    if args.out is not None and done:
        print(f"materialized {len(done)} forecast(s) to {args.out}")
    print(f"done: {counts['done']} ok, {counts['failed']} failed; "
          f"store now holds {len(artifacts)} artifact(s)")
    if failed:
        raise SystemExit(f"{len(failed)} job(s) failed")
    return 0


def _fleet_scrub(args) -> int:
    import json as json_module

    from repro.fleet import ArtifactStore

    if not args.artifacts.exists():
        raise SystemExit(f"error: no such directory: {args.artifacts}")
    store = ArtifactStore(args.artifacts)
    report = store.scrub(quarantine=not args.no_quarantine)
    if args.json:
        print(json_module.dumps(report, indent=1, sort_keys=True))
    else:
        print(f"scrubbed {report['blobs_scanned']} blob(s), "
              f"{report['manifests_scanned']} manifest(s)")
        for entry in report["corrupt_blobs"]:
            print(f"  CORRUPT blob {entry['digest'][:12]} "
                  f"(hashes to {entry['actual_sha256'][:12]})")
        for entry in report["corrupt_manifests"]:
            print(f"  CORRUPT manifest {entry['digest'][:12]}: "
                  f"{entry['problem']}")
        for entry in report["missing_blobs"]:
            print(f"  MISSING {entry['artifact']}: {entry['path']} "
                  f"({entry['sha256'][:12]})")
        for entry in report["quarantined"]:
            print(f"  quarantined -> {entry['to']}")
        print("clean" if report["clean"]
              else f"NOT clean: {len(report['corrupt_blobs'])} corrupt "
                   f"blob(s), {len(report['corrupt_manifests'])} corrupt "
                   f"manifest(s), {len(report['missing_blobs'])} missing "
                   f"blob(s)")
    return 0 if report["clean"] else 1


def _fleet_chaos(args) -> int:
    import json as json_module
    import shutil

    from repro.data import ShardedStore, StoreError
    from repro.fleet import JobStore
    from repro.fleet.chaos import ChaosError, FaultPlan, run_chaos_drain

    try:
        store = ShardedStore.open(args.store)
    except StoreError as error:
        raise SystemExit(f"error: {error}") from None
    count = store.num_samples if args.count is None \
        else min(args.count, store.num_samples)
    if count < 1:
        raise SystemExit("error: nothing to forecast (empty store)")
    try:
        if args.plan is not None:
            plan = FaultPlan.load(args.plan)
        else:
            plan = FaultPlan.generate(
                args.seed, workers=args.workers, jobs=count,
                count=args.faults,
                kinds=tuple(kind.strip()
                            for kind in args.kinds.split(",") if kind))
    except (ChaosError, json_module.JSONDecodeError, KeyError) as error:
        raise SystemExit(f"error: bad fault plan: {error}") from None
    spool_root = args.jobs if args.jobs is not None \
        else args.artifacts / "jobs"
    if spool_root.exists():
        shutil.rmtree(spool_root)
    jobs = JobStore(spool_root)
    for index in range(count):
        jobs.submit("forecast", {
            "checkpoints": str(args.checkpoints), "model": args.model,
            "input": {"store": str(args.store), "index": index},
            "artifacts": str(args.artifacts)})
    print(f"chaos: draining {count} forecast job(s) through "
          f"{args.workers} worker(s) under {len(plan.faults)} fault(s) "
          f"(seed {plan.seed})")
    for fault in plan.faults:
        print(f"  plan: {fault.kind} target={fault.target} "
              f"at={fault.at} job(s) finished")
    report = run_chaos_drain(
        spool_root, plan, workers=args.workers,
        artifacts=args.artifacts, timeout=args.timeout,
        lease_seconds=args.lease_seconds)
    for event in report["events"]:
        applied = "applied" if event.get("applied") else \
            f"skipped ({event.get('reason', '?')})"
        print(f"  fired: {event['kind']} at {event['finished']} "
              f"finished -> {applied}")
    counts = report["counts"]
    print(f"drained: {counts['done']} done, {counts['failed']} failed, "
          f"{counts['requeued']} requeued, {counts['restarts']} worker "
          f"restart(s)")
    scrub = report.get("scrub")
    if scrub is not None:
        print(f"scrub: {'clean' if scrub['clean'] else 'NOT clean'} "
              f"({len(scrub['corrupt_blobs'])} corrupt, "
              f"{len(scrub['missing_blobs'])} missing, "
              f"{len(scrub['quarantined'])} quarantined)")
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(
            json_module.dumps(report, indent=1, sort_keys=True) + "\n")
        print(f"report -> {args.report}")
    return 0 if counts["failed"] == 0 else 1


_COMMANDS = {
    "datagen": cmd_datagen,
    "train": cmd_train,
    "forecast": cmd_forecast,
    "table2": cmd_table2,
    "explore": cmd_explore,
    "serve": cmd_serve,
    "data": cmd_data,
    "eval": cmd_eval,
    "obs": cmd_obs,
    "fleet": cmd_fleet,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream pipe closed early (`repro ... | head`): exit
        # quietly, pointing stdout at devnull so the interpreter's
        # final flush cannot raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
