"""Persistent thread pool sharding the conv hot paths across cores.

numpy releases the GIL inside BLAS gemms and inside the raw dtype
transfer loops that back ``np.copyto``/``np.add`` on large arrays, so a
plain ``threading`` pool buys real parallelism for the layers' stacked
matmuls, im2col gathers, and col2im scatters — no pickling, no process
boundary, and every worker writes straight into the model's existing
:class:`~repro.nn.workspace.Workspace` arena.

Determinism contract (the reason results are *bitwise* stable):

* Work is only ever split on the **sample (batch) axis** — or, for
  batch-1 copies/scatters, an axis whose elements are computed fully
  independently.  The stacked per-sample gemm the layers already use
  (``out[i] = w @ col_i.T`` via one broadcast ``np.matmul``) computes
  each sample with an independent BLAS call, so sample ``i``'s bits do
  not depend on which thread ran it or on how many other samples shared
  its shard.  Splitting a *single* gemm by rows is deliberately not
  offered: BLAS blocking makes row ``i``'s rounding depend on the total
  row count (see :func:`repro.nn.functional.blocked_matmul`).
* Cross-sample reductions (weight-gradient sums) stay on the calling
  thread in the legacy order.
* ``threads=1`` (the default) never touches the pool: callers take the
  exact serial code path, so the legacy bit pattern is preserved by
  construction, and N-thread results equal 1-thread results for every N
  because each element's computation is shard-invariant.

The pool is process-global and lazily started: ``REPRO_THREADS`` (or
:func:`set_num_threads`) picks the worker count, the first parallel
region spawns ``threads - 1`` daemon workers (the caller runs shard 0),
and a stored pid makes the pool fork-safe — a forked or spawned child
sees a stale/absent pool and transparently rebuilds its own.

Accounting: per-variant (``float32`` / ``int8``) gemm call counts and
wall time accumulate in thread-local integer cells merged on read (sums
of ints are order-independent, hence deterministic), per-worker busy
nanoseconds are single-writer cells, and an optional metrics registry
attached via :func:`attach_metrics` receives per-gemm latency
observations for the obs layer's counters and histograms.
"""

from __future__ import annotations

import os
import queue
import threading
import time

import numpy as np

ENV_THREADS = "REPRO_THREADS"

#: Gemm variants tracked by the per-thread accounting.
GEMM_VARIANTS = ("float32", "int8")

_lock = threading.RLock()
_num_threads: int | None = None      # resolved lazily from the environment
_pool: "_Pool | None" = None

# -- thread-count configuration ---------------------------------------------


def _parse_env() -> int:
    raw = os.environ.get(ENV_THREADS, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{ENV_THREADS} must be a positive integer, got {raw!r}"
        ) from exc
    if value < 1:
        raise ValueError(
            f"{ENV_THREADS} must be a positive integer, got {value}")
    return value


def get_num_threads() -> int:
    """The configured thread count (``REPRO_THREADS``, default 1)."""
    n = _num_threads
    if n is None:
        with _lock:
            n = _num_threads
            if n is None:
                n = _parse_env()
                _set_resolved(n)
    return n


def _set_resolved(n: int) -> None:
    global _num_threads
    _num_threads = n


def set_num_threads(n: int) -> None:
    """Set the global thread count; 1 restores the bitwise-legacy path.

    Takes effect on the next parallel region — the pool grows lazily and
    never shrinks (idle workers cost one blocked ``queue.get`` each), so
    toggling between counts is free.
    """
    if not isinstance(n, int) or isinstance(n, bool) or n < 1:
        raise ValueError(f"thread count must be a positive int, got {n!r}")
    with _lock:
        _set_resolved(n)


# -- per-variant gemm accounting --------------------------------------------


class _GemmCell:
    """One thread's gemm tallies for one variant (single-writer ints)."""

    __slots__ = ("calls", "ns")

    def __init__(self):
        self.calls = 0
        self.ns = 0


class _ThreadStats(threading.local):
    """Thread-local gemm cells, registered globally for merged reads."""

    def __init__(self):
        self.cells = {variant: _GemmCell() for variant in GEMM_VARIANTS}
        with _lock:
            _all_cells.append(self.cells)


_all_cells: list[dict[str, _GemmCell]] = []
_tls = _ThreadStats()

#: Attached metrics sinks: id(registry) -> (counter children, histogram
#: children) keyed by variant.  Normally empty or a single entry.
_metric_sinks: dict[int, tuple[dict, dict]] = {}

#: Histogram bounds for gemm latency (seconds) — gemms at the repo's
#: scales run tens of microseconds to tens of milliseconds.
GEMM_LATENCY_BUCKETS = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
                        3e-2, 1e-1, 3e-1, 1.0)


def record_gemm(variant: str, ns: int) -> None:
    """Account one stacked-gemm dispatch (caller-thread wall time)."""
    cell = _tls.cells[variant]
    cell.calls += 1
    cell.ns += ns
    if _metric_sinks:
        seconds = ns / 1e9
        for counters, histograms in tuple(_metric_sinks.values()):
            counters[variant].inc()
            histograms[variant].observe(seconds)


def gemm_stats() -> dict:
    """Merged per-variant gemm tallies (integer sums — deterministic)."""
    with _lock:
        cells = list(_all_cells)
    out = {variant: {"calls": 0, "ns": 0} for variant in GEMM_VARIANTS}
    for per_thread in cells:
        for variant, cell in per_thread.items():
            out[variant]["calls"] += cell.calls
            out[variant]["ns"] += cell.ns
    return out


def reset_gemm_stats() -> None:
    with _lock:
        cells = list(_all_cells)
    for per_thread in cells:
        for cell in per_thread.values():
            cell.calls = 0
            cell.ns = 0


def attach_metrics(registry) -> None:
    """Mirror gemm accounting into an obs ``MetricsRegistry``.

    Registers ``nn_threads_in_use`` (collected gauge), and per-variant
    ``nn_gemm_total`` counters plus ``nn_gemm_seconds`` latency
    histograms, labeled by ``variant``.  Idempotent per registry;
    detach with :func:`detach_metrics` when the owner shuts down.
    """
    gauge = registry.gauge(
        "nn_threads_in_use",
        "Configured repro.nn gemm thread count", fn=get_num_threads)
    del gauge
    counter_family = registry.counter(
        "nn_gemm_total", "Stacked-gemm dispatches by variant",
        labelnames=("variant",))
    histogram_family = registry.histogram(
        "nn_gemm_seconds", "Stacked-gemm dispatch latency by variant",
        buckets=GEMM_LATENCY_BUCKETS, labelnames=("variant",))
    counters = {v: counter_family.labels(variant=v) for v in GEMM_VARIANTS}
    histograms = {v: histogram_family.labels(variant=v)
                  for v in GEMM_VARIANTS}
    with _lock:
        _metric_sinks[id(registry)] = (counters, histograms)


def detach_metrics(registry) -> None:
    with _lock:
        _metric_sinks.pop(id(registry), None)


# -- the pool ----------------------------------------------------------------


class _Latch:
    """Completion latch for one parallel region."""

    __slots__ = ("sem", "errors")

    def __init__(self):
        self.sem = threading.Semaphore(0)
        self.errors: list[BaseException] = []


class _Pool:
    """``n_workers`` daemon threads draining one task queue."""

    def __init__(self, n_workers: int):
        self.pid = os.getpid()
        self._tasks: queue.SimpleQueue = queue.SimpleQueue()
        self._threads: list[threading.Thread] = []
        self.busy_ns: list[int] = []
        self._shut = False
        self.grow(n_workers)

    def grow(self, n_workers: int) -> None:
        while len(self._threads) < n_workers:
            index = len(self._threads)
            self.busy_ns.append(0)
            thread = threading.Thread(
                target=self._worker, args=(index,),
                name=f"repro-nn-{index}", daemon=True)
            self._threads.append(thread)
            thread.start()

    def _worker(self, index: int) -> None:
        while True:
            item = self._tasks.get()
            if item is None:
                return
            fn, start, stop, latch = item
            t0 = time.perf_counter_ns()
            try:
                fn(start, stop)
            except BaseException as exc:  # propagate to the caller
                latch.errors.append(exc)
            finally:
                self.busy_ns[index] += time.perf_counter_ns() - t0
                latch.sem.release()

    def run(self, fn, spans: list[tuple[int, int]]) -> None:
        """Run ``fn(start, stop)`` over spans; caller executes spans[0].

        Always joins every dispatched shard before returning (even when
        the caller's own shard raises) so no worker is still writing
        into arena memory after the region exits.
        """
        latch = _Latch()
        for start, stop in spans[1:]:
            self._tasks.put((fn, start, stop, latch))
        try:
            fn(spans[0][0], spans[0][1])
        finally:
            for _ in spans[1:]:
                latch.sem.acquire()
        if latch.errors:
            raise latch.errors[0]

    def shutdown(self) -> None:
        if self._shut:
            return
        self._shut = True
        for _ in self._threads:
            self._tasks.put(None)
        if os.getpid() == self.pid:
            for thread in self._threads:
                thread.join(timeout=5.0)
        self._threads = []


def _ensure_pool(n_threads: int) -> _Pool:
    global _pool
    with _lock:
        pool = _pool
        if pool is not None and pool.pid != os.getpid():
            # Forked child: the parent's worker threads do not exist
            # here.  Drop the stale handle and rebuild lazily.
            pool = None
        if pool is None:
            pool = _Pool(n_threads - 1)
            _pool = pool
        elif len(pool._threads) < n_threads - 1:
            pool.grow(n_threads - 1)
        return pool


def shutdown_pool() -> None:
    """Stop the worker threads (idempotent; the pool restarts lazily)."""
    global _pool
    with _lock:
        pool, _pool = _pool, None
    if pool is not None:
        pool.shutdown()


def pool_stats() -> dict:
    """Live pool shape + per-worker busy time (for obs snapshots)."""
    with _lock:
        pool = _pool
        workers = list(pool.busy_ns) if pool is not None \
            and pool.pid == os.getpid() else []
    return {
        "threads": get_num_threads(),
        "pool_workers": len(workers),
        "worker_busy_ms": [ns / 1e6 for ns in workers],
    }


def _spans(total: int, shards: int) -> list[tuple[int, int]]:
    base, rem = divmod(total, shards)
    spans = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < rem else 0)
        spans.append((start, stop))
        start = stop
    return spans


def parallel_for(total: int, fn) -> None:
    """Run ``fn(start, stop)`` over ``[0, total)`` in contiguous shards.

    Serial (`fn(0, total)` on the calling thread) when the configured
    thread count is 1 or there is nothing to split — the legacy path by
    construction.  Exceptions from any shard propagate after all shards
    finish.
    """
    n = get_num_threads()
    if n <= 1 or total <= 1:
        fn(0, total)
        return
    spans = _spans(total, min(n, total))
    _ensure_pool(n).run(fn, spans)


# -- sharded numpy primitives ------------------------------------------------


def stacked_matmul(a: np.ndarray, b: np.ndarray, out: np.ndarray,
                   variant: str = "float32") -> np.ndarray:
    """``np.matmul(a, b, out=out)`` sharded on the stacked sample axis.

    ``b``/``out`` are 3-D stacks; ``a`` is either a shared 2-D operand
    (broadcast over samples) or a matching 3-D stack.  Each sample is an
    independent BLAS call in both the serial and sharded forms, so the
    result is bitwise identical for every thread count.  Batch-1 stacks
    always run serial (a single gemm cannot be split bitwise-safely).
    """
    t0 = time.perf_counter_ns()
    n = out.shape[0]
    if n > 1 and get_num_threads() > 1:
        if a.ndim == 2:
            def shard(start, stop):
                np.matmul(a, b[start:stop], out=out[start:stop])
        else:
            def shard(start, stop):
                np.matmul(a[start:stop], b[start:stop],
                          out=out[start:stop])
        parallel_for(n, shard)
    else:
        np.matmul(a, b, out=out)
    record_gemm(variant, time.perf_counter_ns() - t0)
    return out


def sharded_copy(dst: np.ndarray, src: np.ndarray,
                 casting: str = "same_kind") -> None:
    """``np.copyto(dst, src)`` sharded over the leading non-unit axis.

    A copy is elementwise, so any split is value-preserving; sharding
    follows the batch axis when it exists and the next axis for batch-1
    shapes (the placement-oracle case).
    """
    if get_num_threads() <= 1:
        np.copyto(dst, src, casting=casting)
        return
    if dst.shape[0] > 1:
        parallel_for(dst.shape[0], lambda s, e: np.copyto(
            dst[s:e], src[s:e], casting=casting))
    elif dst.ndim > 1 and dst.shape[1] > 1:
        d0, s0 = dst[0], src[0]
        parallel_for(d0.shape[0], lambda s, e: np.copyto(
            d0[s:e], s0[s:e], casting=casting))
    else:
        np.copyto(dst, src, casting=casting)
