"""Finite-difference gradient checking for layers and losses.

Used by the test suite to pin every analytic derivative in
:mod:`repro.nn.layers` to its numerical counterpart, which is the correctness
contract that lets the cGAN training loop trust the framework.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.layers import Module


def numerical_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray,
                       eps: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = fn(x)
        flat[index] = original - eps
        minus = fn(x)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * eps)
    return grad


def check_layer_input_grad(layer: Module, x: np.ndarray,
                           eps: float = 1e-4) -> float:
    """Max abs error between analytic and numeric input gradients.

    Uses ``loss = sum(forward(x) * r)`` with a fixed random projection ``r``
    so the full Jacobian is exercised.
    """
    rng = np.random.default_rng(7)
    out = layer.forward(x.copy())
    projection = rng.normal(size=out.shape).astype(np.float64)
    analytic = layer.backward(projection.astype(x.dtype))

    def loss(arr: np.ndarray) -> float:
        return float((layer.forward(arr) * projection).sum())

    numeric = numerical_gradient(loss, x.astype(np.float64), eps=eps)
    return float(np.max(np.abs(np.asarray(analytic, dtype=np.float64) - numeric)))


def check_layer_param_grads(layer: Module, x: np.ndarray,
                            eps: float = 1e-3) -> dict[str, float]:
    """Max abs error per named parameter gradient."""
    rng = np.random.default_rng(11)
    out = layer.forward(x.copy())
    projection = rng.normal(size=out.shape).astype(np.float64)
    layer.zero_grad()
    layer.forward(x.copy())
    layer.backward(projection.astype(x.dtype))

    errors: dict[str, float] = {}
    for name, param in layer.named_parameters():
        def loss(arr: np.ndarray, _param=param) -> float:
            saved = _param.data.copy()
            _param.data[...] = arr.astype(np.float32)
            value = float((layer.forward(x.copy()) * projection).sum())
            _param.data[...] = saved
            return value

        numeric = numerical_gradient(loss, param.data.astype(np.float64), eps=eps)
        errors[name] = float(np.max(np.abs(param.grad - numeric)))
    return errors
