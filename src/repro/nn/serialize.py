"""Checkpoint serialization for :class:`repro.nn.layers.Module` trees.

Every archive written here carries a versioned header (the
``__checkpoint__`` entry): a JSON document naming the schema
(``format``) and its ``version``.  Loading an archive whose format or
version does not match raises :class:`CheckpointError` with a message
naming both sides, instead of failing deep inside ``load_state_dict``
on the first odd key.  Archives written before the header existed load
as version 0 of the expected format.

Beyond module weights, this module round-trips the pieces of training
state that exact resume needs:

* :func:`optimizer_state_dict` / :func:`load_optimizer_state_dict` —
  Adam moments (+ step count) and SGD momentum, flattened in parameter
  order so the layout survives the optimizer's internal flat-buffer
  packing.
* :func:`rng_state_to_json` / :func:`rng_state_from_json` — a numpy
  ``Generator``'s bit-generator state as a JSON string, so dropout
  noise streams resume mid-sequence.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.nn.layers import Module

#: Header entry name inside every ``.npz`` archive written here.
HEADER_KEY = "__checkpoint__"

#: Schema name and current version for plain module state dicts.
MODULE_STATE_FORMAT = "repro.module-state"
MODULE_STATE_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file does not match the expected schema."""


def make_header(format_name: str, version: int, **meta) -> dict:
    """The JSON header document stored under :data:`HEADER_KEY`."""
    return {"format": format_name, "version": version, **meta}


def write_npz(path: str | Path, arrays: dict[str, np.ndarray],
              header: dict) -> None:
    """Atomically write ``arrays`` plus a versioned ``header`` to ``path``.

    The archive is staged next to ``path`` and moved into place with
    ``os.replace``, so an interrupted write never leaves a truncated
    checkpoint at the destination.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if HEADER_KEY in arrays:
        raise ValueError(f"array name {HEADER_KEY!r} is reserved")
    payload = dict(arrays)
    payload[HEADER_KEY] = np.array(json.dumps(header, sort_keys=True))
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **payload)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def read_npz(path: str | Path, expect_format: str,
             max_version: int) -> tuple[dict[str, np.ndarray], dict]:
    """Load ``(arrays, header)``, validating the schema header.

    A missing header is treated as ``version 0`` of ``expect_format``
    (pre-header archives); a different format name or a version newer
    than ``max_version`` raises :class:`CheckpointError`.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        names = [name for name in archive.files if name != HEADER_KEY]
        if HEADER_KEY in archive.files:
            header = json.loads(str(archive[HEADER_KEY]))
        else:
            header = make_header(expect_format, 0)
        arrays = {name: archive[name] for name in names}
    found = header.get("format")
    if found != expect_format:
        raise CheckpointError(
            f"{path} holds a {found!r} checkpoint, expected "
            f"{expect_format!r}")
    version = header.get("version")
    if not isinstance(version, int) or version > max_version:
        raise CheckpointError(
            f"{path} is {found!r} schema version {version!r}; this build "
            f"reads versions up to {max_version} — rebuild the checkpoint "
            f"or upgrade")
    return arrays, header


# -- module state dicts ------------------------------------------------------


def save_state_dict(module: Module, path: str | Path) -> None:
    """Save a module's parameters and running buffers to an ``.npz`` file."""
    write_npz(Path(path), module.state_dict(),
              make_header(MODULE_STATE_FORMAT, MODULE_STATE_VERSION))


def state_dict_mismatch(module: Module, state: dict[str, np.ndarray]
                        ) -> tuple[list[str], list[str]]:
    """(missing, unexpected) key lists between ``module`` and ``state``."""
    own = set(dict(module.named_parameters())) | {
        name for name, _ in module._named_buffers()}
    loaded = set(state)
    return sorted(own - loaded), sorted(loaded - own)


def validate_state_dict(module: Module, state: dict[str, np.ndarray],
                        context: str = "state dict") -> None:
    """Raise a ``ValueError`` naming every missing/unexpected key.

    ``Module.load_state_dict`` fails deep inside the module tree on the
    first bad key (and silently ignores missing ones); validating up front
    turns a truncated or mismatched checkpoint into one readable error.
    """
    missing, unexpected = state_dict_mismatch(module, state)
    if not missing and not unexpected:
        return
    parts = []
    if missing:
        parts.append(f"missing keys: {', '.join(missing)}")
    if unexpected:
        parts.append(f"unexpected keys: {', '.join(unexpected)}")
    raise ValueError(f"cannot load {context}: " + "; ".join(parts))


def load_state_dict(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_state_dict` into ``module``.

    Raises :class:`CheckpointError` when the archive's schema header does
    not match, and ``ValueError`` listing all missing/unexpected keys when
    the checkpoint does not match the module's structure.
    """
    path = Path(path)
    state, _ = read_npz(path, MODULE_STATE_FORMAT, MODULE_STATE_VERSION)
    validate_state_dict(module, state, context=f"checkpoint {path}")
    module.load_state_dict(state)


# -- optimizer state ---------------------------------------------------------


def _flat_param_order(pieces: list[np.ndarray]) -> np.ndarray:
    """Concatenate per-parameter arrays into one flat parameter-order array."""
    if not pieces:
        return np.zeros(0, dtype=np.float32)
    return np.concatenate([piece.ravel() for piece in pieces])


def optimizer_state_dict(optimizer) -> dict[str, np.ndarray]:
    """An optimizer's persistent state as flat parameter-order arrays.

    For :class:`repro.nn.optim.Adam` this is the step count plus the
    first/second moment estimates; for :class:`~repro.nn.optim.SGD` the
    momentum velocity.  Arrays are concatenated in parameter order, which
    is identical whether the optimizer runs in its flat-buffer or
    per-parameter mode — the state is layout-independent.
    """
    state = optimizer.state_arrays()
    out: dict[str, np.ndarray] = {}
    for name, value in state.items():
        if isinstance(value, list):
            out[name] = _flat_param_order(value)
        elif isinstance(value, np.ndarray):
            out[name] = value.ravel().copy()
        else:
            out[name] = np.asarray(value)
    return out


def load_optimizer_state_dict(optimizer,
                              state: dict[str, np.ndarray]) -> None:
    """Restore state captured by :func:`optimizer_state_dict`.

    The optimizer must be freshly constructed over the same parameter
    list (same shapes, same order); size mismatches raise
    :class:`CheckpointError` naming the entry.
    """
    expected = optimizer.state_arrays()
    missing = sorted(set(expected) - set(state))
    unexpected = sorted(set(state) - set(expected))
    if missing or unexpected:
        parts = []
        if missing:
            parts.append(f"missing entries: {', '.join(missing)}")
        if unexpected:
            parts.append(f"unexpected entries: {', '.join(unexpected)}")
        raise CheckpointError(
            "optimizer state does not match: " + "; ".join(parts))
    total = sum(p.data.size for p in optimizer.params)
    for name, value in state.items():
        target = expected[name]
        if isinstance(target, list):
            if value.size != total:
                raise CheckpointError(
                    f"optimizer state {name!r} has {value.size} elements, "
                    f"the parameter list needs {total}")
            offset = 0
            for piece in target:
                stop = offset + piece.size
                piece.ravel()[...] = value[offset:stop]
                offset = stop
        elif isinstance(target, np.ndarray):
            if value.size != target.size:
                raise CheckpointError(
                    f"optimizer state {name!r} has {value.size} elements, "
                    f"expected {target.size}")
            target.ravel()[...] = value
        else:
            optimizer.set_state_scalar(name, value)


# -- rng streams -------------------------------------------------------------


def rng_state_to_json(rng: np.random.Generator) -> str:
    """A generator's bit-generator state as a JSON string."""
    return json.dumps(rng.bit_generator.state, sort_keys=True)


def rng_state_from_json(rng: np.random.Generator, state_json: str) -> None:
    """Restore a state captured by :func:`rng_state_to_json` in place."""
    state = json.loads(state_json)
    expected = rng.bit_generator.state.get("bit_generator")
    found = state.get("bit_generator")
    if found != expected:
        raise CheckpointError(
            f"rng state is for bit generator {found!r}, "
            f"this generator uses {expected!r}")
    rng.bit_generator.state = state


def module_rng_states(module: Module) -> dict[str, str]:
    """JSON-encoded rng states of every generator reachable in ``module``."""
    return {name: rng_state_to_json(rng)
            for name, rng in module.named_rngs()}


def restore_module_rng_states(module: Module,
                              states: dict[str, str]) -> None:
    """Restore states captured by :func:`module_rng_states`.

    Missing or unexpected rng paths raise :class:`CheckpointError`
    (a mismatch means the architectures differ).  Layers sharing one
    ``Generator`` instance restore it once per path to the same state,
    which preserves the sharing.
    """
    own = dict(module.named_rngs())
    missing = sorted(set(own) - set(states))
    unexpected = sorted(set(states) - set(own))
    if missing or unexpected:
        parts = []
        if missing:
            parts.append(f"missing rng paths: {', '.join(missing)}")
        if unexpected:
            parts.append(f"unexpected rng paths: {', '.join(unexpected)}")
        raise CheckpointError("rng state does not match module: "
                              + "; ".join(parts))
    for name, state_json in states.items():
        rng_state_from_json(own[name], state_json)
