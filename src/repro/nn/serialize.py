"""Checkpoint serialization for :class:`repro.nn.layers.Module` trees."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.layers import Module


def save_state_dict(module: Module, path: str | Path) -> None:
    """Save a module's parameters and running buffers to an ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **module.state_dict())


def load_state_dict(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_state_dict` into ``module``."""
    with np.load(Path(path)) as archive:
        module.load_state_dict({name: archive[name] for name in archive.files})
