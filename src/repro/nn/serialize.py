"""Checkpoint serialization for :class:`repro.nn.layers.Module` trees."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.layers import Module


def save_state_dict(module: Module, path: str | Path) -> None:
    """Save a module's parameters and running buffers to an ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **module.state_dict())


def state_dict_mismatch(module: Module, state: dict[str, np.ndarray]
                        ) -> tuple[list[str], list[str]]:
    """(missing, unexpected) key lists between ``module`` and ``state``."""
    own = set(dict(module.named_parameters())) | {
        name for name, _ in module._named_buffers()}
    loaded = set(state)
    return sorted(own - loaded), sorted(loaded - own)


def validate_state_dict(module: Module, state: dict[str, np.ndarray],
                        context: str = "state dict") -> None:
    """Raise a ``ValueError`` naming every missing/unexpected key.

    ``Module.load_state_dict`` fails deep inside the module tree on the
    first bad key (and silently ignores missing ones); validating up front
    turns a truncated or mismatched checkpoint into one readable error.
    """
    missing, unexpected = state_dict_mismatch(module, state)
    if not missing and not unexpected:
        return
    parts = []
    if missing:
        parts.append(f"missing keys: {', '.join(missing)}")
    if unexpected:
        parts.append(f"unexpected keys: {', '.join(unexpected)}")
    raise ValueError(f"cannot load {context}: " + "; ".join(parts))


def load_state_dict(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_state_dict` into ``module``.

    Raises ``ValueError`` listing all missing/unexpected keys when the
    checkpoint does not match the module's structure.
    """
    path = Path(path)
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    validate_state_dict(module, state, context=f"checkpoint {path}")
    module.load_state_dict(state)
