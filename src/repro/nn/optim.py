"""Optimizers.

The paper trains both networks with Adam at lr=2e-4, beta1=0.5, beta2=0.999,
eps=1e-8 — the pix2pix defaults.  SGD is included for tests and ablations.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- persistent state (see repro.nn.serialize) ---------------------------

    def state_arrays(self) -> dict:
        """The optimizer's persistent state, by name.

        Values are either live arrays / lists of live per-parameter arrays
        (written in place on restore) or scalars (restored through
        :meth:`set_state_scalar`).  Stateless optimizers return ``{}``.
        """
        return {}

    def set_state_scalar(self, name: str, value) -> None:
        """Restore one scalar entry from :meth:`state_arrays`."""
        raise KeyError(f"optimizer has no scalar state {name!r}")


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, vel in zip(self.params, self._velocity):
            if self.momentum > 0.0:
                vel *= self.momentum
                vel -= self.lr * param.grad
                param.data += vel
            else:
                param.data -= self.lr * param.grad

    def state_arrays(self) -> dict:
        return {"velocity": self._velocity}


class Adam(Optimizer):
    """Adam with the paper's constants as defaults.

    The optimizer *flattens* its parameters: on construction every
    ``Parameter``'s ``data`` and ``grad`` are re-pointed at slices of two
    contiguous arrays (values preserved), so one step is a dozen ufunc
    calls over the flat arrays instead of a dozen *per parameter* — at
    this repo's model scales the per-parameter dispatch dominated the
    step.  The update itself keeps the textbook evaluation order
    element-wise, so parameter trajectories are bitwise-identical to the
    per-parameter form.  In-place reads/writes through the parameters
    (``load_state_dict``, ``zero_grad``, other optimizers over the same
    list) keep working — they see the same memory.  Parameters whose
    dtypes differ fall back to unflattened per-parameter updates.
    """

    def __init__(self, params: list[Parameter], lr: float = 2e-4,
                 beta1: float = 0.5, beta2: float = 0.999, eps: float = 1e-8):
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step = 0
        dtypes = {p.data.dtype for p in self.params}
        if len(dtypes) == 1:
            dtype = dtypes.pop()
            total = sum(p.data.size for p in self.params)
            data = np.empty(total, dtype=dtype)
            grad = np.empty(total, dtype=dtype)
            offset = 0
            for p in self.params:
                stop = offset + p.data.size
                data[offset:stop] = p.data.ravel()
                grad[offset:stop] = p.grad.ravel()
                p.data = data[offset:stop].reshape(p.data.shape)
                p.grad = grad[offset:stop].reshape(p.grad.shape)
                offset = stop
            self._flat: tuple[np.ndarray, ...] | None = (
                data, grad, np.zeros(total, dtype=dtype),
                np.zeros(total, dtype=dtype), np.empty(total, dtype=dtype),
                np.empty(total, dtype=dtype))
        else:
            self._flat = None
            self._m = [np.zeros_like(p.data) for p in self.params]
            self._v = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self) -> None:
        if self._flat is not None:
            self._flat[1].fill(0.0)
        else:
            super().zero_grad()

    def step(self) -> None:
        self._step += 1
        if self._flat is not None:
            data, grad, m, v, s1, s2 = self._flat
            self._update(data, grad, m, v, s1, s2)
            return
        for param, m, v in zip(self.params, self._m, self._v):
            self._update(param.data, param.grad, m, v,
                         np.empty_like(param.data), np.empty_like(param.data))

    def state_arrays(self) -> dict:
        """Step count plus moment buffers (flat or per-parameter).

        In flat mode the moment arrays are already concatenated in
        parameter order, so both modes serialize to the same bytes for
        the same trajectory.
        """
        if self._flat is not None:
            moments: dict = {"exp_avg": self._flat[2],
                             "exp_avg_sq": self._flat[3]}
        else:
            moments = {"exp_avg": self._m, "exp_avg_sq": self._v}
        return {"step": self._step, **moments}

    def set_state_scalar(self, name: str, value) -> None:
        if name != "step":
            super().set_state_scalar(name, value)
        self._step = int(value)

    def _update(self, data, grad, m, v, s1, s2) -> None:
        """One Adam update.

        Algebraically identical to the textbook chain ``data -= lr *
        (m/bias1) / (sqrt(v/bias2) + eps)`` with numerator and denominator
        multiplied through by ``sqrt(bias2)`` — the two bias-correction
        array divisions collapse into scalars, saving two full passes
        over the state per step.
        """
        bias1 = 1.0 - self.beta1 ** self._step
        sqrt_bias2 = (1.0 - self.beta2 ** self._step) ** 0.5
        m *= self.beta1
        m += np.multiply(grad, 1.0 - self.beta1, out=s1)
        v *= self.beta2
        np.multiply(grad, 1.0 - self.beta2, out=s1)
        v += np.multiply(s1, grad, out=s1)
        np.sqrt(v, out=s2)
        s2 += self.eps * sqrt_bias2
        np.multiply(m, self.lr * sqrt_bias2 / bias1, out=s1)
        data -= np.divide(s1, s2, out=s1)
