"""Optimizers.

The paper trains both networks with Adam at lr=2e-4, beta1=0.5, beta2=0.999,
eps=1e-8 — the pix2pix defaults.  SGD is included for tests and ablations.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, vel in zip(self.params, self._velocity):
            if self.momentum > 0.0:
                vel *= self.momentum
                vel -= self.lr * param.grad
                param.data += vel
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam with the paper's constants as defaults."""

    def __init__(self, params: list[Parameter], lr: float = 2e-4,
                 beta1: float = 0.5, beta2: float = 0.999, eps: float = 1e-8):
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.params, self._m, self._v):
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
