"""Workspace arena: shape-keyed scratch buffers reused across passes.

The conv hot path (``im2col`` packing, gemm outputs, ``col2im`` scatter
images, activation masks) used to allocate every one of its large
temporaries per call — at the repo's reduced image scales the allocator
churn rivals the arithmetic.  A :class:`Workspace` is a per-model arena:
each layer acquires named scratch buffers through it, the arena keeps one
backing allocation per ``(owner, name, dtype)`` slot grown to its
high-water mark, and every later acquisition is a view into the same
memory.  Buffers therefore survive across forward/backward and across
training steps, and a served model reaches a steady state that allocates
nothing on the hot path.

Aliasing contract (the reason this is safe without reference counting):

* A slot is private to the layer that acquired it — two layers never
  share backing memory, so cross-layer data flow is unaffected.
* A buffer's contents are valid until the *same* layer runs the *same*
  pass again.  The training loop runs ``forward`` then ``backward`` to
  completion before the next forward, and the serving engine runs every
  forward on one worker thread, so both satisfy the contract by
  construction.  Concurrent passes over one model were already forbidden
  (layers cache activations on ``self``); the arena does not change that.

A module with no workspace attached allocates fresh arrays per call —
bitwise the same results, just slower.  That legacy path is kept both as
the safe default for bare layers built in tests and as the reference the
parity suite compares the arena against.
"""

from __future__ import annotations

import threading
from math import prod

import numpy as np


class _Slot:
    """One scratch slot: a flat backing buffer plus memoized shape views.

    The view cache is the fast path: a training loop acquires the same
    (shape, dtype) every step, so after the first step ``buffer`` is two
    dict hits — no ``reshape``, no size arithmetic.  Growing the backing
    buffer invalidates the cache (old views point at freed memory).
    """

    __slots__ = ("flat", "views")

    def __init__(self):
        self.flat: np.ndarray | None = None
        self.views: dict[tuple, np.ndarray] = {}


class Workspace:
    """Arena of named scratch buffers, keyed by owner and grown on demand.

    Not thread-safe: a workspace belongs to one model and one pass at a
    time, the same discipline the layers' activation caches already
    require.
    """

    def __init__(self):
        self._slots: dict[tuple[int, str], _Slot] = {}
        #: Parameter-state generation.  Bumped by every training step and
        #: state-dict load on an attached model; derived caches keyed on
        #: parameters (e.g. the fused conv+norm weights of the eval path)
        #: use it for invalidation.  Code that mutates parameters outside
        #: those paths must bump it manually.
        self.generation = 0
        #: Backing-buffer epoch.  Bumped whenever any slot reallocates its
        #: flat array; layer-side view/plan memos compare against it so a
        #: growth never leaves them pinning (and returning) orphaned
        #: backings.
        self.epoch = 0
        # Incremental byte accounting: kept in sync on every realloc so
        # observability reads are O(1), not a slot-table walk.  The lock
        # makes the decrement/increment/high-water triplet atomic:
        # metrics threads (and pool-threaded passes racing an engine's
        # /metrics reader) must never observe the torn middle state where
        # the old buffer is subtracted but the new one not yet added.
        self._acct_lock = threading.Lock()
        self._live_bytes = 0
        self._peak_bytes = 0

    def buffer(self, owner: object, name: str, shape: tuple[int, ...],
               dtype=np.float32) -> np.ndarray:
        """A scratch array of ``shape`` backed by the slot's arena memory.

        The returned array is a contiguous view into a flat backing
        buffer that is reallocated only when a larger size is requested;
        contents are whatever the slot last held (callers overwrite).
        Different shapes acquired from one slot alias the same memory —
        a slot holds one live scratch at a time.
        """
        key = (id(owner), name)
        slot = self._slots.get(key)
        if slot is None:
            slot = _Slot()
            self._slots[key] = slot
        view = slot.views.get(shape)
        if view is not None and view.dtype == dtype:
            return view
        dt = np.dtype(dtype)
        size = prod(shape)
        flat = slot.flat
        if flat is None or flat.dtype != dt or flat.size < size:
            old_nbytes = flat.nbytes if flat is not None else 0
            flat = np.empty(max(size, 1), dtype=dt)
            slot.flat = flat
            slot.views = {}
            self.epoch += 1
            with self._acct_lock:
                self._live_bytes += flat.nbytes - old_nbytes
                if self._live_bytes > self._peak_bytes:
                    self._peak_bytes = self._live_bytes
        view = flat[:size].reshape(shape)
        slot.views[shape] = view
        return view

    @property
    def num_slots(self) -> int:
        return len(self._slots)

    @property
    def nbytes(self) -> int:
        """Total bytes held by the arena (capacity, not live use).

        Iterates a snapshot of the slot table: observability callers
        (e.g. the serving engine's ``/metrics`` thread) may race the
        worker thread inserting new slots, and ``list()`` under the GIL
        is atomic where direct dict iteration would raise.
        """
        return sum(slot.flat.nbytes for slot in list(self._slots.values())
                   if slot.flat is not None)

    @property
    def peak_nbytes(self) -> int:
        """High-water arena bytes across the workspace's whole lifetime.

        Tracked incrementally on realloc (O(1) to read) and *not* reset
        by :meth:`clear` — the point is the worst case a run ever needed.
        """
        with self._acct_lock:
            return self._peak_bytes

    def clear(self) -> None:
        """Drop every backing buffer (e.g. before pickling a model)."""
        self._slots.clear()
        self.epoch += 1
        with self._acct_lock:
            self._live_bytes = 0
