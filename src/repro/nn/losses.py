"""Loss functions for the cGAN objective.

The combined objective from the paper (Eq. 2 plus the L1 term) is

    cL(G, D) + lambda_L1 * E[||t - G(x, z)||_1]

with the discriminator trained on binary cross-entropy.  BCE is computed on
logits for numerical stability; the sigmoid the paper places at the end of the
discriminator is folded into the loss.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import sigmoid


class Loss:
    """Base class: ``forward`` returns a scalar, ``backward`` the gradient."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)


class BCEWithLogitsLoss(Loss):
    """Binary cross-entropy on logits (stable log-sum-exp form)."""

    def __init__(self):
        self._pred: np.ndarray | None = None
        self._target: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        target = np.broadcast_to(np.asarray(target, dtype=pred.dtype), pred.shape)
        self._pred = pred
        self._target = target
        loss = np.maximum(pred, 0) - pred * target + np.log1p(np.exp(-np.abs(pred)))
        return float(loss.mean())

    def backward(self) -> np.ndarray:
        if self._pred is None or self._target is None:
            raise RuntimeError("backward called before forward")
        return (sigmoid(self._pred) - self._target) / self._pred.size


class L1Loss(Loss):
    """Mean absolute error — the reconstruction term weighted by 50.

    Runs once per training step over full images, so its temporaries are
    kept as instance scratch instead of reallocating.  The gradient
    returned by ``backward`` stays valid across later ``forward`` calls
    (it has its own buffer) but is overwritten by the next ``backward``.
    """

    def __init__(self):
        self._diff: np.ndarray | None = None
        self._abs: np.ndarray | None = None
        self._grad: np.ndarray | None = None
        self._ready = False

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        diff = self._diff
        if diff is None or diff.shape != pred.shape or diff.dtype != pred.dtype:
            self._diff = diff = np.empty_like(pred)
            self._abs = np.empty_like(pred)
            self._grad = np.empty_like(pred)
        np.subtract(pred, target, out=diff)
        self._ready = True
        return float(np.abs(diff, out=self._abs).mean())

    def backward(self) -> np.ndarray:
        if not self._ready:
            raise RuntimeError("backward called before forward")
        grad = np.sign(self._diff, out=self._grad)
        grad /= grad.size
        return grad


class MSELoss(Loss):
    """Mean squared error (provided for L2-objective ablations)."""

    def __init__(self):
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        self._diff = pred - target
        return float((self._diff ** 2).mean())

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size
