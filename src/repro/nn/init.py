"""Weight initializers.

pix2pix initializes all conv weights from N(0, 0.02); Xavier and He
initializers are provided for the auxiliary layers and for tests.
"""

from __future__ import annotations

import numpy as np


def normal_init(shape: tuple[int, ...], rng: np.random.Generator,
                std: float = 0.02) -> np.ndarray:
    """Gaussian init, the pix2pix default (std 0.02)."""
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform init; fan counts follow the conv weight layout."""
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0] * int(np.prod(shape[2:])) if len(shape) > 2 else shape[0]
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He init for ReLU-family networks."""
    fan_in = int(np.prod(shape[1:]))
    std = float(np.sqrt(2.0 / fan_in))
    return rng.normal(0.0, std, size=shape).astype(np.float32)
