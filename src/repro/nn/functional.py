"""Low-level tensor operations: im2col packing and activation functions.

All image tensors use NCHW layout (batch, channels, height, width).  The
convolution layers in :mod:`repro.nn.layers` are thin wrappers over
:func:`im2col` / :func:`col2im`; keeping the packing logic here makes it
independently testable (the test suite checks that ``col2im`` is the exact
adjoint of ``im2col``, which is what makes the conv gradients correct).
"""

from __future__ import annotations

import numpy as np


def conv2d_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"conv output size {out} <= 0 for size={size}, kernel={kernel}, "
            f"stride={stride}, pad={pad}"
        )
    return out


def conv_transpose2d_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a transposed convolution along one dimension."""
    out = (size - 1) * stride - 2 * pad + kernel
    if out <= 0:
        raise ValueError(
            f"conv_transpose output size {out} <= 0 for size={size}, "
            f"kernel={kernel}, stride={stride}, pad={pad}"
        )
    return out


def im2col(x: np.ndarray, kernel: int, stride: int, pad: int) -> np.ndarray:
    """Unfold sliding windows of ``x`` into rows.

    Parameters
    ----------
    x:
        Input of shape ``(n, c, h, w)``.
    kernel, stride, pad:
        Square kernel size, stride, and symmetric zero padding.

    Returns
    -------
    Array of shape ``(n * out_h * out_w, c * kernel * kernel)`` where each row
    is one receptive field, ordered batch-major then row-major over output
    positions.
    """
    n, c, h, w = x.shape
    out_h = conv2d_output_size(h, kernel, stride, pad)
    out_w = conv2d_output_size(w, kernel, stride, pad)

    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))

    col = np.empty((n, c, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            col[:, :, ky, kx, :, :] = x[:, :, ky:y_max:stride, kx:x_max:stride]
    return col.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)


def col2im(
    col: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add rows back into an image.

    ``col`` has the shape produced by ``im2col(x, kernel, stride, pad)`` for an
    ``x`` of shape ``x_shape``; overlapping windows accumulate, which is
    exactly the gradient of the unfolding operation.
    """
    n, c, h, w = x_shape
    out_h = conv2d_output_size(h, kernel, stride, pad)
    out_w = conv2d_output_size(w, kernel, stride, pad)

    col = col.reshape(n, out_h, out_w, c, kernel, kernel)
    col = col.transpose(0, 3, 4, 5, 1, 2)
    img = np.zeros(
        (n, c, h + 2 * pad + stride - 1, w + 2 * pad + stride - 1),
        dtype=col.dtype,
    )
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            img[:, :, ky:y_max:stride, kx:x_max:stride] += col[:, :, ky, kx, :, :]
    return img[:, :, pad:pad + h, pad:pad + w]


def blocked_matmul(a: np.ndarray, b: np.ndarray, block_rows: int) -> np.ndarray:
    """``a @ b`` computed in fixed-size row blocks of ``a``.

    BLAS selects its internal blocking from the full matrix shape, so the
    rounding of row ``i`` of ``a @ b`` can change with the *total* number of
    rows.  Processing ``a`` in blocks of ``block_rows`` pins the gemm shape
    each row sees, making every block's result bitwise-identical no matter
    how many blocks are stacked — this is what lets a batched inference pass
    reproduce the batch-1 outputs exactly.  Both operands are made
    C-contiguous first: BLAS also dispatches on memory layout, and e.g. a
    batch-1 ``im2col`` can legally return a transposed view where batch-N
    must copy.
    """
    a = np.ascontiguousarray(a)
    b = np.ascontiguousarray(b)
    rows = a.shape[0]
    if rows <= block_rows:
        return a @ b
    if rows % block_rows:
        raise ValueError(
            f"row count {rows} is not a multiple of block_rows={block_rows}")
    out = np.empty((rows, b.shape[1]), dtype=np.result_type(a, b))
    for start in range(0, rows, block_rows):
        stop = start + block_rows
        np.matmul(a[start:stop], b, out=out[start:stop])
    return out


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out.astype(x.dtype, copy=False)


def leaky_relu(x: np.ndarray, slope: float = 0.2) -> np.ndarray:
    """LeakyReLU activation used throughout the pix2pix encoder."""
    return np.where(x >= 0, x, slope * x)
