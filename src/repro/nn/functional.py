"""Low-level tensor operations: im2col packing and activation functions.

All image tensors use NCHW layout (batch, channels, height, width).  The
convolution layers in :mod:`repro.nn.layers` are thin wrappers over
:func:`im2col` / :func:`col2im`; keeping the packing logic here makes it
independently testable (the test suite checks that ``col2im`` is the exact
adjoint of ``im2col``, which is what makes the conv gradients correct).

Every heavy helper takes an optional ``out=`` destination so the layers can
route their temporaries through a :class:`repro.nn.workspace.Workspace`
arena instead of allocating per call; with ``out=None`` each call allocates
fresh arrays and computes bitwise the same values.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided


def conv2d_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"conv output size {out} <= 0 for size={size}, kernel={kernel}, "
            f"stride={stride}, pad={pad}"
        )
    return out


def conv_transpose2d_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a transposed convolution along one dimension."""
    out = (size - 1) * stride - 2 * pad + kernel
    if out <= 0:
        raise ValueError(
            f"conv_transpose output size {out} <= 0 for size={size}, "
            f"kernel={kernel}, stride={stride}, pad={pad}"
        )
    return out


def pad2d(x: np.ndarray, pad: int, out: np.ndarray | None = None,
          zero_border: bool = True) -> np.ndarray:
    """Symmetric spatial zero padding, optionally into a reused buffer.

    Equivalent to ``np.pad(x, ((0,0),(0,0),(pad,pad),(pad,pad)))`` but
    without the generic-pad machinery (which profiles as a major share of
    the conv hot path at small image sizes): the border is zero-filled
    with four slice stores and the interior is one strided copy.
    ``zero_border=False`` skips the border fills — only valid when ``out``
    is a reused buffer whose border is known to still be zero (nothing
    but this function writes it).
    """
    if pad <= 0:
        return x
    n, c, h, w = x.shape
    if out is None:
        out = np.empty((n, c, h + 2 * pad, w + 2 * pad), dtype=x.dtype)
        zero_border = True
    if zero_border:
        out[:, :, :pad, :] = 0
        out[:, :, h + pad:, :] = 0
        out[:, :, pad:h + pad, :pad] = 0
        out[:, :, pad:h + pad, w + pad:] = 0
    out[:, :, pad:h + pad, pad:w + pad] = x
    return out


def im2col_view(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Zero-copy sliding-window view of an (already padded) input.

    Returns a ``(n, out_h, out_w, c, kernel, kernel)`` strided view of
    ``x`` — no data is moved, which makes the window gather of
    :func:`im2col` a single strided copy (and lets stride-1 eval consumers
    walk receptive fields without materializing them at all).
    """
    n, c, h, w = x.shape
    out_h = conv2d_output_size(h, kernel, stride, 0)
    out_w = conv2d_output_size(w, kernel, stride, 0)
    sn, sc, sh, sw = x.strides
    return as_strided(
        x,
        shape=(n, out_h, out_w, c, kernel, kernel),
        strides=(sn, sh * stride, sw * stride, sc, sh, sw),
        writeable=False,
    )


def im2col(x: np.ndarray, kernel: int, stride: int, pad: int,
           out: np.ndarray | None = None,
           pad_out: np.ndarray | None = None,
           zero_border: bool = True) -> np.ndarray:
    """Unfold sliding windows of ``x`` into rows.

    Parameters
    ----------
    x:
        Input of shape ``(n, c, h, w)``.
    kernel, stride, pad:
        Square kernel size, stride, and symmetric zero padding.
    out:
        Optional destination of shape ``(n * out_h * out_w,
        c * kernel * kernel)``; allocated when omitted.
    pad_out:
        Optional scratch for the padded input (ignored when ``pad == 0``).
    zero_border:
        Forwarded to :func:`pad2d`; pass ``False`` only when ``pad_out``'s
        border is known to still be zero from a previous call.

    Returns
    -------
    Array of shape ``(n * out_h * out_w, c * kernel * kernel)`` where each row
    is one receptive field, ordered batch-major then row-major over output
    positions.  The gather is one strided copy of :func:`im2col_view`
    rather than the classic per-offset slice loop plus transpose copy.
    """
    n, c, h, w = x.shape
    out_h = conv2d_output_size(h, kernel, stride, pad)
    out_w = conv2d_output_size(w, kernel, stride, pad)

    if pad > 0:
        x = pad2d(x, pad, out=pad_out, zero_border=zero_border)

    view = im2col_view(x, kernel, stride)
    if out is None:
        out = np.empty((n * out_h * out_w, c * kernel * kernel),
                       dtype=x.dtype)
    np.copyto(out.reshape(view.shape), view)
    return out


def col2im(
    col: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add rows back into an image.

    ``col`` has the shape produced by ``im2col(x, kernel, stride, pad)`` for an
    ``x`` of shape ``x_shape``; overlapping windows accumulate, which is
    exactly the gradient of the unfolding operation.  ``out`` is optional
    scratch for the *padded* accumulator of shape ``(n, c, h + 2*pad +
    stride - 1, w + 2*pad + stride - 1)``; the returned array is a view
    into it trimmed to ``x_shape``.
    """
    n, c, h, w = x_shape
    out_h = conv2d_output_size(h, kernel, stride, pad)
    out_w = conv2d_output_size(w, kernel, stride, pad)

    col = col.reshape(n, out_h, out_w, c, kernel, kernel)
    col = col.transpose(0, 3, 4, 5, 1, 2)
    padded_shape = (n, c, h + 2 * pad + stride - 1, w + 2 * pad + stride - 1)
    if out is None:
        img = np.zeros(padded_shape, dtype=col.dtype)
    else:
        img = out
        img[...] = 0
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            img[:, :, ky:y_max:stride, kx:x_max:stride] += col[:, :, ky, kx, :, :]
    return img[:, :, pad:pad + h, pad:pad + w]


def col2im_bt(
    col_bt: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """:func:`col2im` for block-transposed columns.

    ``col_bt`` has shape ``(n, c * kernel * kernel, out_h * out_w)`` — the
    per-sample transpose of the ``(n * out_h * out_w, c * k * k)`` matrix
    :func:`col2im` takes, which is exactly what a stacked transposed gemm
    (``w.T @ x_i.T`` per sample) produces.  In this layout every
    per-offset scatter slice is contiguous along the image row, cutting
    the scatter cost up to ~3x on the large early layers versus the
    row-major layout.  Accumulation order over kernel offsets matches
    :func:`col2im` exactly, so bitwise-equal column values scatter to a
    bitwise-equal image.
    """
    n, c, h, w = x_shape
    out_h = conv2d_output_size(h, kernel, stride, pad)
    out_w = conv2d_output_size(w, kernel, stride, pad)

    col_bt = col_bt.reshape(n, c, kernel, kernel, out_h, out_w)
    padded_shape = (n, c, h + 2 * pad + stride - 1, w + 2 * pad + stride - 1)
    if out is None:
        img = np.zeros(padded_shape, dtype=col_bt.dtype)
    else:
        img = out
        img[...] = 0
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            img[:, :, ky:y_max:stride, kx:x_max:stride] += col_bt[:, :, ky, kx]
    return img[:, :, pad:pad + h, pad:pad + w]


def blocked_matmul(a: np.ndarray, b: np.ndarray, block_rows: int,
                   out: np.ndarray | None = None) -> np.ndarray:
    """``a @ b`` computed in fixed-size row blocks of ``a``.

    BLAS selects its internal blocking from the full matrix shape, so the
    rounding of row ``i`` of ``a @ b`` can change with the *total* number of
    rows.  Processing ``a`` in blocks of ``block_rows`` pins the gemm shape
    each row sees, making every block's result bitwise-identical no matter
    how many blocks are stacked — this is what lets a batched inference pass
    reproduce the batch-1 outputs exactly.  Operands are normalized to
    C-contiguous first (BLAS also dispatches on memory layout, and e.g. a
    batch-1 ``im2col`` can legally return a transposed view where batch-N
    must copy) — but only when actually needed, which the arena-fed fast
    path never is, so the common case is copy-free.
    """
    if not a.flags.c_contiguous:
        a = np.ascontiguousarray(a)
    if not b.flags.c_contiguous:
        b = np.ascontiguousarray(b)
    rows = a.shape[0]
    if rows <= block_rows:
        if out is None:
            return a @ b
        np.matmul(a, b, out=out)
        return out
    if rows % block_rows:
        raise ValueError(
            f"row count {rows} is not a multiple of block_rows={block_rows}")
    if out is None:
        out = np.empty((rows, b.shape[1]), dtype=np.result_type(a, b))
    for start in range(0, rows, block_rows):
        stop = start + block_rows
        np.matmul(a[start:stop], b, out=out[start:stop])
    return out


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function, computed in the input dtype.

    The split-by-sign form never exponentiates a positive argument, so it
    is overflow-free in float32 directly — no float64 allocation and
    round-trip (integer and other non-float inputs still promote to
    float64, matching ``np.exp``).
    """
    x = np.asarray(x)
    dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
    out = np.empty_like(x, dtype=dtype)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos], dtype=dtype))
    ex = np.exp(x[~pos], dtype=dtype)
    out[~pos] = ex / (1.0 + ex)
    return out


def leaky_relu(x: np.ndarray, slope: float = 0.2,
               out: np.ndarray | None = None) -> np.ndarray:
    """LeakyReLU activation used throughout the pix2pix encoder.

    For ``0 <= slope <= 1`` this is exactly ``max(x, slope * x)`` (bitwise
    equal to the ``np.where`` formulation for finite inputs, NaN and
    signed zero included; at ``slope == 0`` an infinite input yields NaN
    where ``np.where`` would keep ``+inf``), computed with a single
    output array and no extra temporary.
    """
    if not 0.0 <= slope <= 1.0:
        raise ValueError(f"slope must be in [0, 1], got {slope}")
    if out is x:
        raise ValueError("out must not alias x (use leaky_relu_ instead)")
    out = np.multiply(x, slope, out=out)
    return np.maximum(x, out, out=out)


def leaky_relu_(x: np.ndarray, slope: float = 0.2) -> np.ndarray:
    """In-place :func:`leaky_relu`: overwrites and returns ``x``.

    For callers that own ``x`` (a workspace scratch buffer, a dead
    intermediate) this is allocation-free up to a broadcast temporary.
    """
    if not 0.0 <= slope <= 1.0:
        raise ValueError(f"slope must be in [0, 1], got {slope}")
    return np.maximum(x, x * slope, out=x)


def relu_(x: np.ndarray) -> np.ndarray:
    """In-place ReLU: overwrites and returns ``x``, no temporaries.

    Matches ``leaky_relu(x, 0.0)`` except on ``-inf`` inputs, where the
    ``slope * x`` product is NaN; finite activations are bitwise equal.
    """
    return np.maximum(x, 0.0, out=x)


def quantize_symmetric_int8(w: np.ndarray, axis) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-slice int8 quantization: ``(q_int8, scale)``.

    ``axis`` names the reduction axes; each remaining slice gets its own
    scale ``amax / 127`` (1.0 for all-zero slices, so ``q = 0`` exactly)
    and zero-point 0 — symmetric quantization keeps zero exactly
    representable, which the conv padding border relies on.  Dequantize
    with ``q * scale``; the worst-case per-element error is ``scale / 2``.
    """
    amax = np.max(np.abs(w), axis=axis, keepdims=True)
    scale = np.where(amax > 0, amax / np.float32(127.0),
                     np.float32(1.0)).astype(np.float32)
    q = np.rint(w / scale)
    np.clip(q, -127.0, 127.0, out=q)
    return q.astype(np.int8), np.squeeze(scale, axis=axis)
