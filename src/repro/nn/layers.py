"""Neural-network layers with explicit forward/backward passes.

Every layer caches what it needs during ``forward`` and consumes the cache in
``backward``, returning the gradient with respect to its input while
accumulating parameter gradients in place.  This mirrors the define-by-run
style the paper's TensorFlow implementation relies on, without an autodiff
graph — which keeps each derivative small enough to verify by finite
differences (see ``tests/test_nn_gradcheck.py``).

Two hot-path mechanisms overlay the basic scheme:

* **Workspace arena** — a layer with a :class:`~repro.nn.workspace.Workspace`
  attached (see :meth:`Module.attach_workspace`) routes its large
  temporaries (im2col matrices, gemm outputs, scatter images, activation
  masks) through per-layer arena slots instead of allocating per call.
  Results are bitwise identical to the detached path; only the memory
  traffic changes.  The arena contract: a layer's outputs and caches stay
  valid until that layer runs the same pass again, which the sequential
  train step and the single-threaded serving worker satisfy by
  construction.
* **Fused eval path** — :meth:`Module.forward_eval` is an inference-only
  forward: no gradient caches written, every intermediate in arena
  scratch, and conv + norm (+ activation) folded into single steps with
  the normalization collapsed into cached gemm weights.  Convolutions run
  their gemms per sample (stacked ``np.matmul``), so every forward —
  training included — is batch-invariant: batched forecasts are bitwise
  the batch-1 forecasts, which the serving engine's micro-batching and
  the golden eval report rely on.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

import numpy as np

from repro.nn import parallel
from repro.nn.functional import (
    col2im_bt,
    conv2d_output_size,
    conv_transpose2d_output_size,
    im2col,
    im2col_view,
    leaky_relu,
    leaky_relu_,
    pad2d,
    quantize_symmetric_int8,
)
from repro.nn.init import normal_init
from repro.nn.workspace import Workspace


class Parameter:
    """A learnable tensor and its accumulated gradient."""

    __slots__ = ("data", "grad")

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0


class Module:
    """Base class: tracks sub-modules and parameters via attribute scan."""

    def __init__(self):
        self.training = True
        self.inference_mode = "float32"
        self._ws: Workspace | None = None
        self._ws_views: dict[tuple, np.ndarray] = {}
        self._plans: dict[tuple, tuple] = {}
        self._zeroed_pads: dict[str, int] = {}
        self._ws_epoch = -1

    # -- graph traversal ---------------------------------------------------

    def children(self) -> Iterator["Module"]:
        for value in vars(self).values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """(path, module) pairs for this module and every descendant.

        Paths mirror :meth:`named_parameters` (attribute names, list
        indices) so a layer's parameters and its profile stats line up.
        """
        yield prefix.rstrip("."), self
        for name, value in vars(self).items():
            key = f"{prefix}{name}"
            if isinstance(value, Module):
                yield from value.named_modules(prefix=f"{key}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(prefix=f"{key}.{index}.")

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            key = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield key, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{key}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{key}.{index}.")

    def parameters(self) -> list[Parameter]:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        return int(sum(param.data.size for param in self.parameters()))

    # -- mode / gradient management ----------------------------------------

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def set_inference_mode(self, mode: str) -> "Module":
        """Select the eval-path numeric variant, recursively.

        ``"float32"`` (the default) is the reference fused path;
        ``"int8"`` makes the conv layers run their fused eval gemms over
        per-output-channel int8-quantized weights and dynamically
        quantized activations (see :meth:`Conv2d.quantize_folded`) —
        lossy by a bounded quantization error, gated by the golden eval
        fixtures.  Training passes are unaffected.
        """
        if mode not in ("float32", "int8"):
            raise ValueError(
                f"inference mode must be 'float32' or 'int8', got {mode!r}")
        self.inference_mode = mode
        for child in self.children():
            child.set_inference_mode(mode)
        return self

    # -- workspace ----------------------------------------------------------

    def attach_workspace(self, workspace: Workspace | None) -> "Module":
        """Attach (or with ``None`` detach) a scratch arena, recursively.

        Attached modules reuse per-layer arena buffers on the hot path;
        detached modules allocate per call.  Both compute identical bits.
        """
        self._ws = workspace
        self._ws_views = {}
        self._plans = {}
        self._zeroed_pads = {}
        self._ws_epoch = -1
        for child in self.children():
            child.attach_workspace(workspace)
        return self

    @property
    def workspace(self) -> Workspace | None:
        return self._ws

    def _buf(self, name: str, shape: tuple[int, ...],
             dtype=np.float32) -> np.ndarray:
        """Arena scratch when attached, a fresh allocation otherwise.

        Acquired views are memoized per (name, shape) on the layer — the
        steady-state cost is one dict hit.  A slot's dtype is fixed by its
        name, so dtype is not part of the key.  The memo (and the view
        plans built on top of it) is dropped whenever the workspace's
        backing epoch moves, so a slot reallocation never leaves stale
        views pinning orphaned buffers.
        """
        ws = self._ws
        if ws is None:
            return np.empty(shape, dtype=dtype)
        if self._ws_epoch != ws.epoch:
            self._ws_views = {}
            self._plans = {}
            self._zeroed_pads = {}
            self._ws_epoch = ws.epoch
        key = (name, shape)
        view = self._ws_views.get(key)
        if view is None:
            view = ws.buffer(self, name, shape, dtype)
            self._ws_views[key] = view
        return view

    def _gather(self, src: np.ndarray, kernel: int, stride: int,
                col: np.ndarray) -> np.ndarray:
        """im2col gather from an arena-stable (already padded) source.

        The strided window view and the destination reshape are cached
        per (source, destination) identity — both are arena views, so a
        steady-state gather is a single ``np.copyto`` replay.
        """
        key = ("gather", id(src), src.shape, kernel, stride, id(col))
        plan = self._plans.get(key)
        if plan is None:
            view = im2col_view(src, kernel, stride)
            plan = (view, col.reshape(view.shape))
            self._plans[key] = plan
        view, dest = plan
        parallel.sharded_copy(dest, view)
        return col

    def _pad_scratch(self, name: str, shape: tuple[int, ...],
                     dtype) -> tuple[np.ndarray | None, bool]:
        """Padding scratch plus whether its border still needs zeroing.

        The conv padding buffer's border is written only by the zero
        fill, so once a given view has been bordered it stays bordered —
        unless the slot served a different shape in between (the backing
        memory is shared, so another view's interior writes can land on
        this view's border).  Tracking the last-used view id per slot
        makes the skip exact.
        """
        if self._ws is None:
            return None, True
        buf = self._buf(name, shape, dtype)
        marker = id(buf)
        zero_border = self._zeroed_pads.get(name) != marker
        self._zeroed_pads[name] = marker
        return buf, zero_border

    def _scatter_bt(self, col_bt: np.ndarray,
                    x_shape: tuple[int, int, int, int], kernel: int,
                    stride: int, pad: int, name: str) -> np.ndarray:
        """:func:`col2im_bt` through a cached view plan over arena buffers.

        Two optimizations over the plain scatter, both value-preserving:

        * **View plans** — slicing the 2 x kernel^2 scatter views
          dominates the Python cost at small image sizes; the arena keeps
          every array identity-stable across calls, so views are built
          once and replayed.
        * **Phase planes** (``stride >= 2``) — accumulating directly into
          the strided image makes every add a stride-``s`` scatter.
          Splitting the padded image into its ``s x s`` sub-pixel parity
          planes turns all kernel^2 accumulations into contiguous-row
          adds, leaving only ``s^2`` strided interleave copies at the
          end (and a contiguous result).  Per-element accumulation order
          matches :func:`col2im_bt` exactly, so the result is bitwise
          equal.
        """
        if self._ws is None:
            return col2im_bt(col_bt, x_shape, kernel, stride, pad)
        key = (id(col_bt), x_shape, kernel, stride, pad, name)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._build_scatter_plan(col_bt, x_shape, kernel,
                                            stride, pad, name)
            self._plans[key] = plan
        add_pairs, assign_pairs, fill, result = plan
        # Thread the replay on the batch axis (or, for batch-1, the
        # channel axis): every plan view carries (n, c) as its leading
        # axes and the scatter never mixes samples or channels, so a
        # shard sees exactly the serial per-element accumulation order.
        n, channels = fill.shape[0], fill.shape[1]
        if parallel.get_num_threads() > 1 and (n > 1 or channels > 1):
            if n > 1:
                def shard(start, stop):
                    fill[start:stop] = 0
                    for dst, src in add_pairs:
                        np.add(dst[start:stop], src[start:stop],
                               out=dst[start:stop])
                    for dst, src in assign_pairs:
                        dst[start:stop][...] = src[start:stop]
                parallel.parallel_for(n, shard)
            else:
                def shard(start, stop):
                    fill[:, start:stop] = 0
                    for dst, src in add_pairs:
                        np.add(dst[:, start:stop], src[:, start:stop],
                               out=dst[:, start:stop])
                    for dst, src in assign_pairs:
                        dst[:, start:stop][...] = src[:, start:stop]
                parallel.parallel_for(channels, shard)
            return result
        fill[...] = 0
        for dst, src in add_pairs:
            np.add(dst, src, out=dst)
        for dst, src in assign_pairs:
            dst[...] = src
        return result

    def _build_scatter_plan(self, col_bt: np.ndarray, x_shape, kernel: int,
                            stride: int, pad: int, name: str) -> tuple:
        n, c, h, w = x_shape
        out_h = conv2d_output_size(h, kernel, stride, pad)
        out_w = conv2d_output_size(w, kernel, stride, pad)
        colb = col_bt.reshape(n, c, kernel, kernel, out_h, out_w)
        if stride == 1:
            img = self._buf(name, (n, c, h + 2 * pad, w + 2 * pad),
                            col_bt.dtype)
            pairs = []
            for ky in range(kernel):
                for kx in range(kernel):
                    pairs.append((img[:, :, ky:ky + out_h, kx:kx + out_w],
                                  colb[:, :, ky, kx]))
            return (tuple(pairs), (), img,
                    img[:, :, pad:pad + h, pad:pad + w])
        # Phase planes: padded row p = py + stride * r lives on plane
        # (py, px) at (r, col); each kernel offset lands at a fixed plane
        # shift, so its add is a contiguous block.
        a_max = (kernel - 1) // stride
        # Rows: enough for every kernel-offset block AND for the deepest
        # interleave read (trailing padded-slop rows stay zero-filled).
        rows = max(out_h + a_max, (h - 1 + pad) // stride + 1)
        cols = max(out_w + a_max, (w - 1 + pad) // stride + 1)
        planes = self._buf(name + "ph", (n, c, stride, stride, rows, cols),
                           col_bt.dtype)
        out = self._buf(name, (n, c, h, w), col_bt.dtype)
        add_pairs = []
        for ky in range(kernel):
            py, a = ky % stride, ky // stride
            for kx in range(kernel):
                px, b = kx % stride, kx // stride
                add_pairs.append(
                    (planes[:, :, py, px, a:a + out_h, b:b + out_w],
                     colb[:, :, ky, kx]))
        assign_pairs = []
        for py in range(stride):
            q0 = (py - pad) % stride
            r0 = (q0 + pad - py) // stride
            ny = (h - q0 + stride - 1) // stride
            for px in range(stride):
                q0x = (px - pad) % stride
                c0 = (q0x + pad - px) // stride
                nx = (w - q0x + stride - 1) // stride
                assign_pairs.append(
                    (out[:, :, q0::stride, q0x::stride],
                     planes[:, :, py, px, r0:r0 + ny, c0:c0 + nx]))
        return (tuple(add_pairs), tuple(assign_pairs), planes, out)

    # -- state dict ----------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, value in self._named_buffers():
            state[name] = value.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if self._ws is not None:
            self._ws.generation += 1   # invalidate fused-weight caches
        own = dict(self.named_parameters())
        buffers = dict(self._named_buffers())
        for name, value in state.items():
            if name in own:
                if own[name].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{own[name].data.shape} vs {value.shape}"
                    )
                own[name].data[...] = value
            elif name in buffers:
                buffers[name][...] = value
            else:
                raise KeyError(f"unexpected key in state dict: {name}")

    def _named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, value in vars(self).items():
            key = f"{prefix}{name}"
            if isinstance(value, Module):
                yield from value._named_buffers(prefix=f"{key}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item._named_buffers(prefix=f"{key}.{index}.")
            elif isinstance(value, np.ndarray) and name.startswith("running_"):
                yield key, value

    def named_rngs(self, prefix: str = ""
                   ) -> Iterator[tuple[str, np.random.Generator]]:
        """Every random generator reachable in the tree, by attribute path.

        These are the noise streams a training step consumes (dropout
        masks); exact-resume checkpoints capture and restore their
        bit-generator states through :mod:`repro.nn.serialize`.  Layers
        sharing one ``Generator`` instance yield it once per path.
        """
        for name, value in vars(self).items():
            key = f"{prefix}{name}"
            if isinstance(value, Module):
                yield from value.named_rngs(prefix=f"{key}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_rngs(prefix=f"{key}.{index}.")
            elif isinstance(value, np.random.Generator):
                yield key, value

    # -- computation ---------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward_eval(self, x: np.ndarray) -> np.ndarray:
        """Inference-only forward: no gradient caches, arena scratch.

        The default runs a plain eval-mode ``forward`` (restoring the
        training flag), so any module supports it; the hot-path layers
        override it with fused implementations.  Outputs must stay valid
        only until the module's next pass, except where a subclass
        documents otherwise (``Tanh`` returns a caller-owned array, which
        is what makes generator outputs safe to hold).
        """
        if not self.training:
            return self.forward(x)
        self.train(False)
        try:
            return self.forward(x)
        finally:
            self.train(True)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


def _folded_bn_params(conv: Module, bn: "BatchNorm2d",
                      build_weights) -> tuple[np.ndarray, np.ndarray]:
    """Shared conv+BN weight-fold cache (Conv2d / ConvTranspose2d).

    ``y = bn(conv(x))`` with running statistics collapses to a single
    convolution with ``w' = w * s`` and ``b' = (b - mean) * s + beta``
    where ``s = gamma / sqrt(var + eps)`` — the normalization rides along
    in the gemm for free.  ``build_weights(scale)`` applies the scale on
    the layer's own weight axis.  Cached per workspace generation
    (training steps and state loads bump it).
    """
    gen = conv._ws.generation if conv._ws is not None else None
    fold = conv._fold
    if fold is not None and gen is not None and fold[0] == gen \
            and fold[1] == id(bn):
        return fold[2], fold[3]
    scale = bn.gamma.data / np.sqrt(bn.running_var + bn.eps)
    w_mat = build_weights(scale)
    bias = conv.bias.data if conv.bias is not None else 0.0
    b_vec = (bias - bn.running_mean) * scale + bn.beta.data
    if gen is not None:
        # id(bn), not bn itself: a Module inside a tuple attribute
        # would be picked up by the parameter/child attribute scan.
        conv._fold = (gen, id(bn), w_mat, b_vec)
    return w_mat, b_vec


class QuantizedWeights(NamedTuple):
    """A conv layer's fused-eval weights, int8-quantized per out-channel.

    ``q_f32`` holds the *same integer values* as ``q_int8`` — BLAS has
    no int8 gemm kernel, so the quantized path accumulates in float32
    over integer-valued operands (the int8 copies buy their speed as
    storage: the padded activation image and im2col matrix move 4x
    fewer bytes through the gather).  ``zero_point`` is always 0:
    symmetric quantization keeps the padding's zeros exact.
    """

    q_int8: np.ndarray
    q_f32: np.ndarray
    scale: np.ndarray
    zero_point: int
    bias: np.ndarray | None


def _dynamic_qscale(src: np.ndarray) -> float:
    """Per-call symmetric activation scale: ``max|src| / 127``."""
    amax = float(max(src.max(), -src.min()))
    return amax / 127.0 if amax > 0 else 1.0


class Conv2d(Module):
    """Strided 2-D convolution (square kernel, symmetric zero padding).

    Both passes run their gemms as a *stacked per-sample transposed*
    product — ``out[i] = w @ col_i.T`` via one broadcast ``np.matmul``.
    Each sample sees an identical gemm shape whatever the batch size, so
    every forward (training included) is batch-invariant: stacking inputs
    yields bitwise the per-sample results, which the serving engine's
    micro-batching and the eval runner's batched scoring rely on.  The
    transposed layout also makes the output NCHW-contiguous (no transpose
    view for downstream layers) and feeds :func:`col2im_bt`'s fast
    scatter in backward.
    """

    #: Stacked-matmul calls per pass, consumed by ``repro.obs.profile``.
    #: ``backward`` runs weight-grad + input-grad gemms; the latter is
    #: skipped (count 1) when called with ``need_input_grad=False``.
    GEMM_COUNTS = {"forward": 1, "backward": 2, "forward_eval": 1,
                   "forward_eval_folded": 1}

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 4,
                 stride: int = 2, pad: int = 1, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.weight = Parameter(
            normal_init((out_channels, in_channels, kernel, kernel), rng)
        )
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None
        self._cache: tuple | None = None
        self._fold: tuple | None = None
        self._qfold: tuple | None = None

    def _folded_params(self, bn: "BatchNorm2d") -> tuple[np.ndarray, np.ndarray]:
        """Weights/bias with the following BatchNorm folded in (eval only)."""
        return _folded_bn_params(
            self, bn,
            lambda scale: self.weight.data.reshape(
                self.out_channels, -1) * scale[:, None])

    def quantize_folded(self, bn: "BatchNorm2d | None" = None
                        ) -> QuantizedWeights:
        """Int8 weights with BN folded in, cached per workspace generation.

        Quantization happens *after* the BN fold — exactly the weights
        the float fused path multiplies by — so the int8 path inherits
        the fold's invalidation (training steps and state loads bump the
        generation) for free.
        """
        gen = self._ws.generation if self._ws is not None else None
        cached = self._qfold
        if cached is not None and gen is not None and cached[0] == gen \
                and cached[1] == id(bn):
            return cached[2]
        if bn is not None:
            w_mat, b_vec = self._folded_params(bn)
        else:
            w_mat = self.weight.data.reshape(self.out_channels, -1)
            b_vec = self.bias.data if self.bias is not None else None
        q_int8, scale = quantize_symmetric_int8(w_mat, axis=1)
        pack = QuantizedWeights(q_int8, q_int8.astype(np.float32),
                                scale, 0, b_vec)
        if gen is not None:
            self._qfold = (gen, id(bn), pack)
        return pack

    def _forward_eval_int8(self, x: np.ndarray, bn: "BatchNorm2d | None",
                           act: "LeakyReLU | None") -> np.ndarray:
        """Quantized fused eval: int8 gather, float32 accumulation.

        Activations are quantized symmetrically per call (dynamic range
        from this batch), packed through an int8 padding image and int8
        im2col matrix — the gather is where the 4x byte shrink pays —
        then widened back to float32 for the BLAS gemm and rescaled by
        ``w_scale[oc] * x_scale`` on the (much smaller) output.
        """
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        out_h = conv2d_output_size(h, self.kernel, self.stride, self.pad)
        out_w = conv2d_output_size(w, self.kernel, self.stride, self.pad)
        hw = out_h * out_w
        ckk = c * self.kernel * self.kernel
        qw = self.quantize_folded(bn)
        qf = self._buf("eq", x.shape, np.float32)
        if act is not None:
            leaky_relu(x, act.slope, out=qf)
            src = qf
        else:
            src = x
        x_scale = _dynamic_qscale(src)
        np.multiply(src, np.float32(1.0 / x_scale), out=qf)
        np.rint(qf, out=qf)
        colq = self._buf("qcolf", (n * hw, ckk), np.float32)
        if self._ws is not None and self.pad > 0:
            pad = self.pad
            pad8, zero_border = self._pad_scratch(
                "qpad", (n, c, h + 2 * pad, w + 2 * pad), np.int8)
            if zero_border:
                pad8[:, :, :pad, :] = 0
                pad8[:, :, h + pad:, :] = 0
                pad8[:, :, pad:h + pad, :pad] = 0
                pad8[:, :, pad:h + pad, w + pad:] = 0
            parallel.sharded_copy(pad8[:, :, pad:h + pad, pad:w + pad],
                                  qf, casting="unsafe")
            col8 = self._buf("qcol", (n * hw, ckk), np.int8)
            self._gather(pad8, self.kernel, self.stride, col8)
            parallel.sharded_copy(colq.reshape(n, hw, ckk),
                                  col8.reshape(n, hw, ckk),
                                  casting="unsafe")
        else:
            # Detached workspace (or pad-0): gather the integer-valued
            # activations as float32 — same values, same gemm result,
            # just without the int8 buffer's memory-traffic win.
            im2col(qf, self.kernel, self.stride, self.pad, out=colq)
        out3 = self._buf("eout", (n, self.out_channels, hw), np.float32)
        parallel.stacked_matmul(
            qw.q_f32, colq.reshape(n, hw, ckk).transpose(0, 2, 1), out3,
            variant="int8")
        out3 *= (qw.scale * np.float32(x_scale))[:, None]
        if qw.bias is not None:
            out3 += qw.bias[:, None]
        return out3.reshape(n, self.out_channels, out_h, out_w)

    def forward_eval_folded(self, x: np.ndarray, bn: "BatchNorm2d",
                            act: "LeakyReLU | None" = None) -> np.ndarray:
        """Fused (activation +) conv + norm inference step.

        The BatchNorm collapses into the gemm weights (see
        :meth:`_folded_params`); a leading LeakyReLU, when given, writes
        its result directly into the interior of this layer's padding
        scratch — activation, padding, convolution, and normalization
        become one pass with no intermediate feature map.
        """
        if self.inference_mode == "int8":
            return self._forward_eval_int8(x, bn, act)
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        out_h = conv2d_output_size(h, self.kernel, self.stride, self.pad)
        out_w = conv2d_output_size(w, self.kernel, self.stride, self.pad)
        hw = out_h * out_w
        if act is not None and self.pad > 0 and self._ws is not None:
            pad = self.pad
            pad_out, zero_border = self._pad_scratch(
                "epad", (n, c, h + 2 * pad, w + 2 * pad), x.dtype)
            if zero_border:
                pad_out[:, :, :pad, :] = 0
                pad_out[:, :, h + pad:, :] = 0
                pad_out[:, :, pad:h + pad, :pad] = 0
                pad_out[:, :, pad:h + pad, w + pad:] = 0
            leaky_relu(x, act.slope,
                       out=pad_out[:, :, pad:h + pad, pad:w + pad])
            col = self._buf("ecol", (n * hw, c * self.kernel * self.kernel),
                            x.dtype)
            self._gather(pad_out, self.kernel, self.stride, col)
        else:
            if act is not None:
                x = act.forward_eval(x)
            col = self._pack(x, n, c, out_h, out_w, eval_mode=True)
        if bn is not None:
            w_mat, b_vec = self._folded_params(bn)
        else:
            w_mat = self.weight.data.reshape(self.out_channels, -1)
            b_vec = self.bias.data if self.bias is not None else None
        out3 = self._buf("eout", (n, self.out_channels, hw),
                         np.result_type(w_mat, col))
        parallel.stacked_matmul(
            w_mat, col.reshape(n, hw, -1).transpose(0, 2, 1), out3)
        if b_vec is not None:
            out3 += b_vec[:, None]
        return out3.reshape(n, self.out_channels, out_h, out_w)

    def _pack(self, x: np.ndarray, n: int, c: int, out_h: int, out_w: int,
              eval_mode: bool = False) -> np.ndarray:
        """im2col into arena scratch (padding scratch included).

        Eval packs into its own slots ("ecol"/"epad"): the training
        forward's cached column matrix must survive an interleaved
        inference pass until backward consumes it.
        """
        col_name, pad_name = ("ecol", "epad") if eval_mode else ("col", "pad")
        col = self._buf(col_name, (n * out_h * out_w,
                                   c * self.kernel * self.kernel), x.dtype)
        if self.pad > 0 and self._ws is not None:
            pad_out, zero_border = self._pad_scratch(
                pad_name, (n, c, x.shape[2] + 2 * self.pad,
                           x.shape[3] + 2 * self.pad), x.dtype)
            pad2d(x, self.pad, out=pad_out, zero_border=zero_border)
            return self._gather(pad_out, self.kernel, self.stride, col)
        return im2col(x, self.kernel, self.stride, self.pad, out=col)

    def _forward_impl(self, x: np.ndarray, cache: bool) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        out_h = conv2d_output_size(h, self.kernel, self.stride, self.pad)
        out_w = conv2d_output_size(w, self.kernel, self.stride, self.pad)
        hw = out_h * out_w
        col = self._pack(x, n, c, out_h, out_w, eval_mode=not cache)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        out3 = self._buf("out" if cache else "eout",
                         (n, self.out_channels, hw),
                         np.result_type(w_mat, col))
        parallel.stacked_matmul(
            w_mat, col.reshape(n, hw, -1).transpose(0, 2, 1), out3)
        if self.bias is not None:
            out3 += self.bias.data[:, None]
        if cache:
            self._cache = (x.shape, col)
        return out3.reshape(n, self.out_channels, out_h, out_w)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._forward_impl(x, cache=True)

    def forward_eval(self, x: np.ndarray) -> np.ndarray:
        if self.inference_mode == "int8":
            return self._forward_eval_int8(x, None, None)
        return self._forward_impl(x, cache=False)

    def backward(self, grad: np.ndarray,
                 need_input_grad: bool = True) -> np.ndarray | None:
        """Accumulate parameter gradients; return the input gradient.

        ``need_input_grad=False`` skips the input-gradient gemm and
        scatter entirely (they are the most expensive part on the widest
        layers) — the training step uses this for first layers whose
        input gradient nobody consumes.
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, col = self._cache
        if not grad.flags.c_contiguous:
            grad = np.ascontiguousarray(grad)
        n, _, out_h, out_w = grad.shape
        hw = out_h * out_w
        grad3 = grad.reshape(n, self.out_channels, hw)
        col3 = col.reshape(n, hw, -1)
        if n == 1:
            self.weight.grad += (grad3[0] @ col3[0]).reshape(
                self.weight.data.shape)
        else:
            # Per-sample partial products shard across threads; the
            # cross-sample sum stays serial in the legacy pairwise order,
            # so the gradient is bitwise-stable for every thread count.
            partials = self._buf("wgp", (n, self.out_channels,
                                         col3.shape[2]),
                                 np.result_type(grad3, col3))
            parallel.stacked_matmul(grad3, col3, partials)
            self.weight.grad += partials.sum(axis=0).reshape(
                self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(0, 2, 3))
        if not need_input_grad:
            return None
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        grad_col_bt = self._buf("gcolbt", (n, w_mat.shape[1], hw),
                                np.result_type(w_mat, grad))
        parallel.stacked_matmul(w_mat.T, grad3, grad_col_bt)
        return self._scatter_bt(grad_col_bt, x_shape, self.kernel,
                                self.stride, self.pad, "gimg")


class ConvTranspose2d(Module):
    """Transposed convolution (fractionally-strided), the U-Net upsampler.

    Forward here is exactly the backward-data pass of :class:`Conv2d`, and
    vice versa, which is the defining property of the transposed operator.
    Weight layout is ``(in_channels, out_channels, k, k)``.  As in
    :class:`Conv2d`, gemms run as stacked per-sample transposed products —
    batch-invariant by construction, reading an NCHW-contiguous input as
    per-sample ``(c, h*w)`` views with no flatten copy, and producing the
    layout :func:`col2im_bt` scatters fastest.
    """

    #: See :attr:`Conv2d.GEMM_COUNTS` — same pass-to-gemm accounting.
    GEMM_COUNTS = {"forward": 1, "backward": 2, "forward_eval": 1,
                   "forward_eval_folded": 1}

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 4,
                 stride: int = 2, pad: int = 1, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.weight = Parameter(
            normal_init((in_channels, out_channels, kernel, kernel), rng)
        )
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None
        self._cache: tuple | None = None
        self._fold: tuple | None = None
        self._qfold: tuple | None = None

    def _forward_impl(self, x: np.ndarray, cache: bool,
                      w_mat: np.ndarray | None = None,
                      b_vec: np.ndarray | None = None) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        out_h = conv_transpose2d_output_size(h, self.kernel, self.stride, self.pad)
        out_w = conv_transpose2d_output_size(w, self.kernel, self.stride, self.pad)
        if not x.flags.c_contiguous:
            x = np.ascontiguousarray(x)
        x3 = x.reshape(n, c, h * w)
        if w_mat is None:
            w_mat = self.weight.data.reshape(self.in_channels, -1)
        # Eval keeps its own slots so an interleaved inference pass never
        # disturbs a pending forward's caches.
        col_bt = self._buf("colbt" if cache else "ecolbt",
                           (n, w_mat.shape[1], h * w),
                           np.result_type(w_mat, x))
        parallel.stacked_matmul(w_mat.T, x3, col_bt)
        out = self._scatter_bt(col_bt, (n, self.out_channels, out_h, out_w),
                               self.kernel, self.stride, self.pad,
                               "img" if cache else "eimg")
        if b_vec is not None:
            out += b_vec[None, :, None, None]
        elif self.bias is not None:
            out += self.bias.data[None, :, None, None]
        if cache:
            # x3 is a view into the producing layer's buffer; the arena
            # contract (valid until that layer's next forward) spans this
            # layer's backward, so no defensive copy is needed.
            self._cache = (x3, (n, h, w), (out_h, out_w))
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._forward_impl(x, cache=True)

    def forward_eval(self, x: np.ndarray) -> np.ndarray:
        if self.inference_mode == "int8":
            return self._forward_eval_int8(x, None)
        return self._forward_impl(x, cache=False)

    def _folded_params(self, bn: "BatchNorm2d") -> tuple[np.ndarray, np.ndarray]:
        """Per-out-channel BN fold (see :func:`_folded_bn_params`)."""
        return _folded_bn_params(
            self, bn,
            lambda scale: (self.weight.data
                           * scale[None, :, None, None]).reshape(
                               self.in_channels, -1))

    def forward_eval_folded(self, x: np.ndarray,
                            bn: "BatchNorm2d") -> np.ndarray:
        """Fused transposed-conv+norm inference step."""
        if self.inference_mode == "int8":
            return self._forward_eval_int8(x, bn)
        w_mat, b_vec = self._folded_params(bn)
        return self._forward_impl(x, cache=False, w_mat=w_mat, b_vec=b_vec)

    def quantize_folded(self, bn: "BatchNorm2d | None" = None
                        ) -> QuantizedWeights:
        """Int8 weights (BN folded), scaled per *output* channel.

        The gemm operand is ``(in_c, oc*k*k)``, so the per-out-channel
        scale reduces over the input-channel and kernel axes of the 4-D
        weight view; dequantization then commutes with the col2im
        scatter (which never mixes output channels) and lands on the
        smaller post-scatter image.
        """
        gen = self._ws.generation if self._ws is not None else None
        cached = self._qfold
        if cached is not None and gen is not None and cached[0] == gen \
                and cached[1] == id(bn):
            return cached[2]
        if bn is not None:
            w_mat, b_vec = self._folded_params(bn)
        else:
            w_mat = self.weight.data.reshape(self.in_channels, -1)
            b_vec = self.bias.data if self.bias is not None else None
        w4 = w_mat.reshape(self.in_channels, self.out_channels,
                           self.kernel, self.kernel)
        q4, scale = quantize_symmetric_int8(w4, axis=(0, 2, 3))
        q_int8 = np.ascontiguousarray(q4.reshape(self.in_channels, -1))
        pack = QuantizedWeights(q_int8, q_int8.astype(np.float32),
                                scale, 0, b_vec)
        if gen is not None:
            self._qfold = (gen, id(bn), pack)
        return pack

    def _forward_eval_int8(self, x: np.ndarray,
                           bn: "BatchNorm2d | None") -> np.ndarray:
        """Quantized fused eval for the upsampler.

        The input itself is the gemm operand (no im2col on this side),
        so the quantized activations stay in float32 — an int8 copy
        would buy no traffic win with no gather to shrink and no int8
        BLAS kernel to hand it to.  Dequantization happens after the
        scatter, on ``oc * H * W`` elements instead of ``oc*k*k * h*w``.
        """
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        out_h = conv_transpose2d_output_size(h, self.kernel, self.stride,
                                             self.pad)
        out_w = conv_transpose2d_output_size(w, self.kernel, self.stride,
                                             self.pad)
        qw = self.quantize_folded(bn)
        if not x.flags.c_contiguous:
            x = np.ascontiguousarray(x)
        x_scale = _dynamic_qscale(x)
        qf = self._buf("eq", x.shape, np.float32)
        np.multiply(x, np.float32(1.0 / x_scale), out=qf)
        np.rint(qf, out=qf)
        col_bt = self._buf("qcolbt", (n, qw.q_f32.shape[1], h * w),
                           np.float32)
        parallel.stacked_matmul(qw.q_f32.T, qf.reshape(n, c, h * w),
                                col_bt, variant="int8")
        out = self._scatter_bt(col_bt, (n, self.out_channels, out_h, out_w),
                               self.kernel, self.stride, self.pad, "qimg")
        out *= (qw.scale * np.float32(x_scale))[None, :, None, None]
        if qw.bias is not None:
            out += qw.bias[None, :, None, None]
        return out

    def backward(self, grad: np.ndarray,
                 need_input_grad: bool = True) -> np.ndarray | None:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x3, (n, h, w), _ = self._cache
        hw = h * w
        okk = grad.shape[1] * self.kernel * self.kernel
        grad_col = self._buf("gcol", (n * hw, okk), grad.dtype)
        if self.pad > 0 and self._ws is not None:
            pad_out, zero_border = self._pad_scratch(
                "gpad", (n, grad.shape[1], grad.shape[2] + 2 * self.pad,
                         grad.shape[3] + 2 * self.pad), grad.dtype)
            pad2d(grad, self.pad, out=pad_out, zero_border=zero_border)
            self._gather(pad_out, self.kernel, self.stride, grad_col)
        else:
            im2col(grad, self.kernel, self.stride, self.pad, out=grad_col)
        gcol3 = grad_col.reshape(n, hw, okk)
        if n == 1:
            self.weight.grad += (x3[0] @ gcol3[0]).reshape(
                self.weight.data.shape)
        else:
            # Sharded per-sample partials + serial legacy-order sum (see
            # Conv2d.backward) — bitwise-stable for every thread count.
            partials = self._buf("wgp", (n, self.in_channels, okk),
                                 np.result_type(x3, gcol3))
            parallel.stacked_matmul(x3, gcol3, partials)
            self.weight.grad += partials.sum(axis=0).reshape(
                self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(0, 2, 3))
        if not need_input_grad:
            return None
        w_mat = self.weight.data.reshape(self.in_channels, -1)
        gx3 = self._buf("gx", (n, self.in_channels, hw),
                        np.result_type(w_mat, grad))
        parallel.stacked_matmul(w_mat, gcol3.transpose(0, 2, 1), gx3)
        return gx3.reshape(n, self.in_channels, h, w)


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) per channel.

    With the paper's batch size of 1 this behaves like instance norm, which is
    the standard pix2pix regime.  Running statistics drive eval mode.
    """

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.channels = channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(channels, dtype=np.float32))
        self.beta = Parameter(np.zeros(channels, dtype=np.float32))
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {x.shape[1]}")
        if self.training:
            count = x.shape[0] * x.shape[2] * x.shape[3]
            mean = np.add.reduce(x, axis=(0, 2, 3))
            mean /= count
            # Reuse the centered activations for both the variance and
            # x_hat: same subtraction and reduction np.var performs, one
            # pass fewer over the data (bitwise-equal result).
            diff = np.subtract(x, mean[None, :, None, None],
                               out=self._buf("xhat", x.shape, x.dtype))
            sq = np.multiply(diff, diff, out=self._buf("sq", x.shape, x.dtype))
            var = np.add.reduce(sq, axis=(0, 2, 3))
            var /= count
            self.running_mean *= 1 - self.momentum
            self.running_mean += self.momentum * mean
            unbiased = var * count / max(count - 1, 1)
            self.running_var *= 1 - self.momentum
            self.running_var += self.momentum * unbiased
        else:
            mean = self.running_mean
            var = self.running_var
            diff = np.subtract(x, mean[None, :, None, None],
                               out=self._buf("xhat", x.shape, x.dtype))
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = np.multiply(diff, inv_std[None, :, None, None], out=diff)
        out = np.multiply(x_hat, self.gamma.data[None, :, None, None],
                          out=self._buf("out", x.shape, x.dtype))
        out += self.beta.data[None, :, None, None]
        self._cache = (x_hat, inv_std)
        return out

    def forward_eval(self, x: np.ndarray) -> np.ndarray:
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        out = np.subtract(x, self.running_mean[None, :, None, None],
                          out=self._buf("eout", x.shape, x.dtype))
        out *= inv_std[None, :, None, None]
        np.multiply(out, self.gamma.data[None, :, None, None], out=out)
        out += self.beta.data[None, :, None, None]
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        self.gamma.grad += (grad * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad.sum(axis=(0, 2, 3))
        if not self.training:
            return grad * (self.gamma.data * inv_std)[None, :, None, None]
        count = grad.shape[0] * grad.shape[2] * grad.shape[3]
        g = np.multiply(grad, self.gamma.data[None, :, None, None],
                        out=self._buf("g", grad.shape, grad.dtype))
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True).reshape(1, -1, 1, 1)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True).reshape(1, -1, 1, 1)
        gin = np.multiply(g, count, out=self._buf("gin", grad.shape,
                                                  grad.dtype))
        gin -= sum_g
        gin -= np.multiply(x_hat, sum_gx,
                           out=self._buf("gtmp", grad.shape, grad.dtype))
        gin *= inv_std[None, :, None, None] / count
        return gin


class LeakyReLU(Module):
    """LeakyReLU with configurable negative slope (pix2pix uses 0.2).

    Forward materializes a per-element *scale* in {1, slope} and returns
    ``x * scale``; backward is then a single multiply instead of the
    masked-select the ``np.where`` formulation needs (masked copies are
    the slow path in numpy).  Values are bitwise-identical to
    ``np.where(x >= 0, x, slope * x)`` — the constructor verifies the one
    rounding hazard, ``float32(slope) + float32(1 - slope) == 1`` exactly
    (it holds for the network's 0.2 and 0.0), and falls back to the
    mask-and-select form otherwise.
    """

    def __init__(self, slope: float = 0.2):
        super().__init__()
        self.slope = slope
        self._scale: np.ndarray | None = None
        self._mask: np.ndarray | None = None
        self._scale_exact = bool(
            np.float32(slope) + np.float32(1.0 - slope) == np.float32(1.0))

    def forward(self, x: np.ndarray) -> np.ndarray:
        mask = np.greater_equal(x, 0, out=self._buf("mask", x.shape, bool))
        if self._scale_exact:
            scale = np.multiply(mask, 1.0 - self.slope,
                                out=self._buf("scale", x.shape, x.dtype))
            scale += self.slope
            self._scale = scale
            self._mask = None
            return np.multiply(x, scale,
                               out=self._buf("out", x.shape, x.dtype))
        self._mask = mask
        self._scale = None
        return np.where(mask, x, self.slope * x)

    def forward_eval(self, x: np.ndarray) -> np.ndarray:
        # max(x, slope*x) — bitwise np.where(mask, x, slope*x), one pass.
        return leaky_relu(x, self.slope,
                          out=self._buf("eout", x.shape, x.dtype))

    def forward_eval_(self, x: np.ndarray) -> np.ndarray:
        """In-place eval activation for caller-owned scratch input."""
        return leaky_relu_(x, self.slope)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._scale is not None:
            return np.multiply(grad, self._scale,
                               out=self._buf("gout", grad.shape, grad.dtype))
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad, self.slope * grad)


class ReLU(LeakyReLU):
    """Standard ReLU (decoder activations)."""

    def __init__(self):
        super().__init__(slope=0.0)


class Tanh(Module):
    """Output activation: images are generated in [-1, 1].

    Always allocates its output: as the generator's final layer its result
    is handed to callers (and held across further passes), so it must not
    live in arena scratch.
    """

    def __init__(self):
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def forward_eval(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        out = self._out
        buf = np.multiply(out, out, out=self._buf("gin", grad.shape,
                                                  grad.dtype))
        np.subtract(1.0, buf, out=buf)
        np.multiply(grad, buf, out=buf)
        return buf


class Sigmoid(Module):
    """Logistic activation (used only when a probability output is needed;
    the discriminator trains on logits through BCEWithLogitsLoss)."""

    def __init__(self):
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        from repro.nn.functional import sigmoid

        self._out = sigmoid(x)
        return self._out

    def forward_eval(self, x: np.ndarray) -> np.ndarray:
        from repro.nn.functional import sigmoid

        return sigmoid(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad * self._out * (1.0 - self._out)


class Dropout(Module):
    """Inverted dropout.

    pix2pix injects its noise ``z`` purely through dropout in the decoder; the
    generator can therefore be run with dropout active at inference to sample
    diverse outputs (``training=True``).
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        # The float64 draw is deliberate: float32 draws consume the rng
        # stream differently and would change every seeded training run.
        mask = (self.rng.random(x.shape) < keep).astype(x.dtype)
        mask /= keep
        self._mask = mask
        return x * mask

    def forward_eval(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class Identity(Module):
    """No-op layer, useful for optional slots in block builders."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def forward_eval(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad


class Sequential(Module):
    """Composes layers; backward runs them in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def append(self, layer: Module) -> None:
        self.layers.append(layer)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def forward_eval(self, x: np.ndarray,
                     owns_input: bool = False) -> np.ndarray:
        """Fused inference pass: each stage consumes arena scratch.

        A convolution immediately followed by a BatchNorm runs as one
        folded step (the norm collapses into the conv weights — see
        ``Conv2d._folded_params``), and ``owns_input=True`` promises ``x``
        is caller-donated scratch (a dead intermediate such as a
        skip-concat buffer), letting a leading activation run in place
        instead of through its own buffer.
        """
        layers = self.layers
        count = len(layers)
        i = 0
        if owns_input and count and isinstance(layers[0], LeakyReLU):
            x = layers[0].forward_eval_(x)
            i = 1
        while i < count:
            layer = layers[i]
            nxt = layers[i + 1] if i + 1 < count else None
            if isinstance(layer, LeakyReLU) and isinstance(nxt, Conv2d):
                bn = (layers[i + 2]
                      if i + 2 < count
                      and isinstance(layers[i + 2], BatchNorm2d) else None)
                x = nxt.forward_eval_folded(x, bn, act=layer)
                i += 3 if bn is not None else 2
            elif (isinstance(layer, (Conv2d, ConvTranspose2d))
                    and isinstance(nxt, BatchNorm2d)):
                x = layer.forward_eval_folded(x, nxt)
                i += 2
            else:
                x = layer.forward_eval(x)
                i += 1
        return x

    def backward(self, grad: np.ndarray,
                 need_input_grad: bool = True) -> np.ndarray | None:
        """Reverse pass; ``need_input_grad=False`` lets a leading conv
        skip its (unused) input-gradient computation."""
        layers = self.layers
        for layer in reversed(layers[1:]):
            grad = layer.backward(grad)
        if not layers:
            return grad
        first = layers[0]
        if not need_input_grad and isinstance(first,
                                              (Conv2d, ConvTranspose2d)):
            return first.backward(grad, need_input_grad=False)
        return first.backward(grad)


class Concat(Module):
    """Channel-wise concatenation of two inputs (U-Net skip connections).

    ``forward`` takes a tuple; ``backward`` returns a tuple of gradients split
    at the recorded channel boundary.
    """

    def __init__(self):
        super().__init__()
        self._split: int | None = None

    def forward(self, pair) -> np.ndarray:  # type: ignore[override]
        a, b = pair
        if a.shape[0] != b.shape[0] or a.shape[2:] != b.shape[2:]:
            raise ValueError(f"cannot concat shapes {a.shape} and {b.shape}")
        self._split = a.shape[1]
        return np.concatenate([a, b], axis=1)

    def forward_eval(self, pair) -> np.ndarray:  # type: ignore[override]
        a, b = pair
        if a.shape[0] != b.shape[0] or a.shape[2:] != b.shape[2:]:
            raise ValueError(f"cannot concat shapes {a.shape} and {b.shape}")
        shape = (a.shape[0], a.shape[1] + b.shape[1]) + a.shape[2:]
        out = self._buf("eout", shape, a.dtype)
        np.concatenate([a, b], axis=1, out=out)
        return out

    def backward(self, grad: np.ndarray):  # type: ignore[override]
        if self._split is None:
            raise RuntimeError("backward called before forward")
        return grad[:, :self._split], grad[:, self._split:]
