"""Neural-network layers with explicit forward/backward passes.

Every layer caches what it needs during ``forward`` and consumes the cache in
``backward``, returning the gradient with respect to its input while
accumulating parameter gradients in place.  This mirrors the define-by-run
style the paper's TensorFlow implementation relies on, without an autodiff
graph — which keeps each derivative small enough to verify by finite
differences (see ``tests/test_nn_gradcheck.py``).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.functional import (
    blocked_matmul,
    col2im,
    conv2d_output_size,
    conv_transpose2d_output_size,
    im2col,
)
from repro.nn.init import normal_init


class Parameter:
    """A learnable tensor and its accumulated gradient."""

    __slots__ = ("data", "grad")

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0


class Module:
    """Base class: tracks sub-modules and parameters via attribute scan."""

    def __init__(self):
        self.training = True

    # -- graph traversal ---------------------------------------------------

    def children(self) -> Iterator["Module"]:
        for value in vars(self).values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            key = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield key, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{key}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{key}.{index}.")

    def parameters(self) -> list[Parameter]:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        return int(sum(param.data.size for param in self.parameters()))

    # -- mode / gradient management ----------------------------------------

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- state dict ----------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, value in self._named_buffers():
            state[name] = value.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        buffers = dict(self._named_buffers())
        for name, value in state.items():
            if name in own:
                if own[name].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{own[name].data.shape} vs {value.shape}"
                    )
                own[name].data[...] = value
            elif name in buffers:
                buffers[name][...] = value
            else:
                raise KeyError(f"unexpected key in state dict: {name}")

    def _named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, value in vars(self).items():
            key = f"{prefix}{name}"
            if isinstance(value, Module):
                yield from value._named_buffers(prefix=f"{key}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item._named_buffers(prefix=f"{key}.{index}.")
            elif isinstance(value, np.ndarray) and name.startswith("running_"):
                yield key, value

    # -- computation ---------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Conv2d(Module):
    """Strided 2-D convolution (square kernel, symmetric zero padding)."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 4,
                 stride: int = 2, pad: int = 1, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.weight = Parameter(
            normal_init((out_channels, in_channels, kernel, kernel), rng)
        )
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        out_h = conv2d_output_size(h, self.kernel, self.stride, self.pad)
        out_w = conv2d_output_size(w, self.kernel, self.stride, self.pad)
        col = im2col(x, self.kernel, self.stride, self.pad)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        if self.training:
            out = col @ w_mat.T
        else:
            # Inference must be batch-invariant: per-sample gemm blocks keep
            # batched forecasts bitwise-equal to batch-1 (see blocked_matmul).
            out = blocked_matmul(col, w_mat.T, out_h * out_w)
        if self.bias is not None:
            out += self.bias.data
        self._cache = (x.shape, col)
        return out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, col = self._cache
        n, _, out_h, out_w = grad.shape
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(n * out_h * out_w,
                                                      self.out_channels)
        self.weight.grad += (grad_mat.T @ col).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_mat.sum(axis=0)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        grad_col = grad_mat @ w_mat
        return col2im(grad_col, x_shape, self.kernel, self.stride, self.pad)


class ConvTranspose2d(Module):
    """Transposed convolution (fractionally-strided), the U-Net upsampler.

    Forward here is exactly the backward-data pass of :class:`Conv2d`, and
    vice versa, which is the defining property of the transposed operator.
    Weight layout is ``(in_channels, out_channels, k, k)``.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 4,
                 stride: int = 2, pad: int = 1, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.weight = Parameter(
            normal_init((in_channels, out_channels, kernel, kernel), rng)
        )
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        out_h = conv_transpose2d_output_size(h, self.kernel, self.stride, self.pad)
        out_w = conv_transpose2d_output_size(w, self.kernel, self.stride, self.pad)
        x_mat = x.transpose(0, 2, 3, 1).reshape(n * h * w, c)
        w_mat = self.weight.data.reshape(self.in_channels, -1)
        if self.training:
            col = x_mat @ w_mat
        else:
            # Batch-invariant inference, as in Conv2d.forward.
            col = blocked_matmul(x_mat, w_mat, h * w)
        out = col2im(col, (n, self.out_channels, out_h, out_w),
                     self.kernel, self.stride, self.pad)
        if self.bias is not None:
            out += self.bias.data[None, :, None, None]
        self._cache = (x_mat, (n, h, w), (out_h, out_w))
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_mat, (n, h, w), _ = self._cache
        grad_col = im2col(grad, self.kernel, self.stride, self.pad)
        self.weight.grad += (x_mat.T @ grad_col).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(0, 2, 3))
        w_mat = self.weight.data.reshape(self.in_channels, -1)
        grad_x = grad_col @ w_mat.T
        return grad_x.reshape(n, h, w, self.in_channels).transpose(0, 3, 1, 2)


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) per channel.

    With the paper's batch size of 1 this behaves like instance norm, which is
    the standard pix2pix regime.  Running statistics drive eval mode.
    """

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.channels = channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(channels, dtype=np.float32))
        self.beta = Parameter(np.zeros(channels, dtype=np.float32))
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {x.shape[1]}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            count = x.shape[0] * x.shape[2] * x.shape[3]
            self.running_mean[...] = ((1 - self.momentum) * self.running_mean
                                      + self.momentum * mean)
            unbiased = var * count / max(count - 1, 1)
            self.running_var[...] = ((1 - self.momentum) * self.running_var
                                     + self.momentum * unbiased)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = (self.gamma.data[None, :, None, None] * x_hat
               + self.beta.data[None, :, None, None])
        self._cache = (x_hat, inv_std)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        self.gamma.grad += (grad * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad.sum(axis=(0, 2, 3))
        if not self.training:
            return grad * (self.gamma.data * inv_std)[None, :, None, None]
        count = grad.shape[0] * grad.shape[2] * grad.shape[3]
        g = grad * self.gamma.data[None, :, None, None]
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True).reshape(1, -1, 1, 1)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True).reshape(1, -1, 1, 1)
        return (inv_std[None, :, None, None] / count
                * (count * g - sum_g - x_hat * sum_gx))


class LeakyReLU(Module):
    """LeakyReLU with configurable negative slope (pix2pix uses 0.2)."""

    def __init__(self, slope: float = 0.2):
        super().__init__()
        self.slope = slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x >= 0
        return np.where(self._mask, x, self.slope * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad, self.slope * grad)


class ReLU(LeakyReLU):
    """Standard ReLU (decoder activations)."""

    def __init__(self):
        super().__init__(slope=0.0)


class Tanh(Module):
    """Output activation: images are generated in [-1, 1]."""

    def __init__(self):
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad * (1.0 - self._out * self._out)


class Sigmoid(Module):
    """Logistic activation (used only when a probability output is needed;
    the discriminator trains on logits through BCEWithLogitsLoss)."""

    def __init__(self):
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        from repro.nn.functional import sigmoid

        self._out = sigmoid(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad * self._out * (1.0 - self._out)


class Dropout(Module):
    """Inverted dropout.

    pix2pix injects its noise ``z`` purely through dropout in the decoder; the
    generator can therefore be run with dropout active at inference to sample
    diverse outputs (``training=True``).
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class Identity(Module):
    """No-op layer, useful for optional slots in block builders."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad


class Sequential(Module):
    """Composes layers; backward runs them in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def append(self, layer: Module) -> None:
        self.layers.append(layer)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


class Concat(Module):
    """Channel-wise concatenation of two inputs (U-Net skip connections).

    ``forward`` takes a tuple; ``backward`` returns a tuple of gradients split
    at the recorded channel boundary.
    """

    def __init__(self):
        super().__init__()
        self._split: int | None = None

    def forward(self, pair) -> np.ndarray:  # type: ignore[override]
        a, b = pair
        if a.shape[0] != b.shape[0] or a.shape[2:] != b.shape[2:]:
            raise ValueError(f"cannot concat shapes {a.shape} and {b.shape}")
        self._split = a.shape[1]
        return np.concatenate([a, b], axis=1)

    def backward(self, grad: np.ndarray):  # type: ignore[override]
        if self._split is None:
            raise RuntimeError("backward called before forward")
        return grad[:, :self._split], grad[:, self._split:]
