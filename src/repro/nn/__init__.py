"""A small, from-scratch numpy deep-learning framework.

This package stands in for TensorFlow in the original work.  It provides
exactly the operator set the paper's cGAN needs — strided convolutions,
transposed convolutions, batch normalization, LeakyReLU/ReLU/tanh/sigmoid,
dropout, Adam, and the BCE/L1 losses — implemented with explicit
forward/backward passes over im2col-packed arrays and verified against
finite differences in the test suite.
"""

from repro.nn.functional import (
    blocked_matmul,
    col2im,
    col2im_bt,
    conv2d_output_size,
    conv_transpose2d_output_size,
    im2col,
    im2col_view,
    leaky_relu,
    leaky_relu_,
    pad2d,
    quantize_symmetric_int8,
    relu_,
    sigmoid,
)
from repro.nn.init import he_normal, normal_init, xavier_uniform
from repro.nn.layers import (
    BatchNorm2d,
    Concat,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    Identity,
    LeakyReLU,
    Module,
    Parameter,
    QuantizedWeights,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.parallel import (
    get_num_threads,
    set_num_threads,
    shutdown_pool,
)
from repro.nn.losses import BCEWithLogitsLoss, L1Loss, MSELoss
from repro.nn.optim import SGD, Adam
from repro.nn.serialize import (
    load_state_dict,
    save_state_dict,
    state_dict_mismatch,
    validate_state_dict,
)
from repro.nn.workspace import Workspace

__all__ = [
    "Adam",
    "BCEWithLogitsLoss",
    "BatchNorm2d",
    "Concat",
    "Conv2d",
    "ConvTranspose2d",
    "Dropout",
    "Identity",
    "L1Loss",
    "LeakyReLU",
    "MSELoss",
    "Module",
    "Parameter",
    "QuantizedWeights",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "Workspace",
    "blocked_matmul",
    "col2im",
    "col2im_bt",
    "conv2d_output_size",
    "conv_transpose2d_output_size",
    "get_num_threads",
    "he_normal",
    "im2col",
    "im2col_view",
    "leaky_relu",
    "leaky_relu_",
    "load_state_dict",
    "normal_init",
    "pad2d",
    "quantize_symmetric_int8",
    "relu_",
    "save_state_dict",
    "set_num_threads",
    "shutdown_pool",
    "sigmoid",
    "state_dict_mismatch",
    "validate_state_dict",
    "xavier_uniform",
]
