"""Deterministic evaluation reports and the report-diff (compare) logic.

A report is a plain JSON document carrying everything needed to know
*what* was evaluated — the dataset's content fingerprint, the split, the
checkpoint's identity — alongside the metric values, and nothing
volatile (no timestamps, no wall-clock timings, no host names).  Two runs
of the same evaluation therefore render byte-identical files, which is
what lets the golden-metric regression gate ``cmp`` them and lets any two
reports diff meaningfully.

:func:`compare_reports` is the regression check: a per-metric diff with
explicit absolute tolerances, plus identity checks (same data, same
sample count, same metric set).  Its :class:`Comparison` renders the
readable table the golden test and ``repro eval compare`` print.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro import __version__

SCHEMA_VERSION = 1
REPORT_KIND = "repro-eval-report"

#: Absolute tolerance applied to a metric unless one is given explicitly.
DEFAULT_TOLERANCE = 1e-9


def dataset_fingerprint(store) -> str:
    """sha256 over a store's per-sample content hashes, in dataset order.

    Pinning the *content* (not file bytes) means a re-sharded or merged
    copy of the same samples fingerprints identically, while any change
    to any sample changes the fingerprint.
    """
    hasher = hashlib.sha256()
    for sample_hash in store.sample_hashes:
        hasher.update(sample_hash.encode())
    return hasher.hexdigest()


def build_report(*, dataset: dict, split: dict, model: dict, params: dict,
                 metrics: dict[str, float],
                 per_design: dict[str, dict[str, float]]) -> dict:
    """Assemble the report document (plain JSON-ready dict)."""
    return {
        "kind": REPORT_KIND,
        "schema_version": SCHEMA_VERSION,
        "generated_by": f"repro {__version__}",
        "dataset": dataset,
        "split": split,
        "model": model,
        "params": params,
        "metrics": metrics,
        "per_design": per_design,
    }


def render_report(report: dict) -> str:
    """The canonical byte representation: sorted keys, 2-space indent."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def write_report(path: str | Path, report: dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report(report))


def load_report(path: str | Path) -> dict:
    report = json.loads(Path(path).read_text())
    if report.get("kind") != REPORT_KIND:
        raise ValueError(f"{path} is not an eval report "
                         f"(kind={report.get('kind')!r})")
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported report schema {version!r} "
                         f"(expected {SCHEMA_VERSION})")
    return report


@dataclass(frozen=True)
class MetricDiff:
    """One metric's comparison line."""

    name: str
    value_a: float | None
    value_b: float | None
    tolerance: float
    ok: bool

    @property
    def delta(self) -> float | None:
        if self.value_a is None or self.value_b is None:
            return None
        return self.value_b - self.value_a

    def format(self) -> str:
        status = "ok   " if self.ok else "DRIFT"
        if self.delta is None:
            missing = "A" if self.value_a is None else "B"
            return f"  {status} {self.name:<24} missing from report {missing}"
        return (f"  {status} {self.name:<24} "
                f"{self.value_a:+.6f} -> {self.value_b:+.6f}  "
                f"(delta {self.delta:+.2e}, tol {self.tolerance:.1e})")


@dataclass
class Comparison:
    """The outcome of diffing two reports."""

    diffs: list[MetricDiff] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems and all(diff.ok for diff in self.diffs)

    @property
    def drifted(self) -> list[MetricDiff]:
        return [diff for diff in self.diffs if not diff.ok]

    def format(self) -> str:
        lines = [diff.format() for diff in self.diffs]
        lines.extend(f"  FAIL  {problem}" for problem in self.problems)
        verdict = ("ok: all metrics within tolerance" if self.ok else
                   f"drift: {len(self.drifted)} metric(s) out of tolerance, "
                   f"{len(self.problems)} structural problem(s)")
        return "\n".join(lines + [verdict])


def compare_reports(report_a: dict, report_b: dict,
                    tolerances: dict[str, float] | None = None,
                    default_tolerance: float = DEFAULT_TOLERANCE,
                    require_same_data: bool = True) -> Comparison:
    """Per-metric diff of two reports with explicit tolerances.

    A metric drifts when ``|b - a|`` exceeds its tolerance (from
    ``tolerances``, else ``default_tolerance``).  Structural mismatches —
    a metric present in only one report, different sample counts, or
    (unless ``require_same_data`` is off, for cross-dataset comparisons)
    different dataset fingerprints — are failures too: they mean the two
    reports do not measure the same thing.
    """
    tolerances = dict(tolerances or {})
    comparison = Comparison()

    if require_same_data:
        fp_a = report_a.get("dataset", {}).get("fingerprint")
        fp_b = report_b.get("dataset", {}).get("fingerprint")
        if fp_a != fp_b:
            comparison.problems.append(
                f"dataset fingerprints differ ({str(fp_a)[:12]}... vs "
                f"{str(fp_b)[:12]}...): not the same data")
    count_a = report_a.get("split", {}).get("num_samples")
    count_b = report_b.get("split", {}).get("num_samples")
    if count_a != count_b:
        comparison.problems.append(
            f"evaluated sample counts differ ({count_a} vs {count_b})")

    metrics_a = report_a.get("metrics", {})
    metrics_b = report_b.get("metrics", {})
    for name in sorted(set(metrics_a) | set(metrics_b)):
        value_a = metrics_a.get(name)
        value_b = metrics_b.get(name)
        tolerance = tolerances.pop(name, default_tolerance)
        if value_a is None or value_b is None:
            comparison.diffs.append(MetricDiff(
                name=name, value_a=value_a, value_b=value_b,
                tolerance=tolerance, ok=False))
            continue
        ok = abs(float(value_b) - float(value_a)) <= tolerance
        comparison.diffs.append(MetricDiff(
            name=name, value_a=float(value_a), value_b=float(value_b),
            tolerance=tolerance, ok=ok))
    for leftover in sorted(tolerances):
        comparison.problems.append(
            f"tolerance given for unknown metric {leftover!r}")
    return comparison
