"""Evaluation platform: metric registry, streaming runner, golden reports.

The paper judges forecasts with image-level error between painted and
ground-truth heat maps (Section 5.1); follow-up work adds hotspot-level
detection metrics (LHNN, DAC'22) and cross-design generalization splits.
This package is the single place that answers "did this change make the
model better or worse?":

* :mod:`repro.eval.metrics` — batched, vectorized metrics over
  ``(N, C, H, W)`` arrays (NRMS, MAE/RMSE, SSIM, hotspot
  precision/recall/IoU, ROC/AUC) behind a named registry.
* :mod:`repro.eval.runner`  — streams shards from a
  :class:`~repro.data.store.ShardedStore` (one-shard residency, optional
  shard-parallel workers), forecasts with any serve-registry checkpoint
  or non-learned baseline, and folds per-sample values deterministically.
* :mod:`repro.eval.report`  — byte-stable JSON reports (dataset
  fingerprint + checkpoint identity, no timestamps) and the tolerance
  diff behind ``repro eval compare`` and the golden regression gate.

Exposed on the CLI as ``repro eval {run,compare,baselines}``.
"""

from repro.eval.metrics import (
    METRICS,
    Metric,
    aggregate,
    batched_accuracy,
    compute_per_sample,
    hotspot_iou,
    hotspot_precision,
    hotspot_recall,
    metric_suite,
    nrms,
    pixel_mae,
    pixel_rmse,
    roc_auc,
    roc_curve,
    ssim,
    utilization_map,
)
from repro.eval.report import (
    Comparison,
    MetricDiff,
    compare_reports,
    dataset_fingerprint,
    load_report,
    render_report,
    write_report,
)
from repro.eval.runner import (
    BASELINES,
    CheckpointForecaster,
    EvalResult,
    SplitSpec,
    evaluate_store,
    evaluation_report,
    make_baseline,
    parse_split,
)

__all__ = [
    "BASELINES",
    "Comparison",
    "CheckpointForecaster",
    "EvalResult",
    "METRICS",
    "Metric",
    "MetricDiff",
    "SplitSpec",
    "aggregate",
    "batched_accuracy",
    "compare_reports",
    "compute_per_sample",
    "dataset_fingerprint",
    "evaluate_store",
    "evaluation_report",
    "hotspot_iou",
    "hotspot_precision",
    "hotspot_recall",
    "load_report",
    "make_baseline",
    "metric_suite",
    "nrms",
    "parse_split",
    "pixel_mae",
    "pixel_rmse",
    "render_report",
    "roc_auc",
    "roc_curve",
    "ssim",
    "utilization_map",
    "write_report",
]
