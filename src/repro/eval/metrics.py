"""Batched image-quality metrics and the metric registry.

Every metric here evaluates a batch of forecast heat maps against ground
truth in one vectorized pass over ``(N, C, H, W)`` arrays of [0, 1] image
values, returning one float64 value *per sample* — the registry's
contract, which is what makes per-sample breakdowns, deterministic
aggregation across shards, and the batched-vs-loop equality property all
fall out of the same code path.  A single ``(C, H, W)`` image is accepted
everywhere and returns a plain float.

Metrics:

* :func:`pixel_mae` / :func:`pixel_rmse` — plain pixel error.
* :func:`nrms` — the paper's image-level error: RMS error normalized by
  the ground-truth dynamic range.  A zero-variance (flat) target makes
  the conventional normalizer 0/0; here the normalizer falls back to 1
  so a flat target scores its raw RMS error instead of NaN.
* :func:`batched_accuracy` — the paper's per-pixel accuracy (worst
  channel within 16/255), vectorized over the batch.
* :func:`ssim` — mean local SSIM over a uniform window (integral-image
  window sums, so the batch dimension stays vectorized).
* :func:`hotspot_precision` / :func:`hotspot_recall` /
  :func:`hotspot_iou` — hotspot detection quality after binarizing the
  *decoded utilization* (see :func:`utilization_map`) at a congestion
  threshold.  Empty hotspot sets take their limit values (no predicted
  and no true hotspots agree perfectly) instead of dividing by zero.
* :func:`roc_auc` — threshold-sweep ROC area for hotspot detection.
  Single-class targets (no hotspot pixels, or all pixels hot) admit no
  ranking error, so they score 1.0 by convention.

:func:`metric_suite` assembles a named, ordered suite of parameter-bound
metrics — the registry that :mod:`repro.eval.runner` iterates and that
``METRICS`` instantiates with the default thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.gan.metrics import DEFAULT_TOLERANCE
from repro.viz.colors import COLOR_SCHEME, decode_utilization

#: Paper tolerance for per-pixel accuracy: 16 8-bit steps (the same
#: constant :func:`repro.gan.metrics.per_pixel_accuracy` uses, imported
#: so the two can never drift apart).
ACCURACY_TOLERANCE = DEFAULT_TOLERANCE

#: Default congestion thresholds for the hotspot metrics.
DEFAULT_THRESHOLDS = (0.5, 0.7)

#: Default target threshold for the ROC sweep.
DEFAULT_ROC_THRESHOLD = 0.5

#: Prediction thresholds swept for the ROC curve (ascending, in [0, 1]).
NUM_ROC_THRESHOLDS = 33

#: SSIM constants for a data range of 1.0 (the standard K1/K2).
_SSIM_C1 = 0.01 ** 2
_SSIM_C2 = 0.03 ** 2
DEFAULT_SSIM_WINDOW = 7


def _as_batch(pred: np.ndarray, target: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray, bool]:
    """Promote to float64 ``(N, C, H, W)``; remember if input was single."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(
            f"shape mismatch: prediction {pred.shape} vs target "
            f"{target.shape}")
    if pred.ndim == 3:
        return pred[None], target[None], True
    if pred.ndim != 4:
        raise ValueError(
            f"expected (C, H, W) or (N, C, H, W) arrays, got {pred.shape}")
    return pred, target, False


def _per_sample(values: np.ndarray, single: bool) -> np.ndarray | float:
    values = np.asarray(values, dtype=np.float64)
    return float(values[0]) if single else values


# -- pixel-error metrics ---------------------------------------------------


def pixel_mae(pred: np.ndarray, target: np.ndarray) -> np.ndarray | float:
    """Mean absolute pixel error over channels and pixels."""
    pred, target, single = _as_batch(pred, target)
    return _per_sample(np.abs(pred - target).mean(axis=(1, 2, 3)), single)


def pixel_rmse(pred: np.ndarray, target: np.ndarray) -> np.ndarray | float:
    """Root-mean-square pixel error over channels and pixels."""
    pred, target, single = _as_batch(pred, target)
    mse = np.square(pred - target).mean(axis=(1, 2, 3))
    return _per_sample(np.sqrt(mse), single)


def nrms(pred: np.ndarray, target: np.ndarray) -> np.ndarray | float:
    """RMS error normalized by the target's dynamic range (the paper's
    image-level NRMS).

    ``NRMS = RMSE / (max(target) - min(target))`` per sample.  A flat
    (zero-variance) target has no range to normalize by; the normalizer
    falls back to 1.0 so the metric degrades to the raw RMS error rather
    than dividing by zero.
    """
    pred, target, single = _as_batch(pred, target)
    mse = np.square(pred - target).mean(axis=(1, 2, 3))
    spread = (target.max(axis=(1, 2, 3)) - target.min(axis=(1, 2, 3)))
    normalizer = np.where(spread > 0, spread, 1.0)
    return _per_sample(np.sqrt(mse) / normalizer, single)


def batched_accuracy(pred: np.ndarray, target: np.ndarray,
                     tolerance: float = ACCURACY_TOLERANCE
                     ) -> np.ndarray | float:
    """The paper's per-pixel accuracy, vectorized over the batch.

    A pixel counts as correct when its worst channel is within
    ``tolerance``; per sample this equals
    :func:`repro.gan.metrics.per_pixel_accuracy`.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    pred, target, single = _as_batch(pred, target)
    worst = np.abs(pred - target).max(axis=1)
    return _per_sample((worst <= tolerance).mean(axis=(1, 2)), single)


# -- SSIM ------------------------------------------------------------------


def _axis_box_sums(a: np.ndarray, window: int, axis: int) -> np.ndarray:
    """Sums over every ``window``-long run along one axis.

    Accumulated as ``window`` shifted-slice adds in a fixed order —
    elementwise ufunc work, so the result is bitwise identical whether
    the leading batch axis holds 1 sample or 64 (no BLAS blocking or
    reduction-tree dependence on batch size).
    """
    stop = a.shape[axis] - window + 1
    index = [slice(None)] * a.ndim
    index[axis] = slice(0, stop)
    out = a[tuple(index)].copy()
    for offset in range(1, window):
        index[axis] = slice(offset, offset + stop)
        out += a[tuple(index)]
    return out


def _window_sums(a: np.ndarray, window: int) -> np.ndarray:
    """Sums over every valid ``window x window`` patch of (N, C, H, W)."""
    return _axis_box_sums(_axis_box_sums(a, window, -1), window, -2)


def ssim(pred: np.ndarray, target: np.ndarray,
         window: int = DEFAULT_SSIM_WINDOW) -> np.ndarray | float:
    """Mean structural similarity over uniform local windows.

    The standard SSIM formula with a ``window x window`` box filter
    (uniform, not gaussian, so the SSIM map is exactly equivariant under
    dihedral transforms of the image pair) and a data range of 1.0.  The
    window shrinks to the image when the image is smaller.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    pred, target, single = _as_batch(pred, target)
    window = min(window, pred.shape[2], pred.shape[3])
    area = np.float32(window * window)
    # The window statistics run in float32 over one stack of the five
    # moment planes: elementwise ufunc work, so batched and per-sample
    # passes stay bitwise equal, at half the memory traffic of float64
    # (SSIM is the bandwidth-bound metric of the suite).  The [0, 1]
    # data range keeps float32 ample for 7x7 window moments.
    pred32 = pred.astype(np.float32)
    target32 = target.astype(np.float32)
    channels = pred.shape[1]
    planes = np.concatenate(
        [pred32, target32, pred32 * pred32, target32 * target32,
         pred32 * target32], axis=1)
    sums = _window_sums(planes, window) / area
    mu_p, mu_t, e_pp, e_tt, e_pt = (
        sums[:, i * channels:(i + 1) * channels] for i in range(5))
    # Var/cov via E[xy] - E[x]E[y]; clip tiny negative rounding residue.
    var_p = np.clip(e_pp - mu_p * mu_p, 0.0, None)
    var_t = np.clip(e_tt - mu_t * mu_t, 0.0, None)
    cov = e_pt - mu_p * mu_t
    c1, c2 = np.float32(_SSIM_C1), np.float32(_SSIM_C2)
    numerator = (2.0 * mu_p * mu_t + c1) * (2.0 * cov + c2)
    denominator = ((mu_p * mu_p + mu_t * mu_t + c1)
                   * (var_p + var_t + c2))
    ssim_map = (numerator / denominator).astype(np.float64)
    return _per_sample(ssim_map.mean(axis=(1, 2, 3)), single)


# -- hotspot detection -----------------------------------------------------


def utilization_map(images: np.ndarray) -> np.ndarray:
    """Per-pixel scalar congestion from a batch of heat-map images.

    Three-channel images are decoded through the paper's yellow-to-purple
    gradient (:func:`repro.viz.colors.decode_utilization`); other channel
    counts fall back to the channel mean.
    """
    images = np.asarray(images, dtype=np.float64)
    if images.ndim not in (3, 4):
        raise ValueError(f"expected (C, H, W) or (N, C, H, W), got "
                         f"{images.shape}")
    if images.shape[-3] == 3:
        return decode_utilization(
            np.moveaxis(images, -3, -1), COLOR_SCHEME).astype(np.float64)
    return images.mean(axis=-3)


#: Identity-keyed memo of the two most recent utilization decodes.
#: ``compute_per_sample`` hands every metric the *same* float64 batch,
#: so the seven hotspot/ROC entries of the default suite share two
#: decodes per batch instead of paying one each.  Values are recomputed
#: identically on any miss, so results never depend on cache state.
_UTIL_MEMO: list[tuple[np.ndarray, np.ndarray]] = []


def _memo_utilization(images: np.ndarray) -> np.ndarray:
    for cached, decoded in _UTIL_MEMO:
        if cached is images:
            return decoded
    decoded = utilization_map(images)
    _UTIL_MEMO.append((images, decoded))
    del _UTIL_MEMO[:-2]
    return decoded


def _hotspot_counts(pred: np.ndarray, target: np.ndarray, threshold: float
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, bool]:
    """(intersection, predicted, true) hotspot pixel counts per sample."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    pred, target, single = _as_batch(pred, target)
    hot_pred = _memo_utilization(pred) >= threshold
    hot_true = _memo_utilization(target) >= threshold
    intersection = (hot_pred & hot_true).sum(axis=(1, 2))
    return (intersection, hot_pred.sum(axis=(1, 2)),
            hot_true.sum(axis=(1, 2)), single)


def _safe_ratio(numerator: np.ndarray, denominator: np.ndarray,
                empty_value: np.ndarray | float) -> np.ndarray:
    """numerator / denominator with ``empty_value`` where denominator == 0."""
    out = np.where(denominator > 0,
                   numerator / np.maximum(denominator, 1), empty_value)
    return out.astype(np.float64)


def hotspot_precision(pred: np.ndarray, target: np.ndarray,
                      threshold: float = 0.5) -> np.ndarray | float:
    """Fraction of predicted hotspot pixels that are truly hot.

    With no predicted hotspots the precision is 1.0 when the truth has no
    hotspots either (nothing was missed by staying silent) and 0.0 when
    it does — never a ZeroDivisionError.
    """
    inter, n_pred, n_true, single = _hotspot_counts(pred, target, threshold)
    empty = np.where(n_true == 0, 1.0, 0.0)
    return _per_sample(_safe_ratio(inter, n_pred, empty), single)


def hotspot_recall(pred: np.ndarray, target: np.ndarray,
                   threshold: float = 0.5) -> np.ndarray | float:
    """Fraction of true hotspot pixels the prediction flags.

    With no true hotspots there is nothing to find, so the recall is 1.0.
    """
    inter, _, n_true, single = _hotspot_counts(pred, target, threshold)
    return _per_sample(_safe_ratio(inter, n_true, 1.0), single)


def hotspot_iou(pred: np.ndarray, target: np.ndarray,
                threshold: float = 0.5) -> np.ndarray | float:
    """Intersection-over-union of predicted and true hotspot pixels.

    Two empty hotspot sets coincide exactly, so their IoU is 1.0.
    """
    inter, n_pred, n_true, single = _hotspot_counts(pred, target, threshold)
    union = n_pred + n_true - inter
    return _per_sample(_safe_ratio(inter, union, 1.0), single)


def roc_curve(pred: np.ndarray, target: np.ndarray,
              target_threshold: float = DEFAULT_ROC_THRESHOLD,
              num_thresholds: int = NUM_ROC_THRESHOLDS
              ) -> tuple[np.ndarray, np.ndarray]:
    """Hotspot-detection ROC points from a prediction-threshold sweep.

    The target's utilization map is binarized once at
    ``target_threshold``; the prediction's is swept over
    ``num_thresholds`` ascending thresholds in [0, 1].  Returns
    ``(fpr, tpr)`` arrays of shape (N, num_thresholds + 1) — the sweep
    points plus the (0, 0) endpoint — ordered along the sweep.  Samples
    whose target is single-class have no defined rates; their rows are
    the perfect curve (TPR 1 at every swept threshold, so the area is
    exactly 1 — see :func:`roc_auc`).
    """
    if num_thresholds < 2:
        raise ValueError(f"num_thresholds must be >= 2, got {num_thresholds}")
    pred, target, _ = _as_batch(pred, target)
    n = pred.shape[0]
    u_pred = _memo_utilization(pred).reshape(n, -1)
    hot = _memo_utilization(target).reshape(n, -1) >= target_threshold
    pixels = u_pred.shape[1]
    positives = hot.sum(axis=1)
    negatives = pixels - positives

    # One histogram sweep instead of an (N, T, P) comparison cube: a
    # pixel's "level" is how many thresholds sit at or below its value,
    # so it is flagged at threshold j exactly when level > j, and the
    # per-threshold counts are reverse cumulative histograms.  All
    # integer arithmetic — batched and per-sample runs agree bitwise.
    sweep = np.linspace(0.0, 1.0, num_thresholds)
    level = np.searchsorted(sweep, u_pred.ravel(), side="right")
    flat = (np.repeat(np.arange(n), pixels) * (num_thresholds + 1)
            + level)
    bins = n * (num_thresholds + 1)
    pos_hist = np.bincount(flat[hot.ravel()], minlength=bins).reshape(
        n, num_thresholds + 1)
    all_hist = np.bincount(flat, minlength=bins).reshape(
        n, num_thresholds + 1)
    tp = positives[:, None] - pos_hist.cumsum(axis=1)[:, :num_thresholds]
    flagged = pixels - all_hist.cumsum(axis=1)[:, :num_thresholds]
    fp = flagged - tp

    degenerate = (positives == 0) | (negatives == 0)
    tpr = tp / np.maximum(positives, 1)[:, None]
    fpr = fp / np.maximum(negatives, 1)[:, None]
    # Perfect curve for single-class targets: TPR 1 across the sweep
    # while FPR descends 1 -> 0, closing at (0, 0) with zero width.
    tpr[degenerate] = 1.0
    fpr[degenerate] = 1.0 - sweep
    zeros = np.zeros((pred.shape[0], 1))
    return (np.concatenate([fpr, zeros], axis=1),
            np.concatenate([tpr, zeros], axis=1))


def roc_auc(pred: np.ndarray, target: np.ndarray,
            target_threshold: float = DEFAULT_ROC_THRESHOLD,
            num_thresholds: int = NUM_ROC_THRESHOLDS) -> np.ndarray | float:
    """Area under the hotspot-detection ROC curve (trapezoidal).

    Single-class targets (no hot pixels, or nothing but hot pixels) admit
    no ranking error, so they score 1.0 by convention — a defined value
    instead of the 0/0 a naive rate computation produces.
    """
    _, _, single = _as_batch(pred, target)
    fpr, tpr = roc_curve(pred, target, target_threshold=target_threshold,
                         num_thresholds=num_thresholds)
    # fpr descends along the sweep; trapezoids over adjacent points.
    widths = fpr[:, :-1] - fpr[:, 1:]
    heights = 0.5 * (tpr[:, :-1] + tpr[:, 1:])
    return _per_sample((widths * heights).sum(axis=1), single)


# -- the registry ----------------------------------------------------------


@dataclass(frozen=True)
class Metric:
    """One named, parameter-bound metric over ``(N, C, H, W)`` batches."""

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    description: str
    higher_is_better: bool = True

    def __call__(self, pred: np.ndarray, target: np.ndarray
                 ) -> np.ndarray | float:
        return self.fn(pred, target)


def metric_suite(thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
                 roc_threshold: float = DEFAULT_ROC_THRESHOLD,
                 ssim_window: int = DEFAULT_SSIM_WINDOW
                 ) -> dict[str, Metric]:
    """The ordered suite of registered metrics at the given parameters.

    Threshold-parameterized metrics get one entry per threshold, named
    ``hotspot_precision@0.5``-style so two reports evaluated at different
    thresholds never silently compare.
    """
    suite: dict[str, Metric] = {}

    def add(name: str, fn, description: str,
            higher_is_better: bool = True) -> None:
        suite[name] = Metric(name=name, fn=fn, description=description,
                             higher_is_better=higher_is_better)

    add("accuracy", batched_accuracy,
        "paper per-pixel accuracy (worst channel within 16/255)")
    add("mae", pixel_mae, "mean absolute pixel error",
        higher_is_better=False)
    add("rmse", pixel_rmse, "root-mean-square pixel error",
        higher_is_better=False)
    add("nrms", nrms, "RMS error normalized by target dynamic range",
        higher_is_better=False)
    add("ssim", ssim,
        f"mean local SSIM (uniform {ssim_window}x{ssim_window} window)",
        higher_is_better=True)
    for threshold in thresholds:
        tag = f"{threshold:g}"

        def bind(fn, threshold=threshold):
            return lambda pred, target: fn(pred, target,
                                           threshold=threshold)

        add(f"hotspot_precision@{tag}", bind(hotspot_precision),
            f"precision of hotspot pixels at utilization >= {tag}")
        add(f"hotspot_recall@{tag}", bind(hotspot_recall),
            f"recall of hotspot pixels at utilization >= {tag}")
        add(f"hotspot_iou@{tag}", bind(hotspot_iou),
            f"IoU of hotspot pixels at utilization >= {tag}")
    roc_tag = f"{roc_threshold:g}"
    add(f"roc_auc@{roc_tag}",
        lambda pred, target: roc_auc(pred, target,
                                     target_threshold=roc_threshold),
        f"threshold-sweep ROC area for hotspots at >= {roc_tag}")
    return suite


#: The default registry (paper accuracy + pixel errors + SSIM + hotspot
#: metrics at the default thresholds).
METRICS: dict[str, Metric] = metric_suite()


def compute_per_sample(pred: np.ndarray, target: np.ndarray,
                       metrics: dict[str, Metric] | None = None
                       ) -> dict[str, np.ndarray]:
    """Every metric's per-sample values for one ``(N, C, H, W)`` batch."""
    metrics = metrics if metrics is not None else METRICS
    pred, target, _ = _as_batch(pred, target)
    return {name: np.asarray(metric(pred, target), dtype=np.float64)
            for name, metric in metrics.items()}


def aggregate(per_sample: dict[str, np.ndarray]) -> dict[str, float]:
    """Mean per-sample value per metric (the report's headline numbers)."""
    return {name: float(np.mean(values))
            for name, values in per_sample.items()}
