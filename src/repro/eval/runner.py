"""Streaming evaluation driver: shards in, deterministic reports out.

The runner streams a :class:`~repro.data.store.ShardedStore` one shard at
a time (the PR-2 memory discipline), forecasts each batch with any
checkpoint or baseline, and folds per-sample metric values in manifest
order — so the same store and model always produce the same report,
byte for byte, serial or parallel.

* **Forecasters** — anything with ``forecast_images(x) -> (N, H, W, 3)``
  in [0, 1]: :class:`CheckpointForecaster` adapts a
  :class:`~repro.gan.pix2pix.Pix2Pix` checkpoint (resolved through the
  serve registry's loader, so eval and serving agree on checkpoint
  identity), and the :data:`BASELINES` from :mod:`repro.gan.baselines`
  give the non-learned reference points.
* **Splits** — ``all``, ``design:<name>`` (one design's samples), and
  ``holdout:<name>`` (the leave-one-design-out cross-generalization
  split: evaluate on one design, keyed off the manifest's design
  provenance, with the remaining designs recorded as the training side).
* **Parallelism** — ``workers > 1`` fans whole shards over a process
  pool; each worker reopens the store and reloads the checkpoint, and
  results are folded in shard order, so an N-worker run is byte-identical
  to a serial one.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.loader import shard_eval_arrays
from repro.obs.trace import get_tracer
from repro.data.store import ShardedStore
from repro.eval.metrics import (
    DEFAULT_ROC_THRESHOLD,
    DEFAULT_THRESHOLDS,
    Metric,
    aggregate,
    compute_per_sample,
    metric_suite,
)
from repro.eval.report import build_report, dataset_fingerprint
from repro.gan.baselines import MeanTargetBaseline, PlacementCopyBaseline
from repro.gan.dataset import from_unit_range

DEFAULT_BATCH_SIZE = 16


# -- split policies --------------------------------------------------------


@dataclass(frozen=True)
class SplitSpec:
    """Which samples to evaluate, keyed off manifest design provenance."""

    policy: str = "all"          # "all" | "design" | "holdout"
    design: str | None = None

    def evaluated_designs(self, all_designs: list[str]) -> list[str] | None:
        """Designs whose samples are evaluated; ``None`` means every one."""
        if self.policy == "all":
            return None
        if self.design not in all_designs:
            known = ", ".join(sorted(all_designs)) or "<none>"
            raise ValueError(f"design {self.design!r} not in store "
                             f"(designs: {known})")
        if self.policy == "holdout" and len(all_designs) < 2:
            raise ValueError(
                "holdout split needs at least two designs in the store "
                "(one held out, the rest as the training side)")
        return [self.design]

    def train_designs(self, all_designs: list[str]) -> list[str] | None:
        """The training-side designs a holdout split implies."""
        if self.policy != "holdout":
            return None
        return sorted(d for d in all_designs if d != self.design)

    def describe(self, all_designs: list[str]) -> dict:
        evaluated = self.evaluated_designs(all_designs)
        description = {
            "policy": self.policy,
            "design": self.design,
            "designs": sorted(evaluated if evaluated is not None
                              else all_designs),
        }
        train = self.train_designs(all_designs)
        if train is not None:
            description["train_designs"] = train
        return description


def parse_split(spec: str) -> SplitSpec:
    """Parse ``all``, ``design:<name>``, or ``holdout:<name>``."""
    if spec == "all":
        return SplitSpec()
    for policy in ("design", "holdout"):
        prefix = f"{policy}:"
        if spec.startswith(prefix) and len(spec) > len(prefix):
            return SplitSpec(policy=policy, design=spec[len(prefix):])
    raise ValueError(f"bad split {spec!r}: expected 'all', "
                     f"'design:<name>', or 'holdout:<name>'")


# -- forecasters -----------------------------------------------------------


class CheckpointForecaster:
    """A :class:`Pix2Pix` checkpoint behind the eval forecaster protocol."""

    def __init__(self, model, identity: dict,
                 inference_mode: str = "float32"):
        self.model = model
        self.identity = dict(identity)
        self.inference_mode = inference_mode
        if inference_mode != "float32":
            # Mark lossy variants in the report identity so an int8
            # report can never pass as the float32 reference; float32
            # identities (and their golden fingerprints) are unchanged.
            self.identity["inference_mode"] = inference_mode
            model.set_inference_mode(inference_mode)

    @classmethod
    def from_checkpoint(cls, path, inference_mode: str = "float32"
                        ) -> "CheckpointForecaster":
        """Load one checkpoint file (same loader the serve registry uses)."""
        from repro.serve.registry import load_checkpoint

        model, info = load_checkpoint(path)
        return cls(model, _checkpoint_identity(info),
                   inference_mode=inference_mode)

    @classmethod
    def from_registry(cls, registry, model_id: str,
                      inference_mode: str = "float32"
                      ) -> "CheckpointForecaster":
        """Wrap a model already warm-loaded in a serve ModelRegistry."""
        return cls(registry.get(model_id),
                   _checkpoint_identity(registry.info(model_id)),
                   inference_mode=inference_mode)

    def forecast_images(self, x: np.ndarray) -> np.ndarray:
        """Deterministic (noise-free) forecasts as (N, H, W, 3) in [0, 1].

        Runs the generator's fused ``forward_eval`` path (no gradient
        caches, workspace-arena scratch) — bitwise-equal to an eval-mode
        ``forward``, so reports stay byte-stable across the two routes.
        """
        return self.model.forecast(x, sample_noise=False)

    def warm(self, batch_size: int) -> "CheckpointForecaster":
        """Preallocate the model's workspace at the eval batch width.

        One dummy forward grows the arena to its steady-state footprint so
        no shard pays the first-call allocation cost (used by the parallel
        runner's worker initializer).
        """
        cfg = self.model.config
        self.forecast_images(np.zeros(
            (batch_size, cfg.input_channels, cfg.image_size,
             cfg.image_size), dtype=np.float32))
        return self


def _checkpoint_identity(info) -> dict:
    return {
        "kind": "checkpoint",
        "id": info.model_id,
        "path": info.path,
        "checksum": info.checksum,
        "image_size": info.image_size,
        "num_parameters": info.num_parameters,
    }


#: Non-learned reference forecasters, by CLI name.  Each factory takes
#: ``(store, train_designs)`` — the designs a fair baseline may learn
#: from (``None`` = all; the holdout split passes the training side).
BASELINES: dict[str, Callable] = {
    "placement-copy": lambda store, train_designs: PlacementCopyBaseline(),
    "mean-target": lambda store, train_designs: MeanTargetBaseline.fit(
        store.iter_samples(), designs=train_designs),
}


def make_baseline(name: str, store: ShardedStore,
                  split: SplitSpec) -> tuple[object, dict]:
    """Instantiate a named baseline plus its report identity."""
    try:
        factory = BASELINES[name]
    except KeyError:
        known = ", ".join(sorted(BASELINES))
        raise ValueError(f"unknown baseline {name!r}; "
                         f"choose from: {known}") from None
    train_designs = split.train_designs(store.designs)
    baseline = factory(store, train_designs)
    identity = {"kind": "baseline", "id": f"baseline:{name}"}
    if train_designs is not None:
        identity["fit_designs"] = train_designs
    return baseline, identity


# -- the evaluation loop ---------------------------------------------------


@dataclass
class EvalResult:
    """Per-sample metric values in manifest order, plus provenance."""

    per_sample: dict[str, np.ndarray] = field(default_factory=dict)
    designs: list[str] = field(default_factory=list)
    #: Wall seconds per evaluated shard, in shard order.  Observational
    #: only — deliberately excluded from :func:`evaluation_report`, whose
    #: bytes must not depend on machine speed.
    shard_seconds: list[float] = field(default_factory=list)

    @property
    def num_samples(self) -> int:
        return len(self.designs)

    def metrics(self) -> dict[str, float]:
        return aggregate(self.per_sample)

    def per_design(self) -> dict[str, dict[str, float]]:
        designs = np.asarray(self.designs)
        breakdown = {}
        for design in sorted(set(self.designs)):
            mask = designs == design
            breakdown[design] = {
                name: float(np.mean(values[mask]))
                for name, values in self.per_sample.items()}
        return breakdown


def _eval_shard(store: ShardedStore, shard_index: int, forecaster,
                metrics: dict[str, Metric], designs: list[str] | None,
                batch_size: int) -> tuple[list[str], dict[str, np.ndarray]]:
    """Evaluate one shard: the unit both serial and parallel paths share."""
    shard_designs: list[str] = []
    parts: dict[str, list[np.ndarray]] = {name: [] for name in metrics}
    for x, y, batch_designs in shard_eval_arrays(
            store, shard_index, batch_size=batch_size, designs=designs):
        pred = np.moveaxis(forecaster.forecast_images(x), -1, 1)
        target = from_unit_range(y)
        for name, values in compute_per_sample(pred, target,
                                               metrics).items():
            parts[name].append(values)
        shard_designs.extend(batch_designs)
    folded = {name: (np.concatenate(chunks) if chunks
                     else np.zeros(0, dtype=np.float64))
              for name, chunks in parts.items()}
    return shard_designs, folded


# Per-process evaluation context, built once by the pool initializer.
_EVAL_WORKER: dict = {}


def _init_eval_worker(store_root: str, checkpoint: str,
                      thresholds: tuple, roc_threshold: float,
                      designs: list[str] | None, batch_size: int,
                      inference_mode: str = "float32") -> None:
    _EVAL_WORKER["store"] = ShardedStore.open(store_root)
    _EVAL_WORKER["forecaster"] = CheckpointForecaster.from_checkpoint(
        checkpoint, inference_mode=inference_mode).warm(batch_size)
    _EVAL_WORKER["metrics"] = metric_suite(thresholds=thresholds,
                                           roc_threshold=roc_threshold)
    _EVAL_WORKER["designs"] = designs
    _EVAL_WORKER["batch_size"] = batch_size


def _eval_shard_task(shard_index: int):
    assert _EVAL_WORKER, "pool initializer did not run"
    started = time.perf_counter()
    part = _eval_shard(
        _EVAL_WORKER["store"], shard_index, _EVAL_WORKER["forecaster"],
        _EVAL_WORKER["metrics"], _EVAL_WORKER["designs"],
        _EVAL_WORKER["batch_size"])
    return shard_index, part, time.perf_counter() - started


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def evaluate_store(store: ShardedStore, forecaster, *,
                   split: SplitSpec | None = None,
                   thresholds: tuple = DEFAULT_THRESHOLDS,
                   roc_threshold: float = DEFAULT_ROC_THRESHOLD,
                   batch_size: int = DEFAULT_BATCH_SIZE,
                   workers: int = 1) -> EvalResult:
    """Evaluate a forecaster over a store, one shard resident at a time.

    Shards are processed in manifest order and per-sample metric values
    folded in that same order, so the result is identical for any worker
    count.  ``workers > 1`` requires the forecaster to come from an
    on-disk checkpoint (each worker process reloads it); baselines and
    in-memory models evaluate serially.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    split = split if split is not None else SplitSpec()
    designs = split.evaluated_designs(store.designs)
    metrics = metric_suite(thresholds=thresholds,
                           roc_threshold=roc_threshold)

    if workers > 1:
        checkpoint = (forecaster.identity or {}).get("path") \
            if isinstance(forecaster, CheckpointForecaster) else None
        if not checkpoint:
            raise ValueError(
                "workers > 1 requires an on-disk checkpoint forecaster "
                "(each worker process reloads it); evaluate baselines "
                "and in-memory models with workers=1")
        with _pool_context().Pool(
                processes=workers, initializer=_init_eval_worker,
                initargs=(str(store.root), checkpoint, tuple(thresholds),
                          roc_threshold, designs, batch_size,
                          getattr(forecaster, "inference_mode", "float32"),
                          )) as pool:
            shard_parts = {}
            for index, part, seconds in pool.imap_unordered(
                    _eval_shard_task, range(store.num_shards)):
                shard_parts[index] = (part, seconds)
        ordered = [shard_parts[i][0] for i in range(store.num_shards)]
        shard_seconds = [shard_parts[i][1]
                         for i in range(store.num_shards)]
    else:
        tracer = get_tracer()
        ordered = []
        shard_seconds = []
        for index in range(store.num_shards):
            started = time.perf_counter()
            with tracer.span("eval.shard", shard=index):
                ordered.append(_eval_shard(store, index, forecaster,
                                           metrics, designs, batch_size))
            shard_seconds.append(time.perf_counter() - started)

    result = EvalResult()
    result.shard_seconds = shard_seconds
    for shard_designs, _ in ordered:
        result.designs.extend(shard_designs)
    result.per_sample = {
        name: np.concatenate([folded[name] for _, folded in ordered])
        if ordered else np.zeros(0, dtype=np.float64)
        for name in metrics}
    if result.num_samples == 0:
        raise ValueError("split selected no samples to evaluate")
    return result


def evaluation_report(store: ShardedStore, result: EvalResult,
                      identity: dict, split: SplitSpec | None = None, *,
                      thresholds: tuple = DEFAULT_THRESHOLDS,
                      roc_threshold: float = DEFAULT_ROC_THRESHOLD,
                      batch_size: int = DEFAULT_BATCH_SIZE) -> dict:
    """Assemble the deterministic report document for one evaluation."""
    split = split if split is not None else SplitSpec()
    split_info = split.describe(store.designs)
    split_info["num_samples"] = result.num_samples
    return build_report(
        dataset={
            "root": store.root.name,
            "fingerprint": dataset_fingerprint(store),
            "num_samples": store.num_samples,
            "designs": dict(store.manifest["designs"]),
            "image_size": store.image_size,
        },
        split=split_info,
        model=identity,
        params={
            "batch_size": batch_size,
            "thresholds": list(thresholds),
            "roc_threshold": roc_threshold,
        },
        metrics=result.metrics(),
        per_design=result.per_design(),
    )
