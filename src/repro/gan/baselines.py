"""Non-learned congestion-forecast baselines.

The paper's related work estimates congestion from placement features with
classic models; the standard non-learned reference is **RUDY** (Rectangular
Uniform wire DensitY, Spindler & Johannes, DATE'07): every net spreads
``q(t) * (w + h) / (w * h)`` demand uniformly over its bounding box, and the
per-channel demand map — normalized by channel capacity — approximates
routed utilization without running a router.

:class:`RudyForecaster` renders that estimate *in the paper's image space*
(the same yellow-to-purple painting over img_place) so it is directly
comparable with the cGAN through the same per-pixel-accuracy / Top-k
metrics.

Two further baselines speak the *sample* space (a stored ``Sample.x``
input stack, no netlist required), which is what ``repro eval baselines``
scores against checkpoints over a sharded store:

* :class:`PlacementCopyBaseline` — predict the routing heat map as the
  placement image itself (the paper's img_route is painted over
  img_place, so "nothing changes" is the natural floor).
* :class:`MeanTargetBaseline` — predict the mean ground-truth heat map
  of a training split; the strongest design-agnostic constant predictor
  and the reference point cross-design generalization must beat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.fpga.arch import FpgaArchitecture
from repro.gan.dataset import Sample, from_unit_range
from repro.fpga.netlist import Netlist
from repro.fpga.placement import Placement, crossing_count, net_bounding_box
from repro.viz.colors import COLOR_SCHEME, ColorScheme, utilization_to_rgb
from repro.viz.layout import FloorplanLayout
from repro.viz.render import render_placement


def rudy_map(netlist: Netlist, placement: Placement) -> np.ndarray:
    """RUDY demand per interior grid cell, shape (width+2, height+2).

    Demand is accumulated over each net's bounding box inclusive of its
    terminals' tiles; the q(t) crossing-count correction matches the
    placer's cost model.
    """
    arch = placement.arch
    demand = np.zeros((arch.width + 2, arch.height + 2))
    xs, ys = placement.xs, placement.ys
    for net in netlist.nets:
        xmin, xmax, ymin, ymax = net_bounding_box(xs, ys, net)
        w = xmax - xmin + 1
        h = ymax - ymin + 1
        density = crossing_count(net.fanout + 1) * (w + h) / (w * h)
        demand[xmin:xmax + 1, ymin:ymax + 1] += density
    return demand


def rudy_channel_utilization(netlist: Netlist, placement: Placement
                             ) -> tuple[np.ndarray, np.ndarray]:
    """RUDY estimates per channel segment.

    Returns ``(h_est, v_est)`` with the shapes of
    ``RoutingResult.h_utilization()`` / ``v_utilization()``: a channel
    segment's estimate is the mean cell demand of the tiles it borders,
    normalized by channel capacity.
    """
    arch = placement.arch
    demand = rudy_map(netlist, placement)
    capacity = float(arch.channel_width)

    h_est = np.zeros((arch.width, arch.height + 1))
    for x in range(1, arch.width + 1):
        for y in range(0, arch.height + 1):
            below = demand[x, y] if y >= 1 else 0.0
            above = demand[x, y + 1] if y + 1 <= arch.height else 0.0
            h_est[x - 1, y] = 0.5 * (below + above) / capacity

    v_est = np.zeros((arch.width + 1, arch.height))
    for x in range(0, arch.width + 1):
        for y in range(1, arch.height + 1):
            left = demand[x, y] if x >= 1 else 0.0
            right = demand[x + 1, y] if x + 1 <= arch.width else 0.0
            v_est[x, y - 1] = 0.5 * (left + right) / capacity
    return h_est, v_est


@dataclass
class RudyForecaster:
    """Paint a RUDY-estimated heat map in the paper's image space.

    ``calibration`` rescales raw RUDY estimates into utilization units;
    fit it on routed ground truth with :meth:`calibrate` (a single scalar —
    the least-squares gain between RUDY and routed utilization).
    """

    netlist: Netlist
    arch: FpgaArchitecture
    layout: FloorplanLayout
    calibration: float = 1.0
    scheme: ColorScheme = COLOR_SCHEME

    def calibrate(self, placements: list[Placement],
                  routed_utilizations: list[tuple[np.ndarray, np.ndarray]]
                  ) -> float:
        """Least-squares gain mapping RUDY estimates to routed utilization."""
        if len(placements) != len(routed_utilizations):
            raise ValueError("need one routed result per placement")
        num = 0.0
        den = 0.0
        for placement, (h_true, v_true) in zip(placements,
                                               routed_utilizations):
            h_est, v_est = rudy_channel_utilization(self.netlist, placement)
            est = np.concatenate([h_est.ravel(), v_est.ravel()])
            true = np.concatenate([h_true.ravel(), v_true.ravel()])
            num += float(est @ true)
            den += float(est @ est)
        self.calibration = num / den if den > 0 else 1.0
        return self.calibration

    def forecast(self, placement: Placement,
                 place_image: np.ndarray | None = None) -> np.ndarray:
        """The RUDY heat map as an (H, W, 3) image in [0, 1]."""
        if place_image is None:
            place_image = render_placement(placement, self.layout,
                                           self.scheme)
        image = place_image.copy()
        h_est, v_est = rudy_channel_utilization(self.netlist, placement)
        h_est = np.clip(h_est * self.calibration, 0.0, None)
        v_est = np.clip(v_est * self.calibration, 0.0, None)
        arch = self.arch
        for x in range(1, arch.width + 1):
            for y in range(0, arch.height + 1):
                x0, y0, x1, y1 = self.layout.hchan_rect(x, y)
                image[y0:y1, x0:x1] = utilization_to_rgb(
                    float(h_est[x - 1, y]), self.scheme)
        for x in range(0, arch.width + 1):
            for y in range(1, arch.height + 1):
                x0, y0, x1, y1 = self.layout.vchan_rect(x, y)
                image[y0:y1, x0:x1] = utilization_to_rgb(
                    float(v_est[x, y - 1]), self.scheme)
        return image

    def congestion_score(self, placement: Placement) -> float:
        """Mean calibrated RUDY utilization (for ranking placements)."""
        h_est, v_est = rudy_channel_utilization(self.netlist, placement)
        stacked = np.concatenate([h_est.ravel(), v_est.ravel()])
        return float(np.clip(stacked * self.calibration, 0, None).mean())


def _validate_input_batch(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 4 or x.shape[1] < 3:
        raise ValueError(
            f"expected (N, C>=3, H, W) input stacks, got {x.shape}")
    return x


class PlacementCopyBaseline:
    """Predict the heat map as the placement image embedded in the input.

    The input stack's first three channels are img_place in [-1, 1]; the
    forecast is that image unchanged — routing channels stay unpainted
    (white), so this is the "routing adds nothing" floor every learned
    model must beat.
    """

    name = "placement-copy"

    def forecast_images(self, x: np.ndarray) -> np.ndarray:
        """(N, H, W, 3) images in [0, 1] from (N, C, H, W) inputs."""
        x = _validate_input_batch(x)
        return from_unit_range(x[:, :3].transpose(0, 2, 3, 1))


class MeanTargetBaseline:
    """Predict the mean ground-truth heat map of a training split.

    Fit streams samples once (constant memory) and averages their target
    images; forecasting tiles that mean over the batch.  Fitting on the
    training designs of a leave-one-design-out split makes this the
    design-agnostic predictor a cross-generalizing model must beat.
    """

    name = "mean-target"

    def __init__(self, mean_image: np.ndarray):
        mean_image = np.asarray(mean_image, dtype=np.float32)
        if mean_image.ndim != 3 or mean_image.shape[-1] != 3:
            raise ValueError(
                f"mean image must be (H, W, 3), got {mean_image.shape}")
        self.mean_image = mean_image

    @classmethod
    def fit(cls, samples: Iterable[Sample],
            designs: list[str] | None = None) -> "MeanTargetBaseline":
        """Average the target images of ``samples`` (restricted to
        ``designs`` when given)."""
        wanted = set(designs) if designs is not None else None
        total = None
        count = 0
        for sample in samples:
            if wanted is not None and sample.design not in wanted:
                continue
            image = sample.y_image.astype(np.float64)
            total = image if total is None else total + image
            count += 1
        if count == 0:
            raise ValueError("no samples to fit the mean-target baseline")
        return cls((total / count).astype(np.float32))

    def forecast_images(self, x: np.ndarray) -> np.ndarray:
        """(N, H, W, 3) copies of the mean image, one per input."""
        x = _validate_input_batch(x)
        if self.mean_image.shape[:2] != x.shape[2:]:
            raise ValueError(
                f"mean image is {self.mean_image.shape[:2]}, inputs are "
                f"{x.shape[2:]}")
        return np.broadcast_to(
            self.mean_image, (x.shape[0],) + self.mean_image.shape).copy()
