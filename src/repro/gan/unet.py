"""U-Net generator with configurable skip connections (Figure 5, top).

The architecture follows pix2pix: an encoder of stride-2 4x4 convolutions
down to a 1x1 bottleneck, mirrored by transposed convolutions, with skip
connections concatenating each encoder activation onto the decoder
activation at the same resolution.  The paper's Section 5.3 ablation
compares three variants, selected here with ``skip_mode``:

* ``"all"``    — skips at every level (the paper's model),
* ``"single"`` — only the outermost skip (the RouteNet-style variant),
* ``"none"``   — a plain encoder-decoder.

For a 256x256 input with ``base_filters=64`` the encoder produces exactly
the feature maps printed in Figure 5: 128x128x64, 64x64x128, 32x32x256,
16x16x512, 8x8x512, 4x4x512, 2x2x512, 1x1x512.
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    BatchNorm2d,
    Concat,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    LeakyReLU,
    Module,
    ReLU,
    Sequential,
    Tanh,
)

SKIP_MODES = ("all", "single", "none")


def encoder_filters(image_size: int, base_filters: int) -> list[int]:
    """Filter counts per encoder level (doubling, capped at 8x base)."""
    if image_size < 8 or image_size & (image_size - 1):
        raise ValueError(f"image_size must be a power of two >= 8, "
                         f"got {image_size}")
    num_downs = int(np.log2(image_size))
    return [base_filters * min(2 ** level, 8) for level in range(num_downs)]


class UNetGenerator(Module):
    """Encoder-decoder generator G(x, z) with optional skip connections.

    The noise ``z`` enters through dropout in the decoder, as in pix2pix;
    running the generator in training mode at inference samples a different
    z per call.
    """

    def __init__(self, in_channels: int = 4, out_channels: int = 3,
                 image_size: int = 256, base_filters: int = 64,
                 skip_mode: str = "all", dropout: float = 0.5,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if skip_mode not in SKIP_MODES:
            raise ValueError(
                f"skip_mode must be one of {SKIP_MODES}, got {skip_mode!r}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.image_size = image_size
        self.skip_mode = skip_mode

        filters = encoder_filters(image_size, base_filters)
        self.filters = filters
        downs = len(filters)
        self.num_downs = downs

        # Encoder: block i maps resolution size/2^i -> size/2^(i+1).
        self.enc_blocks: list[Sequential] = []
        for i in range(downs):
            layers: list[Module] = []
            if i > 0:
                layers.append(LeakyReLU(0.2))
            layers.append(Conv2d(
                in_channels if i == 0 else filters[i - 1], filters[i],
                kernel=4, stride=2, pad=1, rng=rng))
            if 0 < i < downs - 1:
                layers.append(BatchNorm2d(filters[i]))
            self.enc_blocks.append(Sequential(*layers))

        # Decoder: stage j maps resolution 2^j -> 2^(j+1).
        self.dec_blocks: list[Sequential] = []
        self._skip_at: list[bool] = []
        self._concats: list[Concat | None] = []
        for j in range(downs):
            has_skip = self._stage_has_skip(j)
            self._skip_at.append(has_skip)
            self._concats.append(Concat() if has_skip else None)
            in_filters = filters[downs - 1] if j == 0 else filters[downs - 1 - j]
            if has_skip:
                in_filters *= 2
            is_final = j == downs - 1
            out_filters = out_channels if is_final else filters[downs - 2 - j]
            layers = [ReLU(), ConvTranspose2d(in_filters, out_filters,
                                              kernel=4, stride=2, pad=1,
                                              rng=rng)]
            if is_final:
                layers.append(Tanh())
            else:
                layers.append(BatchNorm2d(out_filters))
                if j < 3 and dropout > 0:
                    layers.append(Dropout(dropout, rng=rng))
            self.dec_blocks.append(Sequential(*layers))

        self._enc_acts: list[np.ndarray] | None = None

    def _stage_has_skip(self, stage: int) -> bool:
        """Whether decoder stage ``stage`` concatenates an encoder skip.

        Stage 0 consumes the bottleneck directly and never has one; the
        outermost stage (``num_downs - 1``) concatenates the first encoder
        activation.
        """
        if stage == 0:
            return False
        if self.skip_mode == "all":
            return True
        if self.skip_mode == "single":
            return stage == self.num_downs - 1
        return False

    # -- computation ---------------------------------------------------------

    def _check_input(self, x: np.ndarray) -> None:
        if x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {x.shape[1]}")
        if x.shape[2] != self.image_size or x.shape[3] != self.image_size:
            raise ValueError(
                f"expected {self.image_size}x{self.image_size} input, "
                f"got {x.shape[2]}x{x.shape[3]}")

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._check_input(x)
        enc_acts = []
        h = x
        for block in self.enc_blocks:
            h = block.forward(h)
            enc_acts.append(h)
        self._enc_acts = enc_acts

        d = enc_acts[-1]
        for j, block in enumerate(self.dec_blocks):
            if self._skip_at[j]:
                concat = self._concats[j]
                assert concat is not None
                d = concat.forward((d, enc_acts[self.num_downs - 1 - j]))
            d = block.forward(d)
        return d

    def forward_eval(self, x: np.ndarray) -> np.ndarray:
        """Fused inference pass (bitwise-equal to an eval-mode ``forward``).

        Every encoder/decoder block runs its conv + norm + activation
        through arena scratch with no gradient caches; skip activations
        stay untouched in their producers' buffers (the decoder-side
        activation runs in place only on the concat scratch it owns, never
        on an encoder activation a later skip still needs).  The final
        Tanh allocates, so the returned forecast is caller-owned.
        """
        self._check_input(x)
        enc_acts = []
        h = x
        for block in self.enc_blocks:
            h = block.forward_eval(h)
            enc_acts.append(h)

        d = enc_acts[-1]
        for j, block in enumerate(self.dec_blocks):
            owns_input = False
            if self._skip_at[j]:
                concat = self._concats[j]
                assert concat is not None
                d = concat.forward_eval((d, enc_acts[self.num_downs - 1 - j]))
                owns_input = True
            d = block.forward_eval(d, owns_input=owns_input)
        return d

    def backward(self, grad: np.ndarray,
                 need_input_grad: bool = True) -> np.ndarray | None:
        """Backpropagate through decoder and encoder.

        The training step discards the gradient with respect to the input
        image; ``need_input_grad=False`` lets the outermost encoder conv
        skip computing it (its input-gradient gemm and scatter are the
        largest in the network).
        """
        if self._enc_acts is None:
            raise RuntimeError("backward called before forward")
        downs = self.num_downs
        enc_grads: list[np.ndarray | None] = [None] * downs

        g = grad
        for j in reversed(range(downs)):
            g = self.dec_blocks[j].backward(g)
            if self._skip_at[j]:
                concat = self._concats[j]
                assert concat is not None
                g, skip_grad = concat.backward(g)
                level = downs - 1 - j
                if enc_grads[level] is None:
                    enc_grads[level] = skip_grad
                else:
                    enc_grads[level] = enc_grads[level] + skip_grad

        # g is now the gradient w.r.t. the bottleneck activation.
        if enc_grads[downs - 1] is None:
            enc_grads[downs - 1] = g
        else:
            enc_grads[downs - 1] = enc_grads[downs - 1] + g

        upstream = None
        for i in reversed(range(downs)):
            total = enc_grads[i]
            if upstream is not None:
                total = upstream if total is None else total + upstream
            upstream = self.enc_blocks[i].backward(
                total, need_input_grad=need_input_grad or i > 0)
        return upstream
