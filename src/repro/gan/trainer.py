"""Training facade: evaluation plus thin wrappers over the train loop.

Implements the paper's two training strategies (Section 5.1):

* **Strategy 1** — train on every design except the test design
  (leave-one-design-out; reported as Acc.1).
* **Strategy 2** — additionally fine-tune the strategy-1 model on a handful
  of pairs from the test design (transfer learning; reported as Acc.2, and
  the model used for the Top10 ranking results).

The epoch/step machinery lives in :mod:`repro.train.loop` (and the full
run lifecycle — run directories, exact resume, eval hooks, sweeps — in
:mod:`repro.train.runner`); this trainer keeps the per-step compute
(through the model's ``train_step``) and evaluation, with ``fit`` /
``fit_stream`` delegating to the shared loop bitwise-identically to the
loops they replaced.  :class:`TrainHistory` is re-exported from the loop
module for compatibility.
"""

from __future__ import annotations

import numpy as np

from repro.gan.dataset import Dataset, Sample
from repro.gan.metrics import DEFAULT_TOLERANCE, per_pixel_accuracy
from repro.gan.pix2pix import Pix2Pix
from repro.train.loop import (   # noqa: F401  (TrainHistory re-export)
    LoaderSource,
    ShuffledDatasetSource,
    TrainHistory,
    TrainLoop,
)


class Pix2PixTrainer:
    """Epoch loop over a dataset with batch size 1 (the paper's setting)."""

    def __init__(self, model: Pix2Pix, seed: int = 0):
        self.model = model
        self.rng = np.random.default_rng(seed)
        self.history = TrainHistory()

    def fit(self, dataset: Dataset, epochs: int,
            log_every: int | None = None) -> TrainHistory:
        """Train for ``epochs`` passes, shuffling each epoch.

        Sample order comes from this trainer's persistent rng, so
        consecutive ``fit`` calls continue one shuffle stream — the
        behavior every experiment flow has always had.
        """
        source = ShuffledDatasetSource(dataset, self.rng)
        run = TrainLoop(self.model).run(
            source, epochs, log_every=log_every,
            empty_error="cannot train on an empty dataset")
        self.history.extend(run)
        return run

    def fit_stream(self, loader, epochs: int,
                   log_every: int | None = None) -> TrainHistory:
        """Train from a :mod:`repro.data.loader` epoch stream.

        ``loader`` is anything with ``epoch(index) -> iterator of (x, y)
        batches`` (``StreamingLoader`` for sharded stores, ``MemoryLoader``
        for in-memory datasets).  Unlike :meth:`fit`, the sample order
        comes from the loader's own seed, so a streaming run is
        reproducible independent of this trainer's rng.  Loss averages are
        per sample, weighting uneven final batches correctly.
        """
        run = TrainLoop(self.model).run(
            LoaderSource(loader), epochs, log_every=log_every,
            log_samples=True)
        self.history.extend(run)
        return run

    def fine_tune(self, dataset: Dataset, epochs: int,
                  lr_scale: float = 0.2) -> TrainHistory:
        """Strategy-2 transfer update on a few test-design pairs.

        The learning rate is scaled down (default 5x) for the update: the
        paper fine-tunes with 10 of 200 pairs at its base rate, and at our
        reduced data scale an un-damped update overfits the handful of
        pairs and destroys the cross-design congestion calibration the
        Top10 ranking depends on (see EXPERIMENTS.md).
        """
        if lr_scale <= 0:
            raise ValueError("lr_scale must be positive")
        original = (self.model.opt_g.lr, self.model.opt_d.lr)
        self.model.opt_g.lr *= lr_scale
        self.model.opt_d.lr *= lr_scale
        try:
            return self.fit(dataset, epochs)
        finally:
            self.model.opt_g.lr, self.model.opt_d.lr = original

    # -- evaluation --------------------------------------------------------------

    def forecast(self, sample: Sample, sample_noise: bool = False
                 ) -> np.ndarray:
        """Generated heat map for one sample, as (H, W, 3) in [0, 1]."""
        return self.model.forecast(sample.x, sample_noise=sample_noise)

    def evaluate(self, dataset: Dataset,
                 tolerance: float = DEFAULT_TOLERANCE,
                 batch_size: int = 16) -> list[float]:
        """Per-sample per-pixel accuracy against ground truth.

        Forecasts run in batches of ``batch_size`` through the fused
        deterministic inference path; batch invariance makes the scores
        bitwise-identical to the per-sample loop at any batch size.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        samples = list(dataset)
        accuracies = []
        for start in range(0, len(samples), batch_size):
            chunk = samples[start:start + batch_size]
            images = self.model.forecast(
                np.stack([sample.x for sample in chunk]))
            for sample, image in zip(chunk, images):
                accuracies.append(
                    per_pixel_accuracy(image, sample.y_image, tolerance))
        return accuracies

    def mean_accuracy(self, dataset: Dataset,
                      tolerance: float = DEFAULT_TOLERANCE) -> float:
        scores = self.evaluate(dataset, tolerance)
        return float(np.mean(scores))
