"""Training orchestration: epochs, evaluation, and transfer fine-tuning.

Implements the paper's two training strategies (Section 5.1):

* **Strategy 1** — train on every design except the test design
  (leave-one-design-out; reported as Acc.1).
* **Strategy 2** — additionally fine-tune the strategy-1 model on a handful
  of pairs from the test design (transfer learning; reported as Acc.2, and
  the model used for the Top10 ranking results).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.gan.dataset import Dataset, Sample
from repro.gan.metrics import DEFAULT_TOLERANCE, per_pixel_accuracy
from repro.gan.pix2pix import Pix2Pix


@dataclass
class TrainHistory:
    """Per-epoch average losses (the curves of Figure 8)."""

    g_total: list[float] = field(default_factory=list)
    g_gan: list[float] = field(default_factory=list)
    g_l1: list[float] = field(default_factory=list)
    d_total: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.g_total)

    def extend(self, other: "TrainHistory") -> None:
        self.g_total.extend(other.g_total)
        self.g_gan.extend(other.g_gan)
        self.g_l1.extend(other.g_l1)
        self.d_total.extend(other.d_total)
        self.epoch_seconds.extend(other.epoch_seconds)


class Pix2PixTrainer:
    """Epoch loop over a dataset with batch size 1 (the paper's setting)."""

    def __init__(self, model: Pix2Pix, seed: int = 0):
        self.model = model
        self.rng = np.random.default_rng(seed)
        self.history = TrainHistory()

    def fit(self, dataset: Dataset, epochs: int,
            log_every: int | None = None) -> TrainHistory:
        """Train for ``epochs`` passes, shuffling each epoch."""
        if not dataset:
            raise ValueError("cannot train on an empty dataset")
        run = TrainHistory()
        for epoch in range(epochs):
            start = time.perf_counter()
            shuffled = dataset.shuffled(self.rng)
            sums = np.zeros(4)
            for sample in shuffled:
                losses = self.model.train_step(sample.x[None], sample.y[None])
                sums += (losses.g_total, losses.g_gan, losses.g_l1,
                         losses.d_total)
            averages = sums / len(shuffled)
            run.g_total.append(float(averages[0]))
            run.g_gan.append(float(averages[1]))
            run.g_l1.append(float(averages[2]))
            run.d_total.append(float(averages[3]))
            run.epoch_seconds.append(time.perf_counter() - start)
            if log_every and (epoch + 1) % log_every == 0:
                print(f"  epoch {epoch + 1}/{epochs}: "
                      f"G={averages[0]:.4f} (gan {averages[1]:.4f}, "
                      f"l1 {averages[2]:.4f}) D={averages[3]:.4f}")
        self.history.extend(run)
        return run

    def fit_stream(self, loader, epochs: int,
                   log_every: int | None = None) -> TrainHistory:
        """Train from a :mod:`repro.data.loader` epoch stream.

        ``loader`` is anything with ``epoch(index) -> iterator of (x, y)
        batches`` (``StreamingLoader`` for sharded stores, ``MemoryLoader``
        for in-memory datasets).  Unlike :meth:`fit`, the sample order
        comes from the loader's own seed, so a streaming run is
        reproducible independent of this trainer's rng.  Loss averages are
        per sample, weighting uneven final batches correctly.
        """
        run = TrainHistory()
        for epoch in range(epochs):
            start = time.perf_counter()
            sums = np.zeros(4)
            count = 0
            for x_batch, y_batch in loader.epoch(epoch):
                losses = self.model.train_step(x_batch, y_batch)
                weight = x_batch.shape[0]
                sums += weight * np.array(
                    (losses.g_total, losses.g_gan, losses.g_l1,
                     losses.d_total))
                count += weight
            if count == 0:
                raise ValueError("loader yielded no samples")
            averages = sums / count
            run.g_total.append(float(averages[0]))
            run.g_gan.append(float(averages[1]))
            run.g_l1.append(float(averages[2]))
            run.d_total.append(float(averages[3]))
            run.epoch_seconds.append(time.perf_counter() - start)
            if log_every and (epoch + 1) % log_every == 0:
                print(f"  epoch {epoch + 1}/{epochs}: "
                      f"G={averages[0]:.4f} (gan {averages[1]:.4f}, "
                      f"l1 {averages[2]:.4f}) D={averages[3]:.4f} "
                      f"[{count} samples]")
        self.history.extend(run)
        return run

    def fine_tune(self, dataset: Dataset, epochs: int,
                  lr_scale: float = 0.2) -> TrainHistory:
        """Strategy-2 transfer update on a few test-design pairs.

        The learning rate is scaled down (default 5x) for the update: the
        paper fine-tunes with 10 of 200 pairs at its base rate, and at our
        reduced data scale an un-damped update overfits the handful of
        pairs and destroys the cross-design congestion calibration the
        Top10 ranking depends on (see EXPERIMENTS.md).
        """
        if lr_scale <= 0:
            raise ValueError("lr_scale must be positive")
        original = (self.model.opt_g.lr, self.model.opt_d.lr)
        self.model.opt_g.lr *= lr_scale
        self.model.opt_d.lr *= lr_scale
        try:
            return self.fit(dataset, epochs)
        finally:
            self.model.opt_g.lr, self.model.opt_d.lr = original

    # -- evaluation --------------------------------------------------------------

    def forecast(self, sample: Sample, sample_noise: bool = False
                 ) -> np.ndarray:
        """Generated heat map for one sample, as (H, W, 3) in [0, 1]."""
        return self.model.forecast(sample.x, sample_noise=sample_noise)

    def evaluate(self, dataset: Dataset,
                 tolerance: float = DEFAULT_TOLERANCE,
                 batch_size: int = 16) -> list[float]:
        """Per-sample per-pixel accuracy against ground truth.

        Forecasts run in batches of ``batch_size`` through the fused
        deterministic inference path; batch invariance makes the scores
        bitwise-identical to the per-sample loop at any batch size.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        samples = list(dataset)
        accuracies = []
        for start in range(0, len(samples), batch_size):
            chunk = samples[start:start + batch_size]
            images = self.model.forecast(
                np.stack([sample.x for sample in chunk]))
            for sample, image in zip(chunk, images):
                accuracies.append(
                    per_pixel_accuracy(image, sample.y_image, tolerance))
        return accuracies

    def mean_accuracy(self, dataset: Dataset,
                      tolerance: float = DEFAULT_TOLERANCE) -> float:
        scores = self.evaluate(dataset, tolerance)
        return float(np.mean(scores))
