"""Image-pair dataset containers and input normalization (Section 4.2).

The model input is ``x = stack(img_place, lambda * img_connect)`` — the RGB
placement image plus the single-channel connectivity image scaled by the
paper's lambda = 0.1 — and the target is the RGB routing heat map.  Images
are stored channel-first (C, H, W) and normalized from [0, 1] to [-1, 1]
(the generator ends in tanh).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np


def to_unit_range(image01: np.ndarray) -> np.ndarray:
    """Map [0, 1] image values to the tanh range [-1, 1]."""
    return (2.0 * np.asarray(image01, dtype=np.float32) - 1.0)


def from_unit_range(image_pm1: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_unit_range`, clipped to [0, 1]."""
    return np.clip((np.asarray(image_pm1, dtype=np.float32) + 1.0) / 2.0,
                   0.0, 1.0)


def from_unit_range_(image_pm1: np.ndarray) -> np.ndarray:
    """In-place :func:`from_unit_range` for a caller-owned float32 array.

    Bitwise the same values (/2 is *0.5 exactly), zero allocations —
    used on the forecast hot path where the tanh output is already a
    fresh array nobody else holds.
    """
    image_pm1 += 1.0
    image_pm1 *= 0.5
    return np.clip(image_pm1, 0.0, 1.0, out=image_pm1)


def _chw(image_hwc: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(image_hwc.transpose(2, 0, 1))


def make_input_stack(place_image: np.ndarray, connect_image: np.ndarray,
                     connect_weight: float = 0.1) -> np.ndarray:
    """Build the (4, H, W) model input from rendered [0, 1] images.

    ``place_image`` is (H, W, 3); ``connect_image`` is (H, W).  Both are
    normalized to [-1, 1]; the connectivity channel is scaled by lambda.
    """
    if place_image.ndim != 3 or place_image.shape[2] != 3:
        raise ValueError(f"place image must be (H, W, 3), got "
                         f"{place_image.shape}")
    if connect_image.shape != place_image.shape[:2]:
        raise ValueError(
            f"connectivity image shape {connect_image.shape} does not match "
            f"placement image {place_image.shape[:2]}")
    place = to_unit_range(place_image)
    connect = connect_weight * to_unit_range(connect_image)
    return np.concatenate(
        [_chw(place), connect[None, :, :]], axis=0).astype(np.float32)


def input_from_images(place_image: np.ndarray, connect_image: np.ndarray,
                      connect_weight: float = 0.1) -> np.ndarray:
    """(1, 4, H, W) batched input, convenience wrapper for inference."""
    return make_input_stack(place_image, connect_image,
                            connect_weight)[None, ...]


def target_from_image(route_image: np.ndarray) -> np.ndarray:
    """Build the (3, H, W) normalized target from a rendered heat map."""
    return _chw(to_unit_range(route_image)).astype(np.float32)


@dataclass
class Sample:
    """One placement of one design: model input, target, and provenance."""

    design: str
    x: np.ndarray                 # (4, H, W) float32 in [-1, 1]
    y: np.ndarray                 # (3, H, W) float32 in [-1, 1]
    true_congestion: float        # mean channel utilization after routing
    placer_options: dict = field(default_factory=dict)
    route_seconds: float = 0.0
    place_seconds: float = 0.0
    converged: bool = True

    @property
    def y_image(self) -> np.ndarray:
        """Ground-truth heat map as an (H, W, 3) image in [0, 1]."""
        return from_unit_range(self.y.transpose(1, 2, 0))

    @property
    def place_image(self) -> np.ndarray:
        """Placement input as an (H, W, 3) image in [0, 1]."""
        return from_unit_range(self.x[:3].transpose(1, 2, 0))


class Dataset:
    """An ordered collection of samples from one or more designs."""

    def __init__(self, samples: list[Sample] | None = None):
        self.samples: list[Sample] = (
            list(samples) if samples is not None else [])

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Dataset(self.samples[index])
        return self.samples[index]

    def append(self, sample: Sample) -> None:
        self.samples.append(sample)

    def extend(self, other: "Dataset") -> None:
        self.samples.extend(other.samples)

    @property
    def designs(self) -> list[str]:
        seen: list[str] = []
        for sample in self.samples:
            if sample.design not in seen:
                seen.append(sample.design)
        return seen

    def of_design(self, design: str) -> "Dataset":
        return Dataset([s for s in self.samples if s.design == design])

    def excluding_design(self, design: str) -> "Dataset":
        return Dataset([s for s in self.samples if s.design != design])

    def leave_one_out(self, design: str) -> tuple["Dataset", "Dataset"]:
        """(train, test) split: the paper's training strategy 1."""
        test = self.of_design(design)
        if not test:
            raise ValueError(f"no samples for design {design!r}")
        return self.excluding_design(design), test

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        """A reordered copy whose sample list is independent of this one.

        Mutating either dataset (append/extend) never affects the other;
        the :class:`Sample` objects themselves are shared.
        """
        order = rng.permutation(len(self.samples))
        return Dataset([self.samples[int(i)] for i in order])

    # -- persistence -----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialize to compressed npz (arrays plus per-sample metadata).

        The write is atomic: the archive is staged next to ``path`` and
        moved into place with ``os.replace``, so an interrupted save can
        never leave a truncated archive at the destination.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays: dict[str, np.ndarray] = {}
        meta = []
        for index, sample in enumerate(self.samples):
            arrays[f"x_{index}"] = sample.x
            arrays[f"y_{index}"] = sample.y
            meta.append((sample.design, sample.true_congestion,
                         sample.route_seconds, sample.place_seconds,
                         int(sample.converged), repr(sample.placer_options)))
        arrays["meta"] = np.array(meta, dtype=object)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        try:
            # Write through a file object so numpy cannot append ".npz"
            # to the staging name.
            with open(tmp, "wb") as handle:
                np.savez_compressed(handle, **arrays)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    @classmethod
    def load(cls, path: str | Path) -> "Dataset":
        import ast

        with np.load(Path(path), allow_pickle=True) as archive:
            meta = archive["meta"]
            samples = []
            for index, row in enumerate(meta):
                design, congestion, route_s, place_s, converged, options = row
                samples.append(Sample(
                    design=str(design),
                    x=archive[f"x_{index}"],
                    y=archive[f"y_{index}"],
                    true_congestion=float(congestion),
                    placer_options=ast.literal_eval(str(options)),
                    route_seconds=float(route_s),
                    place_seconds=float(place_s),
                    converged=bool(int(converged)),
                ))
        return cls(samples)
