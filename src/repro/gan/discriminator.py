"""Patch discriminator D(x, g) (Figure 5, bottom).

Six layers: four stride/strided convolutions with batch normalization and
LeakyReLU, a final 1-channel convolution producing a patch of logits, and the
sigmoid — which lives inside :class:`repro.nn.BCEWithLogitsLoss` for
numerical stability.  For a 256x256 input the feature maps match the figure:
128x128x64, 64x64x128, 32x32x256, 31x31x512, 30x30x1.
"""

from __future__ import annotations

import numpy as np

from repro.nn import BatchNorm2d, Conv2d, LeakyReLU, Module, Sequential


class PatchDiscriminator(Module):
    """Conditional patch discriminator over concat(condition, image).

    For inputs of 32 pixels and up the layer stack is the paper's (three
    strided convolutions, then two stride-1 convolutions); smaller
    experiment scales drop strided stages so the final patch stays >= 1x1.
    """

    def __init__(self, in_channels: int = 7, base_filters: int = 64,
                 image_size: int = 256,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(1)
        if image_size < 8:
            raise ValueError(f"image_size must be >= 8, got {image_size}")
        self.in_channels = in_channels
        b = base_filters
        # Keep >= 4 pixels entering the stride-1 tail (4 -> 3 -> 2).
        num_strided = min(3, int(np.log2(image_size)) - 2)

        layers: list[Module] = [
            Conv2d(in_channels, b, kernel=4, stride=2, pad=1, rng=rng),
            LeakyReLU(0.2),
        ]
        channels = b
        for _ in range(num_strided - 1):
            layers.extend([
                Conv2d(channels, channels * 2, kernel=4, stride=2, pad=1,
                       rng=rng),
                BatchNorm2d(channels * 2),
                LeakyReLU(0.2),
            ])
            channels *= 2
        layers.extend([
            Conv2d(channels, channels * 2, kernel=4, stride=1, pad=1,
                   rng=rng),
            BatchNorm2d(channels * 2),
            LeakyReLU(0.2),
            Conv2d(channels * 2, 1, kernel=4, stride=1, pad=1, rng=rng),
        ])
        self.net = Sequential(*layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Map (n, in_channels, s, s) to a patch of logits.

        With a workspace attached the returned logits view into the final
        conv's arena buffer: they are copied out so callers may hold them
        across passes (the patch is tiny, the copy is noise).
        """
        if x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} channels, got {x.shape[1]}")
        out = self.net.forward(x)
        return out.copy() if self._ws is not None else out

    def forward_eval(self, x: np.ndarray) -> np.ndarray:
        """Fused inference logits (no gradient caches), caller-owned."""
        if x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} channels, got {x.shape[1]}")
        return self.net.forward_eval(x).copy()

    def backward(self, grad: np.ndarray,
                 need_input_grad: bool = True) -> np.ndarray | None:
        """Backpropagate; the D-step passes ``need_input_grad=False``
        since only the G-step consumes the gradient w.r.t. (x, g)."""
        return self.net.backward(grad, need_input_grad=need_input_grad)
