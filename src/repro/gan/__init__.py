"""The paper's contribution: pix2pix-style congestion forecasting cGAN.

* :mod:`repro.gan.unet` — U-Net generator with configurable skip
  connections (``all`` / ``single`` / ``none``, Section 5.3 ablation).
* :mod:`repro.gan.discriminator` — patch discriminator (Figure 5 bottom).
* :mod:`repro.gan.pix2pix` — the adversarial training step with the
  ``cGAN + lambda_L1 * L1`` objective.
* :mod:`repro.gan.dataset` — image-pair containers and normalization.
* :mod:`repro.gan.metrics` — per-pixel accuracy, Top-10, congestion decode.
* :mod:`repro.gan.trainer` — epochs, evaluation, transfer fine-tuning.
"""

from repro.gan.dataset import Dataset, Sample, input_from_images, make_input_stack
from repro.gan.discriminator import PatchDiscriminator
from repro.gan.metrics import (
    image_congestion_score,
    per_pixel_accuracy,
    speedup,
    top_k_overlap,
)
from repro.gan.pix2pix import Pix2Pix, Pix2PixConfig
from repro.gan.trainer import Pix2PixTrainer, TrainHistory
from repro.gan.unet import UNetGenerator

__all__ = [
    "Dataset",
    "PatchDiscriminator",
    "Pix2Pix",
    "Pix2PixConfig",
    "Pix2PixTrainer",
    "Sample",
    "TrainHistory",
    "UNetGenerator",
    "image_congestion_score",
    "input_from_images",
    "make_input_stack",
    "per_pixel_accuracy",
    "speedup",
    "top_k_overlap",
]
