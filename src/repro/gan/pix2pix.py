"""The conditional GAN training step (Section 4.4, Figure 6).

One :meth:`Pix2Pix.train_step` performs the paper's two updates:

* **D step** — classify (x, truth) as real and (x, G(x, z)) as fake; the
  two BCE gradients are averaged (the standard pix2pix 0.5 factor) and only
  D's parameters step.
* **G step** — push D(x, G(x, z)) toward "real" while minimizing
  ``l1_weight * ||truth - G(x, z)||_1``; the adversarial gradient flows
  through D into the generated image (D's own parameter gradients from this
  pass are discarded), and only G's parameters step.

Setting ``l1_weight = 0`` reproduces the "w/o L1" ablation of Section 5.3;
``skip_mode`` selects the skip-connection ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ExperimentScale
from repro.gan.discriminator import PatchDiscriminator
from repro.gan.unet import UNetGenerator
from repro.nn import Adam, BCEWithLogitsLoss, L1Loss, Workspace


@dataclass(frozen=True)
class Pix2PixConfig:
    """Model and objective hyperparameters (defaults: the paper's)."""

    image_size: int = 256
    input_channels: int = 4    # img_place RGB + connectivity channel
    output_channels: int = 3   # img_route RGB
    base_filters: int = 64
    disc_filters: int = 64
    skip_mode: str = "all"
    l1_weight: float = 50.0
    learning_rate: float = 2e-4
    adam_beta1: float = 0.5
    adam_beta2: float = 0.999
    adam_eps: float = 1e-8
    dropout: float = 0.5
    seed: int = 0

    @classmethod
    def from_scale(cls, scale: ExperimentScale, **overrides) -> "Pix2PixConfig":
        """Derive a config from an experiment scale preset."""
        values = dict(
            image_size=scale.image_size,
            base_filters=scale.base_filters,
            disc_filters=scale.disc_filters,
            l1_weight=scale.l1_weight,
            learning_rate=scale.learning_rate,
            adam_beta1=scale.adam_beta1,
            adam_beta2=scale.adam_beta2,
            adam_eps=scale.adam_eps,
        )
        values.update(overrides)
        return cls(**values)


@dataclass
class StepLosses:
    """Scalar losses from one adversarial step."""

    d_real: float
    d_fake: float
    g_gan: float
    g_l1: float

    @property
    def d_total(self) -> float:
        return 0.5 * (self.d_real + self.d_fake)

    @property
    def g_total(self) -> float:
        return self.g_gan + self.g_l1


class Pix2Pix:
    """Generator + discriminator pair with their optimizers."""

    def __init__(self, config: Pix2PixConfig | None = None):
        self.config = config if config is not None else Pix2PixConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.generator = UNetGenerator(
            in_channels=cfg.input_channels,
            out_channels=cfg.output_channels,
            image_size=cfg.image_size,
            base_filters=cfg.base_filters,
            skip_mode=cfg.skip_mode,
            dropout=cfg.dropout,
            rng=rng,
        )
        self.discriminator = PatchDiscriminator(
            in_channels=cfg.input_channels + cfg.output_channels,
            base_filters=cfg.disc_filters,
            image_size=cfg.image_size,
            rng=rng,
        )
        adam_kwargs = dict(lr=cfg.learning_rate, beta1=cfg.adam_beta1,
                           beta2=cfg.adam_beta2, eps=cfg.adam_eps)
        self.opt_g = Adam(self.generator.parameters(), **adam_kwargs)
        self.opt_d = Adam(self.discriminator.parameters(), **adam_kwargs)
        self._bce = BCEWithLogitsLoss()
        self._l1 = L1Loss()
        # One scratch arena per model: conv/norm/activation temporaries and
        # the train-step concat inputs all live here, reused across steps
        # (see repro.nn.workspace).  Detach with attach_workspace(None) to
        # fall back to the allocating per-call path — same bits, slower.
        self.workspace = Workspace()
        self.generator.attach_workspace(self.workspace)
        self.discriminator.attach_workspace(self.workspace)

    def set_inference_mode(self, mode: str) -> "Pix2Pix":
        """Numeric variant for the fused eval paths of both networks.

        ``"int8"`` quantizes the conv weights per output channel on the
        eval path only (see :meth:`repro.nn.Module.set_inference_mode`);
        training passes and checkpoints are unaffected, and
        ``"float32"`` restores the bitwise reference path.
        """
        self.generator.set_inference_mode(mode)
        self.discriminator.set_inference_mode(mode)
        return self

    # -- training --------------------------------------------------------------

    def _concat_input(self, name: str, x: np.ndarray,
                      image: np.ndarray) -> np.ndarray:
        """Stack (condition, image) into a reused workspace buffer."""
        shape = (x.shape[0], x.shape[1] + image.shape[1]) + x.shape[2:]
        out = self.workspace.buffer(self, name, shape, x.dtype)
        np.concatenate([x, image], axis=1, out=out)
        return out

    def train_step(self, x: np.ndarray, y: np.ndarray) -> StepLosses:
        """One D update followed by one G update on a batch."""
        generator = self.generator
        discriminator = self.discriminator
        # The recursive flag walk is measurable at one call per step; both
        # nets stay in training mode across fit loops, so skip it then.
        if not generator.training:
            generator.train(True)
        if not discriminator.training:
            discriminator.train(True)
        # Parameters are about to change: invalidate the fused-weight
        # caches the eval path keys on this counter.
        self.workspace.generation += 1

        fake = generator.forward(x)

        # ---- discriminator step -------------------------------------------
        self.opt_d.zero_grad()
        real_logits = discriminator.forward(self._concat_input("real", x, y))
        d_real = self._bce.forward(real_logits, 1.0)
        discriminator.backward(0.5 * self._bce.backward(),
                               need_input_grad=False)

        # One concat serves both the D-fake and the G-fool pass below: the
        # discriminator never mutates its input and opt_d.step() only
        # touches parameters.
        fake_input = self._concat_input("fake", x, fake)
        fake_logits = discriminator.forward(fake_input)
        d_fake = self._bce.forward(fake_logits, 0.0)
        discriminator.backward(0.5 * self._bce.backward(),
                               need_input_grad=False)
        self.opt_d.step()

        # ---- generator step -------------------------------------------------
        self.opt_g.zero_grad()
        fool_logits = discriminator.forward(fake_input)
        g_gan = self._bce.forward(fool_logits, 1.0)
        d_input_grad = discriminator.backward(self._bce.backward())
        grad_fake = d_input_grad[:, x.shape[1]:]

        g_l1_raw = self._l1.forward(fake, y)
        g_l1 = self.config.l1_weight * g_l1_raw
        if self.config.l1_weight > 0:
            grad_fake = grad_fake + self.config.l1_weight * self._l1.backward()

        generator.backward(np.ascontiguousarray(grad_fake, dtype=np.float32),
                           need_input_grad=False)
        self.opt_g.step()
        # The G pass polluted D's parameter gradients; discard them.
        self.opt_d.zero_grad()

        return StepLosses(d_real=d_real, d_fake=d_fake, g_gan=g_gan, g_l1=g_l1)

    # -- persistence ----------------------------------------------------------

    def save(self, path) -> None:
        """Checkpoint both networks (and the config) to an ``.npz`` file."""
        import dataclasses
        import json
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        state = {f"G.{k}": v for k, v in self.generator.state_dict().items()}
        state.update(
            {f"D.{k}": v for k, v in self.discriminator.state_dict().items()})
        state["config_json"] = np.array(
            json.dumps(dataclasses.asdict(self.config)))
        np.savez_compressed(path, **state)

    @classmethod
    def load(cls, path) -> "Pix2Pix":
        """Restore a model checkpointed with :meth:`save`."""
        import json
        from pathlib import Path

        from repro.nn.serialize import validate_state_dict

        path = Path(path)
        with np.load(path, allow_pickle=False) as archive:
            if "config_json" not in archive.files:
                raise ValueError(
                    f"{path} is not a Pix2Pix checkpoint (no config_json)")
            config = Pix2PixConfig(**json.loads(str(archive["config_json"])))
            model = cls(config)
            g_state = {key[2:]: archive[key] for key in archive.files
                       if key.startswith("G.")}
            d_state = {key[2:]: archive[key] for key in archive.files
                       if key.startswith("D.")}
        validate_state_dict(model.generator, g_state,
                            context=f"generator from {path}")
        validate_state_dict(model.discriminator, d_state,
                            context=f"discriminator from {path}")
        model.generator.load_state_dict(g_state)
        model.discriminator.load_state_dict(d_state)
        return model

    # -- inference ---------------------------------------------------------------

    def generate(self, x: np.ndarray, sample_noise: bool = True) -> np.ndarray:
        """Forecast heat maps for a batch of inputs.

        ``sample_noise=True`` keeps decoder dropout active (pix2pix draws its
        noise z from dropout, including at test time).  With
        ``sample_noise=False`` the pass is deterministic and batch-invariant:
        stacking inputs into one batch yields bitwise the same outputs as
        running them one at a time (conv gemms run per sample; see
        ``repro.nn.layers.Conv2d``),
        which is what the serving engine's micro-batching relies on.  The
        deterministic pass runs the fused ``forward_eval`` route — no
        gradient caches, arena scratch throughout — and computes bitwise
        the same forecast as an eval-mode ``forward``.
        """
        if not sample_noise:
            return self.generator.forward_eval(x)
        self.generator.train(True)
        return self.generator.forward(x)

    def forecast(self, x: np.ndarray, sample_noise: bool = False) -> np.ndarray:
        """Forecast heat-map *images* in [0, 1] from normalized inputs.

        ``x`` is one ``(C, H, W)`` input or a batch ``(N, C, H, W)``, in the
        tanh range [-1, 1]; the result is ``(H, W, 3)`` or ``(N, H, W, 3)``
        accordingly.  Defaults to the deterministic (noise-free) pass used
        for scoring, caching, and serving.
        """
        from repro.gan.dataset import from_unit_range_

        x = np.asarray(x, dtype=np.float32)
        if x.ndim not in (3, 4):
            raise ValueError(
                f"expected (C, H, W) or (N, C, H, W) input, got {x.shape}")
        single = x.ndim == 3
        out = self.generate(x[None] if single else x,
                            sample_noise=sample_noise)
        # The tanh output is fresh and ours: denormalize in place over the
        # contiguous NCHW layout, then hand out the (N, H, W, 3) view.
        images = from_unit_range_(out).transpose(0, 2, 3, 1)
        return images[0] if single else images
