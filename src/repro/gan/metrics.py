"""Evaluation metrics (Section 5.1).

* :func:`per_pixel_accuracy` — fraction of pixels whose worst-channel error
  is within a tolerance, "the per-pixel accuracy between the generated image
  and ground truth image".
* :func:`top_k_overlap` — the Top10 metric: how many of the predicted-best
  k placements are truly among the best k.
* :func:`image_congestion_score` — decode a heat-map image back into mean
  channel utilization, which is how a *generated* image ranks placements.
* :func:`speedup` — routing runtime over inference runtime.

The batched metric registry lives in :mod:`repro.eval.metrics`; its
image-quality metrics (``nrms``, ``pixel_mae``/``pixel_rmse``, ``ssim``,
the hotspot precision/recall/IoU family, ``roc_auc``) are re-exported
here so ``repro.gan.metrics`` stays the one import for scoring a
forecast.  The registry implementations define every edge case the naive
formulas leave to NaN: a zero-variance target normalizes NRMS by 1
(plain RMS error), empty hotspot sets take their limit values, and
single-class ROC targets score AUC 1.0.
"""

from __future__ import annotations

import numpy as np

from repro.viz.colors import COLOR_SCHEME, ColorScheme, decode_utilization

#: Names resolved lazily from :mod:`repro.eval.metrics` (PEP 562), so the
#: unified registry is importable from here without a circular import at
#: package-init time.
_EVAL_REEXPORTS = (
    "batched_accuracy",
    "hotspot_iou",
    "hotspot_precision",
    "hotspot_recall",
    "metric_suite",
    "nrms",
    "pixel_mae",
    "pixel_rmse",
    "roc_auc",
    "roc_curve",
    "ssim",
    "utilization_map",
)


def __getattr__(name: str):
    if name in _EVAL_REEXPORTS:
        from repro.eval import metrics as _eval_metrics

        return getattr(_eval_metrics, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")

#: Default tolerance: 16/255, i.e. a pixel counts as correct when every
#: channel is within 16 8-bit steps of the ground truth.
DEFAULT_TOLERANCE = 16.0 / 255.0


def per_pixel_accuracy(generated: np.ndarray, truth: np.ndarray,
                       tolerance: float = DEFAULT_TOLERANCE) -> float:
    """Fraction of pixels with max-channel |error| <= tolerance.

    Both images are (H, W, C) or (C, H, W) in [0, 1]; shapes must match.
    """
    generated = np.asarray(generated, dtype=np.float32)
    truth = np.asarray(truth, dtype=np.float32)
    if generated.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: {generated.shape} vs {truth.shape}")
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    # Channel-last (H, W, C) by default; treat as channel-first only when
    # the leading axis looks like channels and the trailing one does not.
    channel_axis = -1
    if (generated.ndim == 3 and generated.shape[0] in (1, 3, 4)
            and generated.shape[-1] not in (1, 3, 4)):
        channel_axis = 0
    error = np.abs(generated - truth).max(axis=channel_axis)
    return float((error <= tolerance).mean())


def image_congestion_score(heatmap01: np.ndarray,
                           channel_mask: np.ndarray,
                           scheme: ColorScheme = COLOR_SCHEME) -> float:
    """Mean utilization decoded from a heat-map image over channel pixels.

    ``heatmap01`` is (H, W, 3) in [0, 1]; ``channel_mask`` flags the pixels
    that paint routing channels (from ``FloorplanLayout.channel_pixel_mask``).
    """
    if channel_mask.dtype != bool:
        raise ValueError("channel_mask must be boolean")
    if not channel_mask.any():
        raise ValueError("channel mask selects no pixels")
    utilization = decode_utilization(heatmap01[channel_mask], scheme)
    return float(utilization.mean())


def regional_congestion_score(heatmap01: np.ndarray,
                              channel_mask: np.ndarray,
                              region_mask: np.ndarray,
                              scheme: ColorScheme = COLOR_SCHEME) -> float:
    """Mean decoded utilization restricted to a floorplan region."""
    mask = channel_mask & region_mask
    if not mask.any():
        raise ValueError("region contains no channel pixels")
    return float(decode_utilization(heatmap01[mask], scheme).mean())


def top_k_overlap(predicted_scores: np.ndarray, true_scores: np.ndarray,
                  k: int = 10) -> float:
    """Overlap fraction between predicted and true k *lowest*-score items.

    ``Top10 = 80%`` in the paper means 8 of the 10 selected placements are
    truly among the 10 least congested.
    """
    predicted_scores = np.asarray(predicted_scores)
    true_scores = np.asarray(true_scores)
    if predicted_scores.shape != true_scores.shape:
        raise ValueError("score arrays must have identical shapes")
    if k < 1 or k > len(predicted_scores):
        raise ValueError(
            f"k={k} out of range for {len(predicted_scores)} placements")
    predicted_best = set(np.argsort(predicted_scores, kind="stable")[:k])
    true_best = set(np.argsort(true_scores, kind="stable")[:k])
    return len(predicted_best & true_best) / k


def speedup(route_seconds: float, inference_seconds: float) -> float:
    """Routing runtime divided by forecast runtime (Section 5.1)."""
    if inference_seconds <= 0:
        raise ValueError("inference time must be positive")
    return route_seconds / inference_seconds
