"""Content-addressed artifact store: one ``put/get/verify`` for every format.

The repo grew three on-disk artifact families that all carry provenance
metadata but live behind three different APIs:

* **dataset shards** — ``repro.data.ShardedStore`` directories (PR 2);
* **run directories** — ``repro.train.Runner`` outputs (PR 5);
* **serve checkpoints** — ``Pix2Pix.save`` ``.npz`` files plus their
  optional ``<name>-reference.json`` drift profiles (PR 1/7).

This module converges them behind one content-addressed store.  Every
artifact is a *manifest* — kind, name, member files (each a sha256
digest into a shared blob area), and free-form metadata — and the
artifact's identity is the sha256 of its canonical manifest JSON.  Two
consequences fall out of that design:

* **dedup for free** — identical content (a checkpoint ingested twice, a
  shard shared by two dataset snapshots) maps to the same blob and the
  same artifact digest;
* **worker-count invariance** — nothing wall-clock or host-specific is
  hashed (or even written), so a store populated by a 4-worker pool is
  byte-identical to one populated serially, matching the exactness
  discipline of the formats it ingests.

Layout under the store root::

    objects/<d[:2]>/<digest>      # raw blobs, content-addressed
    artifacts/<digest>.json       # manifests, one per artifact
    quarantine/                   # corrupt files moved aside by scrub()

Because blobs are content-addressed, quarantining a corrupt blob makes
the store self-healing: the next ``put`` of the same content sees the
address vacant and rewrites good bytes, after which ``scrub`` reports
clean again.

All writes are atomic (temp + ``os.replace``), and both areas are
append-only, so concurrent writers — pool workers putting forecast
results, a sweep archiving run directories — need no locking: the worst
case is two processes writing the same bytes to the same name.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

FORMAT_VERSION = 1
OBJECTS_DIR = "objects"
MANIFESTS_DIR = "artifacts"
QUARANTINE_DIR = "quarantine"

#: Run-directory members worth archiving: the self-describing record and
#: the exported serve checkpoints — not the (large, prunable) exact-resume
#: training states.
RUN_DIR_FILES = ("spec.json", "status.json", "losses.jsonl", "evals.jsonl",
                 "reference.json")


class ArtifactError(Exception):
    """A missing, malformed, or corrupted artifact."""


@dataclass(frozen=True)
class ArtifactRef:
    """One stored artifact: identity plus its manifest content."""

    digest: str                       # sha256 of the canonical manifest
    kind: str                         # checkpoint | dataset | run | blob...
    name: str
    files: tuple = ()                 # ({"path", "sha256", "size"}, ...)
    meta: dict = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        return sum(entry["size"] for entry in self.files)

    def as_dict(self) -> dict:
        return {"digest": self.digest, "kind": self.kind, "name": self.name,
                "files": list(self.files), "meta": dict(self.meta)}


def _hash_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _hash_file(path: Path) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def manifest_core(kind: str, name: str, files: list[dict],
                  meta: dict) -> dict:
    """The hashed portion of a manifest (canonical field order)."""
    return {
        "kind": kind,
        "name": name,
        "files": sorted(files, key=lambda entry: entry["path"]),
        "meta": meta,
    }


def manifest_digest(core: dict) -> str:
    """An artifact's identity: sha256 of its canonical manifest JSON."""
    return _hash_bytes(
        json.dumps(core, sort_keys=True, separators=(",", ":")).encode())


class ArtifactStore:
    """Content-addressed ``put/get/verify`` over a store directory.

    The constructor accepts any directory (created on first write); a
    store is just its ``objects/`` and ``artifacts/`` subtrees.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    @property
    def objects_dir(self) -> Path:
        return self.root / OBJECTS_DIR

    @property
    def manifests_dir(self) -> Path:
        return self.root / MANIFESTS_DIR

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIR

    # -- blob layer --------------------------------------------------------

    def blob_path(self, digest: str) -> Path:
        return self.objects_dir / digest[:2] / digest

    def _store_blob_file(self, source: Path) -> tuple[str, int]:
        """Copy one file into the blob area; returns (digest, size)."""
        digest = _hash_file(source)
        dest = self.blob_path(digest)
        if not dest.exists():
            dest.parent.mkdir(parents=True, exist_ok=True)
            tmp = dest.with_name(f".{dest.name}.tmp-{os.getpid()}")
            try:
                shutil.copyfile(source, tmp)
                os.replace(tmp, dest)
            finally:
                tmp.unlink(missing_ok=True)
        return digest, source.stat().st_size

    def _store_blob_bytes(self, data: bytes) -> tuple[str, int]:
        digest = _hash_bytes(data)
        dest = self.blob_path(digest)
        if not dest.exists():
            dest.parent.mkdir(parents=True, exist_ok=True)
            tmp = dest.with_name(f".{dest.name}.tmp-{os.getpid()}")
            try:
                tmp.write_bytes(data)
                os.replace(tmp, dest)
            finally:
                tmp.unlink(missing_ok=True)
        return digest, len(data)

    def open_blob(self, digest: str) -> Path:
        """Path of one stored blob (zero-copy read access)."""
        path = self.blob_path(digest)
        if not path.exists():
            raise ArtifactError(f"no blob {digest[:12]}... in {self.root}")
        return path

    # -- put ---------------------------------------------------------------

    def _put_manifest(self, kind: str, name: str, files: list[dict],
                      meta: dict) -> ArtifactRef:
        core = manifest_core(kind, name, files, dict(meta))
        digest = manifest_digest(core)
        path = self.manifests_dir / f"{digest}.json"
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            document = {"format_version": FORMAT_VERSION,
                        "digest": digest, **core}
            tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
            try:
                tmp.write_text(json.dumps(document, sort_keys=True,
                                          indent=1) + "\n")
                os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)
        return ArtifactRef(digest=digest, kind=kind, name=name,
                           files=tuple(core["files"]), meta=dict(meta))

    def put_bytes(self, data: bytes, name: str, kind: str = "blob",
                  meta: dict | None = None) -> ArtifactRef:
        """Store one in-memory payload as a single-file artifact."""
        digest, size = self._store_blob_bytes(data)
        return self._put_manifest(
            kind, name, [{"path": name, "sha256": digest, "size": size}],
            meta or {})

    def put_file(self, path: str | Path, kind: str = "blob",
                 name: str | None = None,
                 meta: dict | None = None) -> ArtifactRef:
        """Store one file as a single-file artifact (name = file name)."""
        path = Path(path)
        if not path.is_file():
            raise ArtifactError(f"{path} is not a file")
        digest, size = self._store_blob_file(path)
        name = name if name is not None else path.name
        return self._put_manifest(
            kind, name,
            [{"path": path.name, "sha256": digest, "size": size}],
            meta or {})

    def put_dir(self, directory: str | Path, kind: str = "tree",
                name: str | None = None, meta: dict | None = None,
                include=None) -> ArtifactRef:
        """Store a directory tree (relative paths preserved).

        ``include``, when given, is a predicate on the relative POSIX
        path selecting which files to ingest.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise ArtifactError(f"{directory} is not a directory")
        files = []
        for path in sorted(directory.rglob("*")):
            if not path.is_file():
                continue
            relative = path.relative_to(directory).as_posix()
            if include is not None and not include(relative):
                continue
            digest, size = self._store_blob_file(path)
            files.append({"path": relative, "sha256": digest, "size": size})
        if not files:
            raise ArtifactError(f"nothing to ingest under {directory}")
        return self._put_manifest(kind, name or directory.name, files,
                                  meta or {})

    # -- format-specific ingestion ----------------------------------------

    def put_checkpoint(self, path: str | Path,
                       name: str | None = None) -> ArtifactRef:
        """Ingest a serve checkpoint ``.npz`` (+ drift reference sidecar).

        The sidecar ``<stem>-reference.json`` written by training rides
        along when present, so materializing the artifact next to a
        serve process re-enables drift monitoring automatically.
        """
        path = Path(path)
        if not path.is_file():
            raise ArtifactError(f"{path} is not a checkpoint file")
        name = name if name is not None else path.stem
        digest, size = self._store_blob_file(path)
        files = [{"path": path.name, "sha256": digest, "size": size}]
        reference = path.with_name(f"{path.stem}-reference.json")
        if reference.exists():
            ref_digest, ref_size = self._store_blob_file(reference)
            files.append({"path": reference.name, "sha256": ref_digest,
                          "size": ref_size})
        return self._put_manifest(
            "checkpoint", name, files,
            {"model_id": name, "checkpoint_sha256": digest,
             "has_reference": len(files) > 1})

    def put_dataset_store(self, root: str | Path,
                          name: str | None = None) -> ArtifactRef:
        """Ingest a ``ShardedStore`` directory (manifest + shards).

        The dataset manifest's shape metadata and provenance records are
        lifted into the artifact's ``meta``, converging the PR 2 format's
        provenance with the store's.
        """
        root = Path(root)
        manifest_path = root / "manifest.json"
        if not manifest_path.exists():
            raise ArtifactError(f"{root} is not a dataset store "
                                f"(no manifest.json)")
        manifest = json.loads(manifest_path.read_text())
        files = []
        for member in ["manifest.json"] + [shard["name"]
                                           for shard in manifest["shards"]]:
            path = root / member
            if not path.exists():
                raise ArtifactError(f"dataset store {root} is missing "
                                    f"{member}")
            digest, size = self._store_blob_file(path)
            files.append({"path": member, "sha256": digest, "size": size})
        return self._put_manifest(
            "dataset", name or root.name, files,
            {"num_samples": manifest["num_samples"],
             "image_size": manifest["image_size"],
             "designs": manifest["designs"],
             "provenance": manifest["provenance"]})

    def put_run_dir(self, run_dir: str | Path,
                    name: str | None = None) -> ArtifactRef:
        """Ingest a training run directory (spec, logs, exports).

        Keeps the run's self-describing record (``spec.json``, loss and
        eval logs, ``status.json``) plus everything under ``export/`` —
        the serve-format checkpoints — and lifts the spec name, run
        state, and best-metric fields into ``meta``.
        """
        run_dir = Path(run_dir)
        spec_path = run_dir / "spec.json"
        if not spec_path.exists():
            raise ArtifactError(f"{run_dir} is not a run directory "
                                f"(no spec.json)")
        spec = json.loads(spec_path.read_text())
        meta = {"run_name": spec.get("name", run_dir.name),
                "spec": spec}
        status_path = run_dir / "status.json"
        if status_path.exists():
            status = json.loads(status_path.read_text())
            meta["state"] = status.get("state")
            meta["best_value"] = status.get("best_value")

        def include(relative: str) -> bool:
            return relative in RUN_DIR_FILES or relative.startswith("export/")

        return self.put_dir(run_dir, kind="run",
                            name=name or spec.get("name", run_dir.name),
                            meta=meta, include=include)

    # -- get ---------------------------------------------------------------

    def get(self, digest: str) -> ArtifactRef:
        """The manifest for one artifact digest."""
        path = self.manifests_dir / f"{digest}.json"
        if not path.exists():
            raise ArtifactError(f"no artifact {digest[:12]}... in "
                                f"{self.root}")
        document = json.loads(path.read_text())
        return ArtifactRef(digest=document["digest"], kind=document["kind"],
                           name=document["name"],
                           files=tuple(document["files"]),
                           meta=document["meta"])

    def resolve(self, ref: str, kind: str | None = None) -> ArtifactRef:
        """An artifact by digest, digest prefix, or name.

        Names are not unique; a name (or prefix) matching several
        artifacts is an error listing the candidates.
        """
        matches = [artifact for artifact in self.list(kind=kind)
                   if artifact.digest == ref
                   or artifact.digest.startswith(ref)
                   or artifact.name == ref]
        if not matches:
            raise ArtifactError(f"no artifact matching {ref!r} in "
                                f"{self.root}")
        if len(matches) > 1:
            listing = ", ".join(f"{a.name}@{a.digest[:12]}"
                                for a in matches)
            raise ArtifactError(f"{ref!r} is ambiguous: {listing}")
        return matches[0]

    def materialize(self, digest: str, dest: str | Path) -> Path:
        """Write an artifact's files out under ``dest``; returns ``dest``."""
        artifact = self.get(digest)
        dest = Path(dest)
        for entry in artifact.files:
            target = dest / entry["path"]
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(self.open_blob(entry["sha256"]), target)
        return dest

    def read_bytes(self, digest: str, path: str | None = None) -> bytes:
        """One member file's bytes (the only file when ``path`` omitted)."""
        artifact = self.get(digest)
        if path is None:
            if len(artifact.files) != 1:
                raise ArtifactError(
                    f"artifact {artifact.name} has {len(artifact.files)} "
                    f"files; pass path=")
            entry = artifact.files[0]
        else:
            matching = [e for e in artifact.files if e["path"] == path]
            if not matching:
                raise ArtifactError(f"artifact {artifact.name} has no "
                                    f"member {path!r}")
            entry = matching[0]
        return self.open_blob(entry["sha256"]).read_bytes()

    # -- enumeration / verification ---------------------------------------

    def list(self, kind: str | None = None) -> list[ArtifactRef]:
        """All artifacts (optionally one kind), sorted by (kind, name)."""
        artifacts = []
        if self.manifests_dir.is_dir():
            for path in sorted(self.manifests_dir.glob("*.json")):
                try:
                    artifact = self.get(path.stem)
                except (ArtifactError, json.JSONDecodeError, KeyError):
                    continue
                if kind is None or artifact.kind == kind:
                    artifacts.append(artifact)
        artifacts.sort(key=lambda a: (a.kind, a.name, a.digest))
        return artifacts

    def __iter__(self) -> Iterator[ArtifactRef]:
        return iter(self.list())

    def __len__(self) -> int:
        return len(self.list())

    def verify(self, digest: str | None = None) -> list[str]:
        """Recheck blob hashes and manifest digests; returns the problems.

        With ``digest``, verifies one artifact; otherwise the whole
        store.  An empty list means everything matches its address.
        """
        artifacts = [self.get(digest)] if digest is not None else self.list()
        problems = []
        for artifact in artifacts:
            core = manifest_core(artifact.kind, artifact.name,
                                 list(artifact.files), dict(artifact.meta))
            if manifest_digest(core) != artifact.digest:
                problems.append(f"{artifact.digest[:12]}: manifest content "
                                f"does not hash to its digest")
            for entry in artifact.files:
                blob = self.blob_path(entry["sha256"])
                if not blob.exists():
                    problems.append(f"{artifact.name}: missing blob for "
                                    f"{entry['path']}")
                    continue
                if _hash_file(blob) != entry["sha256"]:
                    problems.append(f"{artifact.name}: blob for "
                                    f"{entry['path']} is corrupted")
        return problems

    def _quarantine(self, path: Path) -> dict:
        """Move one corrupt file into ``quarantine/`` (never clobbers)."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = self.quarantine_dir / path.name
        suffix = 0
        while dest.exists():
            suffix += 1
            dest = self.quarantine_dir / f"{path.name}.{suffix}"
        os.replace(path, dest)
        return {"from": str(path), "to": str(dest)}

    def scrub(self, quarantine: bool = True) -> dict:
        """Full-store integrity pass: detect, quarantine, re-verify.

        Three sweeps:

        1. every blob under ``objects/`` is re-hashed; a file whose
           content no longer hashes to its name is corrupt and (with
           ``quarantine=True``) moved into ``quarantine/``;
        2. every manifest is re-parsed and its digest recomputed;
           unreadable or mis-addressed manifests quarantine the same
           way;
        3. what survived is re-verified manifest-by-manifest, so blobs
           that went missing (including ones just quarantined) are
           reported per artifact.

        Returns a JSON-able report; ``report["clean"]`` is True only
        when all three sweeps found nothing.  A store whose corrupt
        blobs were quarantined reports *not* clean until the content is
        re-put (the vacant address self-heals on the next write).
        """
        report: dict = {"blobs_scanned": 0, "manifests_scanned": 0,
                        "corrupt_blobs": [], "corrupt_manifests": [],
                        "missing_blobs": [], "quarantined": []}
        if self.objects_dir.is_dir():
            for path in sorted(self.objects_dir.rglob("*")):
                if not path.is_file() or path.name.startswith("."):
                    continue        # dotfiles are in-flight temp writes
                report["blobs_scanned"] += 1
                actual = _hash_file(path)
                if actual != path.name:
                    report["corrupt_blobs"].append(
                        {"digest": path.name, "actual_sha256": actual})
                    if quarantine:
                        report["quarantined"].append(self._quarantine(path))
        if self.manifests_dir.is_dir():
            for path in sorted(self.manifests_dir.glob("*.json")):
                if path.name.startswith("."):
                    continue
                report["manifests_scanned"] += 1
                problem = None
                try:
                    document = json.loads(path.read_text())
                    core = manifest_core(document["kind"], document["name"],
                                         list(document["files"]),
                                         dict(document["meta"]))
                    if manifest_digest(core) != path.stem:
                        problem = ("manifest content does not hash to "
                                   "its digest")
                except (json.JSONDecodeError, KeyError, TypeError) as error:
                    problem = f"unreadable manifest: {error}"
                if problem is not None:
                    report["corrupt_manifests"].append(
                        {"digest": path.stem, "problem": problem})
                    if quarantine:
                        report["quarantined"].append(self._quarantine(path))
        for artifact in self.list():
            for entry in artifact.files:
                if not self.blob_path(entry["sha256"]).exists():
                    report["missing_blobs"].append(
                        {"artifact": artifact.name,
                         "digest": artifact.digest,
                         "path": entry["path"],
                         "sha256": entry["sha256"]})
        report["clean"] = not (report["corrupt_blobs"]
                               or report["corrupt_manifests"]
                               or report["missing_blobs"])
        return report

    def stats(self) -> dict:
        """Counts and sizes for ``repro fleet status``."""
        artifacts = self.list()
        kinds: dict[str, int] = {}
        for artifact in artifacts:
            kinds[artifact.kind] = kinds.get(artifact.kind, 0) + 1
        blob_bytes = sum(path.stat().st_size
                         for path in self.objects_dir.rglob("*")
                         if path.is_file()) if self.objects_dir.is_dir() \
            else 0
        quarantined = sum(1 for path in self.quarantine_dir.iterdir()
                          if path.is_file()) \
            if self.quarantine_dir.is_dir() else 0
        return {"root": str(self.root), "artifacts": len(artifacts),
                "kinds": kinds, "blob_bytes": blob_bytes,
                "quarantined": quarantined}
