"""Deterministic fault injection: prove the fleet survives what it claims.

PR 9 gave the fleet leases, supervision, retries, and scrub.  None of
that is worth much unasserted, so this module makes failure a test
input: a :class:`FaultPlan` is a seeded, JSON-round-trippable list of
:class:`Fault` records, and the appliers here fire them at deterministic
points in a drain or a request stream.  The same plan file replays the
same injected faults, which is what lets the kill -9 tests and the CI
``chaos-smoke`` job assert exact recovery behavior instead of "it
usually survives".

Fault kinds
-----------

``kill_worker``
    SIGKILL the worker process in slot ``target`` once ``at`` jobs (or
    requests) have finished — the lease reaper / router failover path.
``stall_worker``
    SIGSTOP the slot for ``seconds``, then SIGCONT.  The stalled
    worker's heartbeats stop, its lease expires, the job is requeued;
    on resume its late result loses the completion rename
    (``LeaseLostError``) and is discarded.
``corrupt_blob``
    Flip one byte in the ``target``-th blob (sorted order) of an
    artifact store — detected and quarantined by
    :meth:`ArtifactStore.scrub`.
``garble_message``
    Send an unparseable message down a :class:`ProcessWorker` pipe; the
    child exits cleanly, the router's crash detection fails in-flight
    futures fast and the supervisor restarts the worker.

Two appliers consume plans: :class:`PoolChaos` hooks
``WorkerPool.run_until_drained(on_poll=...)`` (trigger unit: jobs
finished), and :class:`RouterChaos` wraps ``FleetRouter.submit``
(trigger unit: requests submitted).  ``repro fleet chaos`` drives the
pool scenario end to end and prints the report the CI job asserts on.
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.fleet.artifacts import ArtifactStore
from repro.fleet.pool import WorkerPool

FAULT_KINDS = ("kill_worker", "stall_worker", "corrupt_blob",
               "garble_message")


class ChaosError(Exception):
    """A malformed fault plan or an injection that cannot apply."""


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: what to break, at which progress point."""

    kind: str                 # one of FAULT_KINDS
    at: int = 0               # trigger: jobs finished / requests sent
    target: int = 0           # worker slot or blob index (modulo count)
    seconds: float = 1.0      # stall duration (stall_worker only)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ChaosError(f"unknown fault kind {self.kind!r} "
                             f"(have {FAULT_KINDS})")
        if self.at < 0:
            raise ChaosError(f"fault trigger must be >= 0, got {self.at}")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "at": self.at, "target": self.target,
                "seconds": self.seconds}

    @classmethod
    def from_dict(cls, document: dict) -> "Fault":
        return cls(kind=document["kind"], at=int(document.get("at", 0)),
                   target=int(document.get("target", 0)),
                   seconds=float(document.get("seconds", 1.0)))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable fault schedule (JSON round-trips exactly)."""

    seed: int
    faults: tuple = field(default_factory=tuple)

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, document: dict) -> "FaultPlan":
        return cls(seed=int(document.get("seed", 0)),
                   faults=tuple(Fault.from_dict(entry)
                                for entry in document.get("faults", [])))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=1,
                                   sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def generate(cls, seed: int, workers: int = 3, jobs: int = 6,
                 count: int = 2, kinds=("kill_worker", "corrupt_blob")
                 ) -> "FaultPlan":
        """A deterministic plan: same seed, same faults, every time."""
        if workers < 1:
            raise ChaosError(f"workers must be >= 1, got {workers}")
        rng = random.Random(seed)
        faults = []
        for index in range(count):
            kind = kinds[index % len(kinds)]
            # Trigger inside the drain (never at 0 or the last job) so
            # the fault lands mid-flight, which is the interesting case.
            at = rng.randrange(1, max(2, jobs - 1))
            faults.append(Fault(kind=kind, at=at,
                                target=rng.randrange(workers),
                                seconds=round(0.5 + rng.random(), 3)))
        faults.sort(key=lambda fault: (fault.at, fault.kind, fault.target))
        return cls(seed=seed, faults=tuple(faults))


# -- low-level injection primitives ----------------------------------------

def flip_byte(path: str | Path, offset: int = 0) -> dict:
    """Invert one byte of a file in place (the bit-rot primitive)."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ChaosError(f"{path} is empty; nothing to corrupt")
    offset %= len(data)
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
    return {"path": str(path), "offset": offset, "size": len(data)}


def corrupt_blob(artifacts_root: str | Path, index: int = 0) -> dict | None:
    """Flip a byte in the ``index``-th blob of an artifact store.

    Returns the event record, or None when the store has no blobs yet
    (the applier retries on the next tick).
    """
    store = ArtifactStore(artifacts_root)
    if not store.objects_dir.is_dir():
        return None
    blobs = sorted(path for path in store.objects_dir.rglob("*")
                   if path.is_file() and not path.name.startswith("."))
    if not blobs:
        return None
    blob = blobs[index % len(blobs)]
    event = flip_byte(blob, offset=len(blob.name))
    event["digest"] = blob.name
    return event


def kill_process(pid: int) -> bool:
    """SIGKILL, tolerant of already-dead targets."""
    try:
        os.kill(pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        return False
    return True


def stall_process(pid: int, seconds: float) -> bool:
    """SIGSTOP now, SIGCONT after ``seconds`` (timer thread)."""
    try:
        os.kill(pid, signal.SIGSTOP)
    except (ProcessLookupError, PermissionError):
        return False

    def resume() -> None:
        try:
            os.kill(pid, signal.SIGCONT)
        except (ProcessLookupError, PermissionError):
            pass

    timer = threading.Timer(seconds, resume)
    timer.daemon = True
    timer.start()
    return True


def garble_pipe(worker) -> bool:
    """Send an unparseable frame down a ProcessWorker's request pipe.

    The child's receive loop cannot unpack it, breaks out cleanly, and
    exits — exercising the router's crash-detect-and-restart path
    without any signal delivery.
    """
    try:
        with worker._send_lock:
            worker._conn.send("\x00garbled\x00")
    except (OSError, ValueError, AttributeError):
        return False
    return True


# -- plan appliers ---------------------------------------------------------

class PoolChaos:
    """Fire a plan's faults during ``WorkerPool.run_until_drained``.

    Pass :meth:`on_poll` as the pool's ``on_poll=`` hook.  The trigger
    unit is jobs finished (``done + failed``); each fault fires at most
    once and every injection lands in :attr:`events` so a test (or the
    CI job) can assert exactly what was broken.
    """

    def __init__(self, plan: FaultPlan,
                 artifacts: str | Path | None = None):
        self.plan = plan
        self.artifacts = artifacts
        self.events: list[dict] = []
        self._fired: set[int] = set()

    def on_poll(self, counts: dict, processes: dict) -> None:
        finished = counts.get("done", 0) + counts.get("failed", 0)
        for index, fault in enumerate(self.plan.faults):
            if index in self._fired or finished < fault.at:
                continue
            event = self._fire(fault, processes)
            if event is None:
                continue            # not applicable yet; retry next tick
            event.update(kind=fault.kind, at=fault.at,
                         finished=finished)
            self.events.append(event)
            self._fired.add(index)

    def _fire(self, fault: Fault, processes: dict) -> dict | None:
        if fault.kind in ("kill_worker", "stall_worker"):
            slots = sorted(processes)
            if not slots:
                return {"applied": False, "reason": "no worker processes"}
            slot = slots[fault.target % len(slots)]
            process = processes[slot]
            if process.pid is None or not process.is_alive():
                return {"applied": False, "slot": slot,
                        "reason": "worker already dead"}
            if fault.kind == "kill_worker":
                applied = kill_process(process.pid)
            else:
                applied = stall_process(process.pid, fault.seconds)
            return {"applied": applied, "slot": slot, "pid": process.pid}
        if fault.kind == "corrupt_blob":
            if self.artifacts is None:
                return {"applied": False,
                        "reason": "no artifact store attached"}
            event = corrupt_blob(self.artifacts, index=fault.target)
            if event is None:
                return None         # no blobs yet; keep waiting
            event["applied"] = True
            return event
        return {"applied": False,
                "reason": f"{fault.kind} has no pool-side injection"}


class RouterChaos:
    """Fire a plan's faults around a :class:`FleetRouter` request stream.

    Wraps ``router.submit`` — call :meth:`submit` (or
    :meth:`forecast_result`) instead of the router's own.  The trigger
    unit is requests submitted through this wrapper.
    """

    def __init__(self, router, plan: FaultPlan,
                 artifacts: str | Path | None = None):
        self.router = router
        self.plan = plan
        self.artifacts = artifacts
        self.events: list[dict] = []
        self._fired: set[int] = set()
        self._requests = 0

    def _fire_due(self) -> None:
        for index, fault in enumerate(self.plan.faults):
            if index in self._fired or self._requests < fault.at:
                continue
            event = self._fire(fault)
            if event is None:
                continue
            event.update(kind=fault.kind, at=fault.at,
                         requests=self._requests)
            self.events.append(event)
            self._fired.add(index)

    def _fire(self, fault: Fault) -> dict | None:
        if fault.kind in ("kill_worker", "stall_worker", "garble_message"):
            workers = self.router.workers
            worker = workers[fault.target % len(workers)]
            pid = getattr(worker, "pid", None)
            if fault.kind == "garble_message":
                return {"applied": garble_pipe(worker),
                        "worker": worker.worker_id}
            if pid is None:
                return {"applied": False, "worker": worker.worker_id,
                        "reason": "worker has no process"}
            if fault.kind == "kill_worker":
                applied = kill_process(pid)
            else:
                applied = stall_process(pid, fault.seconds)
            return {"applied": applied, "worker": worker.worker_id,
                    "pid": pid}
        if fault.kind == "corrupt_blob":
            if self.artifacts is None:
                return {"applied": False,
                        "reason": "no artifact store attached"}
            event = corrupt_blob(self.artifacts, index=fault.target)
            if event is None:
                return None
            event["applied"] = True
            return event
        return {"applied": False,
                "reason": f"{fault.kind} has no router-side injection"}

    def submit(self, model_id: str, x, timeout: float | None = None):
        self._fire_due()
        self._requests += 1
        return self.router.submit(model_id, x, timeout=timeout)

    def forecast_result(self, model_id: str, x,
                        timeout: float | None = 30.0):
        return self.submit(model_id, x, timeout=timeout).result(
            timeout=timeout)


# -- the CLI / CI scenario -------------------------------------------------

def run_chaos_drain(spool: str | Path, plan: FaultPlan, workers: int = 3,
                    artifacts: str | Path | None = None,
                    timeout: float | None = 300.0,
                    lease_seconds: float | None = 2.0,
                    max_attempts: int | None = None,
                    max_restarts: int = 3,
                    publish: bool = False) -> dict:
    """Drain a job spool under a fault plan; returns the full report.

    The report carries the plan, every injected fault event, the final
    drain counts, and (when an artifact store is attached) its scrub
    report — everything the acceptance assertions need in one JSON
    document.  ``lease_seconds`` defaults low so a killed worker's
    orphan requeues within the drain instead of after it.
    """
    pool = WorkerPool(spool, workers=workers, publish=publish,
                      lease_seconds=lease_seconds,
                      max_attempts=max_attempts,
                      max_restarts=max_restarts)
    chaos = PoolChaos(plan, artifacts=artifacts)
    started = time.monotonic()
    counts = pool.run_until_drained(timeout=timeout,
                                    on_poll=chaos.on_poll)
    report = {
        "plan": plan.to_dict(),
        "workers": workers,
        "events": chaos.events,
        "counts": counts,
        "elapsed_seconds": round(time.monotonic() - started, 3),
    }
    if artifacts is not None:
        report["scrub"] = ArtifactStore(artifacts).scrub()
    return report
