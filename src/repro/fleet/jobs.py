"""File-backed job registry: the fleet's orchestration spool.

A :class:`JobStore` is a directory of JSON job documents partitioned by
state::

    <root>/pending/<job-id>.json
    <root>/running/<job-id>.json
    <root>/done/<job-id>.json       # result embedded
    <root>/failed/<job-id>.json     # error embedded

The state *is* the directory — a job moves between states via atomic
``os.rename``, which is also what makes claiming safe across processes:
when N workers race to claim the same pending job, exactly one rename
succeeds and the losers get ``FileNotFoundError`` and move on.  No
locks, no daemons, no sockets; any process that can see the directory
can submit, claim, or inspect work, which is exactly the property a
multi-process worker pool (and a human with ``ls``) needs.

Jobs are ordered: every submit records a monotonically increasing
``submit_index``, claims walk pending ids in sorted order, and result
collection sorts by the index — so a pool's output rows are invariant
to worker count and completion order, matching the repo's exactness
discipline.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
STATES = (PENDING, RUNNING, DONE, FAILED)

#: Name of the sentinel file a long-running pool polls to shut down.
STOP_SENTINEL = "stop"


class JobError(Exception):
    """A malformed job document or an invalid state transition."""


@dataclass
class Job:
    """One unit of fleet work (a JSON document on disk)."""

    job_id: str
    kind: str                      # "train" | "forecast" | ...
    payload: dict
    state: str = PENDING
    submit_index: int = 0
    worker: str | None = None      # who claimed it
    result: dict | None = None     # set on done
    error: str | None = None       # set on failed

    def to_dict(self) -> dict:
        return {"job_id": self.job_id, "kind": self.kind,
                "payload": self.payload, "state": self.state,
                "submit_index": self.submit_index, "worker": self.worker,
                "result": self.result, "error": self.error}

    @classmethod
    def from_dict(cls, document: dict) -> "Job":
        try:
            return cls(job_id=document["job_id"], kind=document["kind"],
                       payload=document["payload"],
                       state=document.get("state", PENDING),
                       submit_index=int(document.get("submit_index", 0)),
                       worker=document.get("worker"),
                       result=document.get("result"),
                       error=document.get("error"))
        except KeyError as missing:
            raise JobError(f"job document missing key {missing}") from None


class JobStore:
    """Submit / claim / complete over a spool directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        for state in STATES:
            (self.root / state).mkdir(parents=True, exist_ok=True)

    def _path(self, state: str, job_id: str) -> Path:
        return self.root / state / f"{job_id}.json"

    def _write(self, state: str, job: Job) -> None:
        path = self._path(state, job.job_id)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        try:
            tmp.write_text(json.dumps(job.to_dict(), sort_keys=True,
                                      indent=1) + "\n")
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    # -- submission --------------------------------------------------------

    def submit(self, kind: str, payload: dict,
               job_id: str | None = None) -> Job:
        """Enqueue one job; returns it in ``pending`` state.

        Auto-generated ids embed the submit index
        (``<kind>-<index:05d>``); explicit ids must be unique across
        every state directory.
        """
        explicit = job_id is not None
        while True:
            index = self._next_index()
            current_id = job_id if explicit else f"{kind}-{index:05d}"
            taken = next((state for state in STATES
                          if self._path(state, current_id).exists()), None)
            if taken is not None:
                if explicit:
                    raise JobError(f"job id {current_id!r} already exists "
                                   f"({taken})")
                continue   # another submitter landed this index; recompute
            job = Job(job_id=current_id, kind=kind, payload=dict(payload),
                      submit_index=index)
            # Exclusive create: two submitters racing to the same
            # auto-generated id cannot silently overwrite each other —
            # the loser recomputes the index and retries.
            try:
                with open(self._path(PENDING, current_id), "x",
                          encoding="utf-8") as handle:
                    handle.write(json.dumps(job.to_dict(), sort_keys=True,
                                            indent=1) + "\n")
            except FileExistsError:
                if explicit:
                    raise JobError(
                        f"job id {current_id!r} already exists") from None
                continue
            return job

    def _next_index(self) -> int:
        highest = -1
        for state in STATES:
            for path in (self.root / state).glob("*.json"):
                try:
                    document = json.loads(path.read_text())
                    highest = max(highest,
                                  int(document.get("submit_index", -1)))
                except (json.JSONDecodeError, OSError, ValueError):
                    continue
        return highest + 1

    # -- claiming ----------------------------------------------------------

    def claim(self, worker: str) -> Job | None:
        """Atomically move the oldest pending job to running, or ``None``.

        Safe under concurrent claimers: the rename either succeeds (this
        worker owns the job) or raises (another worker won; try the next
        pending id).
        """
        pending_dir = self.root / PENDING
        for path in sorted(pending_dir.glob("*.json")):
            running = self._path(RUNNING, path.stem)
            try:
                os.rename(path, running)
            except FileNotFoundError:
                continue        # lost the race for this one
            try:
                job = Job.from_dict(json.loads(running.read_text()))
            except (json.JSONDecodeError, JobError) as error:
                failed = Job(job_id=path.stem, kind="?", payload={},
                             state=FAILED, error=f"unreadable job: {error}")
                self._write(FAILED, failed)
                running.unlink(missing_ok=True)
                continue
            job.state = RUNNING
            job.worker = worker
            self._write(RUNNING, job)
            return job
        return None

    # -- completion --------------------------------------------------------

    def _finish(self, job: Job, state: str) -> None:
        self._write(state, job)
        self._path(RUNNING, job.job_id).unlink(missing_ok=True)

    def complete(self, job: Job, result: dict) -> Job:
        """Record a successful result and move the job to ``done``."""
        job.state = DONE
        job.result = dict(result)
        self._finish(job, DONE)
        return job

    def fail(self, job: Job, error: str) -> Job:
        """Record a failure and move the job to ``failed``."""
        job.state = FAILED
        job.error = str(error)
        self._finish(job, FAILED)
        return job

    # -- inspection --------------------------------------------------------

    def jobs(self, state: str | None = None) -> list[Job]:
        """Jobs in one state (or all), sorted by submit order."""
        states = [state] if state is not None else list(STATES)
        found = []
        for current in states:
            for path in sorted((self.root / current).glob("*.json")):
                try:
                    job = Job.from_dict(json.loads(path.read_text()))
                except (json.JSONDecodeError, JobError):
                    continue
                job.state = current   # the directory is the truth
                found.append(job)
        found.sort(key=lambda job: job.submit_index)
        return found

    def get(self, job_id: str) -> Job:
        for state in STATES:
            path = self._path(state, job_id)
            if path.exists():
                job = Job.from_dict(json.loads(path.read_text()))
                job.state = state
                return job
        raise JobError(f"no job {job_id!r} under {self.root}")

    def counts(self) -> dict:
        """``{state: job count}`` for every state directory."""
        return {state: len(list((self.root / state).glob("*.json")))
                for state in STATES}

    def outstanding(self) -> int:
        counts = self.counts()
        return counts[PENDING] + counts[RUNNING]

    def wait(self, timeout: float | None = None,
             poll: float = 0.05) -> bool:
        """Block until no job is pending or running; ``False`` on timeout."""
        deadline = (time.perf_counter() + timeout
                    if timeout is not None else None)
        while self.outstanding():
            if deadline is not None and time.perf_counter() > deadline:
                return False
            time.sleep(poll)
        return True

    # -- pool shutdown sentinel -------------------------------------------

    @property
    def stop_requested(self) -> bool:
        return (self.root / STOP_SENTINEL).exists()

    def request_stop(self) -> None:
        """Ask long-running pool workers to exit after their current job."""
        (self.root / STOP_SENTINEL).touch()

    def clear_stop(self) -> None:
        (self.root / STOP_SENTINEL).unlink(missing_ok=True)
