"""File-backed job registry: the fleet's orchestration spool.

A :class:`JobStore` is a directory of JSON job documents partitioned by
state::

    <root>/pending/<job-id>.json
    <root>/running/<job-id>.json
    <root>/done/<job-id>.json       # result embedded
    <root>/failed/<job-id>.json     # error embedded

The state *is* the directory — a job moves between states via atomic
``os.rename``, which is also what makes claiming safe across processes:
when N workers race to claim the same pending job, exactly one rename
succeeds and the losers get ``FileNotFoundError`` and move on.  No
locks, no daemons, no sockets; any process that can see the directory
can submit, claim, or inspect work, which is exactly the property a
multi-process worker pool (and a human with ``ls``) needs.

Jobs are ordered: every submit records a monotonically increasing
``submit_index``, claims walk pending ids in sorted order, and result
collection sorts by the index — so a pool's output rows are invariant
to worker count and completion order, matching the repo's exactness
discipline.

**Leases.**  A claim is a *lease*, not ownership forever: every claim
stamps the running document with a deadline (``time.monotonic()``-based,
which is system-wide on Linux, so every process on the machine reads the
same clock) that the worker must keep refreshing via :meth:`JobStore.heartbeat`.
A worker that is SIGKILLed, wedged, or partitioned stops heartbeating,
its lease expires, and :meth:`JobStore.reap` moves the orphan back to
``pending/`` with its ``submit_index`` (ordering survives requeue) and
its ``attempts`` counter intact — or to ``failed/`` once the attempt
budget is spent, so a poison job cannot ping-pong forever.

Completion is *rename-first*: :meth:`complete`/:meth:`fail` atomically
rename ``running/<id>.json`` to the destination state before rewriting
it with the result.  Exactly one of {finishing worker, reaper} wins that
rename; the loser raises/skips.  A stale worker that finishes after its
job was requeued gets :class:`LeaseLostError` and discards its result —
the job can be *executed* more than once under pathological stalls
(executors are deterministic, so the bytes match), but it is *completed*
exactly once, which is what keeps drained output duplicate-free.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
STATES = (PENDING, RUNNING, DONE, FAILED)

#: Name of the sentinel file a long-running pool polls to shut down.
STOP_SENTINEL = "stop"

#: Default seconds a claim stays valid without a heartbeat.
DEFAULT_LEASE_SECONDS = 30.0

#: Default total claims a job gets before the reaper fails it for good.
DEFAULT_MAX_ATTEMPTS = 3


class JobError(Exception):
    """A malformed job document or an invalid state transition."""


class LeaseLostError(JobError):
    """This worker's lease expired and the job was requeued elsewhere.

    Raised by :meth:`JobStore.complete`/:meth:`JobStore.fail` when the
    running document is gone — the reaper (or a racing finisher) won the
    completion rename.  The caller must discard its result.
    """


@dataclass
class Job:
    """One unit of fleet work (a JSON document on disk)."""

    job_id: str
    kind: str                      # "train" | "forecast" | ...
    payload: dict
    state: str = PENDING
    submit_index: int = 0
    worker: str | None = None      # who claimed it
    result: dict | None = None     # set on done
    error: str | None = None       # set on failed
    attempts: int = 0              # claims so far (bounded by the reaper)
    lease_deadline: float | None = None   # monotonic; None when not running

    def to_dict(self) -> dict:
        return {"job_id": self.job_id, "kind": self.kind,
                "payload": self.payload, "state": self.state,
                "submit_index": self.submit_index, "worker": self.worker,
                "result": self.result, "error": self.error,
                "attempts": self.attempts,
                "lease_deadline": self.lease_deadline}

    @classmethod
    def from_dict(cls, document: dict) -> "Job":
        try:
            return cls(job_id=document["job_id"], kind=document["kind"],
                       payload=document["payload"],
                       state=document.get("state", PENDING),
                       submit_index=int(document.get("submit_index", 0)),
                       worker=document.get("worker"),
                       result=document.get("result"),
                       error=document.get("error"),
                       attempts=int(document.get("attempts", 0)),
                       lease_deadline=document.get("lease_deadline"))
        except KeyError as missing:
            raise JobError(f"job document missing key {missing}") from None


class JobStore:
    """Submit / claim / complete over a spool directory.

    ``lease_seconds`` is how long a claim stays valid without a
    heartbeat; ``max_attempts`` is the total number of claims a job gets
    before :meth:`reap` moves the expired orphan to ``failed/`` instead
    of requeueing it.
    """

    def __init__(self, root: str | Path,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS):
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, "
                             f"got {lease_seconds}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, "
                             f"got {max_attempts}")
        self.root = Path(root)
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        for state in STATES:
            (self.root / state).mkdir(parents=True, exist_ok=True)

    def _path(self, state: str, job_id: str) -> Path:
        return self.root / state / f"{job_id}.json"

    def _write(self, state: str, job: Job) -> None:
        path = self._path(state, job.job_id)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        try:
            tmp.write_text(json.dumps(job.to_dict(), sort_keys=True,
                                      indent=1) + "\n")
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    # -- submission --------------------------------------------------------

    def submit(self, kind: str, payload: dict,
               job_id: str | None = None) -> Job:
        """Enqueue one job; returns it in ``pending`` state.

        Auto-generated ids embed the submit index
        (``<kind>-<index:05d>``); explicit ids must be unique across
        every state directory.
        """
        explicit = job_id is not None
        while True:
            index = self._next_index()
            current_id = job_id if explicit else f"{kind}-{index:05d}"
            taken = next((state for state in STATES
                          if self._path(state, current_id).exists()), None)
            if taken is not None:
                if explicit:
                    raise JobError(f"job id {current_id!r} already exists "
                                   f"({taken})")
                continue   # another submitter landed this index; recompute
            job = Job(job_id=current_id, kind=kind, payload=dict(payload),
                      submit_index=index)
            # Exclusive create: two submitters racing to the same
            # auto-generated id cannot silently overwrite each other —
            # the loser recomputes the index and retries.
            try:
                with open(self._path(PENDING, current_id), "x",
                          encoding="utf-8") as handle:
                    handle.write(json.dumps(job.to_dict(), sort_keys=True,
                                            indent=1) + "\n")
            except FileExistsError:
                if explicit:
                    raise JobError(
                        f"job id {current_id!r} already exists") from None
                continue
            return job

    def _next_index(self) -> int:
        highest = -1
        for state in STATES:
            for path in (self.root / state).glob("*.json"):
                try:
                    document = json.loads(path.read_text())
                    highest = max(highest,
                                  int(document.get("submit_index", -1)))
                except (json.JSONDecodeError, OSError, ValueError):
                    continue
        return highest + 1

    # -- claiming ----------------------------------------------------------

    def claim(self, worker: str) -> Job | None:
        """Atomically move the oldest pending job to running, or ``None``.

        Safe under concurrent claimers: the rename either succeeds (this
        worker owns the job) or raises (another worker won; try the next
        pending id).  The claim is a lease: the running document carries
        a ``lease_deadline`` this worker must refresh via
        :meth:`heartbeat` before it expires, and an incremented
        ``attempts`` counter the reaper budgets against.
        """
        pending_dir = self.root / PENDING
        for path in sorted(pending_dir.glob("*.json")):
            running = self._path(RUNNING, path.stem)
            try:
                os.rename(path, running)
            except FileNotFoundError:
                continue        # lost the race for this one
            try:
                job = Job.from_dict(json.loads(running.read_text()))
            except (json.JSONDecodeError, JobError) as error:
                failed = Job(job_id=path.stem, kind="?", payload={},
                             state=FAILED, error=f"unreadable job: {error}")
                self._write(FAILED, failed)
                running.unlink(missing_ok=True)
                continue
            job.state = RUNNING
            job.worker = worker
            job.attempts += 1
            job.lease_deadline = time.monotonic() + self.lease_seconds
            self._write(RUNNING, job)
            return job
        return None

    def heartbeat(self, job: Job) -> bool:
        """Refresh a running job's lease; ``False`` if the lease is gone.

        Best-effort: a reaper racing this refresh in the tiny window
        between the existence check and the rewrite can still requeue the
        job — the rename-first completion protocol, not the heartbeat, is
        what guarantees single completion.
        """
        if not self._path(RUNNING, job.job_id).exists():
            return False
        job.lease_deadline = time.monotonic() + self.lease_seconds
        self._write(RUNNING, job)
        return True

    # -- completion --------------------------------------------------------

    def _finish(self, job: Job, state: str) -> None:
        # Rename first: exactly one of {this finisher, the reaper} gets
        # to move the running document, so a job whose lease was reaped
        # away cannot also land a (duplicate) result.
        running = self._path(RUNNING, job.job_id)
        try:
            os.rename(running, self._path(state, job.job_id))
        except FileNotFoundError:
            raise LeaseLostError(
                f"job {job.job_id!r} is no longer running under "
                f"{self.root} (lease expired and the job was requeued, "
                f"or another finisher won); result discarded") from None
        self._write(state, job)

    def complete(self, job: Job, result: dict) -> Job:
        """Record a successful result and move the job to ``done``.

        Raises :class:`LeaseLostError` when this worker's lease was
        reaped away — the caller must discard the result.
        """
        job.state = DONE
        job.result = dict(result)
        job.lease_deadline = None
        self._finish(job, DONE)
        return job

    def fail(self, job: Job, error: str) -> Job:
        """Record a failure and move the job to ``failed``.

        Raises :class:`LeaseLostError` when the lease was reaped away.
        """
        job.state = FAILED
        job.error = str(error)
        job.lease_deadline = None
        self._finish(job, FAILED)
        return job

    # -- the reaper --------------------------------------------------------

    def reap(self, now: float | None = None) -> list[dict]:
        """Requeue (or terminally fail) running jobs whose lease expired.

        Returns one ``{"job_id", "action", "attempts", "worker"}`` entry
        per orphan handled: ``action`` is ``"requeued"`` (back to
        ``pending/`` with ``submit_index`` and ``attempts`` intact) or
        ``"failed"`` (the attempt budget is spent).  Safe to call from
        any process at any time; races with finishing workers and other
        reapers resolve through the same atomic renames claims use.
        """
        now = time.monotonic() if now is None else now
        actions: list[dict] = []
        for path in sorted((self.root / RUNNING).glob("*.json")):
            try:
                job = Job.from_dict(json.loads(path.read_text()))
            except (json.JSONDecodeError, JobError, OSError):
                continue
            if job.lease_deadline is None or now <= job.lease_deadline:
                continue
            expired_worker = job.worker
            if job.attempts >= self.max_attempts:
                try:
                    os.rename(path, self._path(FAILED, job.job_id))
                except FileNotFoundError:
                    continue    # the worker (or another reaper) won
                job.state = FAILED
                job.worker = None
                job.lease_deadline = None
                job.error = (f"lease expired on worker "
                             f"{expired_worker!r}; attempt "
                             f"{job.attempts}/{self.max_attempts} "
                             f"budget spent")
                self._write(FAILED, job)
                actions.append({"job_id": job.job_id, "action": "failed",
                                "attempts": job.attempts,
                                "worker": expired_worker})
            else:
                # The rename alone IS the requeue: a racing claimer may
                # take the job the instant it lands in pending/, so no
                # follow-up rewrite is allowed (it could resurrect a
                # stale pending doc next to the new running one).  The
                # stale worker/lease fields in the document are dead
                # weight until the next claim re-stamps them.
                try:
                    os.rename(path, self._path(PENDING, job.job_id))
                except FileNotFoundError:
                    continue
                actions.append({"job_id": job.job_id, "action": "requeued",
                                "attempts": job.attempts,
                                "worker": expired_worker})
        return actions

    # -- inspection --------------------------------------------------------

    def jobs(self, state: str | None = None) -> list[Job]:
        """Jobs in one state (or all), sorted by submit order."""
        states = [state] if state is not None else list(STATES)
        found = []
        for current in states:
            for path in sorted((self.root / current).glob("*.json")):
                try:
                    job = Job.from_dict(json.loads(path.read_text()))
                except (json.JSONDecodeError, JobError):
                    continue
                job.state = current   # the directory is the truth
                found.append(job)
        found.sort(key=lambda job: job.submit_index)
        return found

    def get(self, job_id: str) -> Job:
        for state in STATES:
            path = self._path(state, job_id)
            if path.exists():
                job = Job.from_dict(json.loads(path.read_text()))
                job.state = state
                return job
        raise JobError(f"no job {job_id!r} under {self.root}")

    def counts(self) -> dict:
        """``{state: job count}`` for every state directory."""
        return {state: len(list((self.root / state).glob("*.json")))
                for state in STATES}

    def outstanding(self) -> int:
        counts = self.counts()
        return counts[PENDING] + counts[RUNNING]

    def wait(self, timeout: float | None = None,
             poll: float = 0.05) -> bool:
        """Block until no job is pending or running; ``False`` on timeout.

        All spool deadlines — this wait, the pool drain, and job leases —
        share ``time.monotonic``, so a lease deadline written by one
        process means the same thing to every other process reaping it.
        """
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while self.outstanding():
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(poll)
        return True

    # -- pool shutdown sentinel -------------------------------------------

    @property
    def stop_requested(self) -> bool:
        return (self.root / STOP_SENTINEL).exists()

    def request_stop(self) -> None:
        """Ask long-running pool workers to exit after their current job."""
        (self.root / STOP_SENTINEL).touch()

    def clear_stop(self) -> None:
        (self.root / STOP_SENTINEL).unlink(missing_ok=True)
