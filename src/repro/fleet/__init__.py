"""repro.fleet — fleet-scale orchestration over the single-process stack.

Four layers, all stdlib + numpy, all preserving the repo's exactness
discipline (N workers produce byte-identical outputs to one):

* :mod:`repro.fleet.artifacts` — content-addressed artifact store
  converging dataset shards, training run directories, and serve
  checkpoints behind one ``put`` / ``get`` / ``verify`` interface, with
  a ``scrub`` pass that quarantines corrupt blobs.
* :mod:`repro.fleet.jobs` / :mod:`repro.fleet.pool` — file-backed job
  spool with atomic claims and lease-based orphan recovery, plus the
  supervised worker pool that drains it across N processes (train
  sweeps and batch forecasts route through this).
* :mod:`repro.fleet.router` — multi-worker serve front: shared forecast
  cache, admission control, queue-depth backpressure, worker
  supervision with circuit-broken restarts, crash failover with
  jittered-backoff retries, and ``fleet_*`` telemetry, duck-typing the
  engine so :class:`~repro.serve.http.ForecastServer` serves a fleet
  unchanged.
* :mod:`repro.fleet.chaos` — seeded, replayable fault injection
  (worker kills, stalls, garbled pipes, blob corruption) proving the
  recovery paths above deterministically.
"""

from repro.fleet.artifacts import ArtifactError, ArtifactRef, ArtifactStore
from repro.fleet.chaos import (
    ChaosError,
    Fault,
    FaultPlan,
    PoolChaos,
    RouterChaos,
    run_chaos_drain,
)
from repro.fleet.jobs import Job, JobError, JobStore, LeaseLostError
from repro.fleet.pool import EXECUTORS, PoolError, WorkerPool, executor, worker_loop
from repro.fleet.router import (
    CircuitBreaker,
    FleetBusyError,
    FleetRouter,
    ProcessWorker,
    ThreadWorker,
    WorkerCrashError,
    WorkerError,
)

__all__ = [
    "ArtifactError",
    "ArtifactRef",
    "ArtifactStore",
    "ChaosError",
    "CircuitBreaker",
    "EXECUTORS",
    "Fault",
    "FaultPlan",
    "FleetBusyError",
    "FleetRouter",
    "Job",
    "JobError",
    "JobStore",
    "LeaseLostError",
    "PoolChaos",
    "PoolError",
    "ProcessWorker",
    "RouterChaos",
    "ThreadWorker",
    "WorkerCrashError",
    "WorkerError",
    "WorkerPool",
    "executor",
    "run_chaos_drain",
    "worker_loop",
]
