"""repro.fleet — fleet-scale orchestration over the single-process stack.

Three layers, all stdlib + numpy, all preserving the repo's exactness
discipline (N workers produce byte-identical outputs to one):

* :mod:`repro.fleet.artifacts` — content-addressed artifact store
  converging dataset shards, training run directories, and serve
  checkpoints behind one ``put`` / ``get`` / ``verify`` interface.
* :mod:`repro.fleet.jobs` / :mod:`repro.fleet.pool` — file-backed job
  spool with atomic claims, plus the worker pool that drains it across
  N processes (train sweeps and batch forecasts route through this).
* :mod:`repro.fleet.router` — multi-worker serve front: shared forecast
  cache, admission control, queue-depth backpressure, and ``fleet_*``
  telemetry, duck-typing the engine so
  :class:`~repro.serve.http.ForecastServer` serves a fleet unchanged.
"""

from repro.fleet.artifacts import ArtifactError, ArtifactRef, ArtifactStore
from repro.fleet.jobs import Job, JobError, JobStore
from repro.fleet.pool import EXECUTORS, PoolError, WorkerPool, executor, worker_loop
from repro.fleet.router import (
    FleetBusyError,
    FleetRouter,
    ProcessWorker,
    ThreadWorker,
    WorkerError,
)

__all__ = [
    "ArtifactError",
    "ArtifactRef",
    "ArtifactStore",
    "EXECUTORS",
    "FleetBusyError",
    "FleetRouter",
    "Job",
    "JobError",
    "JobStore",
    "PoolError",
    "ProcessWorker",
    "ThreadWorker",
    "WorkerError",
    "WorkerPool",
    "executor",
    "worker_loop",
]
