"""Multi-worker serve front: route forecasts across N serving workers.

The single-process :class:`~repro.serve.engine.BatchingEngine` runs every
forward on one thread — its throughput ceiling is one core.  The router
scales past that by fanning requests across N *workers*, each running its
own engine over its own model instances (a model must never run two
forwards concurrently, so workers never share models):

* :class:`ThreadWorker` — an engine on a thread in this process, over an
  exclusively-owned :class:`~repro.serve.registry.ModelRegistry`.  Zero
  IPC; parallelism bounded by the GIL (numpy releases it in BLAS).
* :class:`ProcessWorker` — an engine in a child process fed over a
  ``multiprocessing`` pipe (binary array transfer, no JSON).  True
  multi-core parallelism; each child warm-loads the same checkpoint
  directory.

:class:`FleetRouter` in front of them adds the fleet-tier behaviors:

* **shared forecast cache** — one content-addressed
  :class:`~repro.serve.cache.ForecastCache` at the router, so a result
  computed by worker 2 serves a repeat request that would have routed to
  worker 0.  Forecasts are deterministic, which is what makes the shared
  cache (and everything else here) byte-exact: an N-worker fleet returns
  bit-identical images to a single engine.
* **admission control** — at most ``max_inflight`` requests in flight;
  excess is rejected immediately with :class:`FleetBusyError` (HTTP 503)
  instead of queueing without bound.
* **queue-depth backpressure** — requests route to the least-loaded
  live worker; when even that worker's depth reaches
  ``worker_queue_limit``, the request is rejected rather than parked on
  a queue whose latency is already blown.
* **fleet telemetry** — ``fleet_*`` metrics (routed-per-worker,
  rejections, in-flight, latency) published through
  :class:`repro.obs.publish.TelemetryPublisher`, while every worker
  publishes its own ``serve_*`` engine metrics — ``repro obs top`` over
  the shared directory shows the whole fleet.

The router deliberately duck-types :class:`BatchingEngine`'s serving
surface (``forecast_result``, ``stats``, ``metrics``, ``registry``,
``running``/``start``/``stop``), so
:class:`repro.serve.http.ForecastServer` serves a fleet unchanged.

**Fault tolerance** (the availability tier on top of the scaling tier):

* **crash detection** — a SIGKILLed or wedged worker's pipe closes; the
  receiver thread fails every pending future *immediately* with a typed
  :class:`WorkerCrashError` instead of letting callers hang to their
  timeout.
* **supervision** — a background supervisor probes worker liveness
  (process state plus an explicit ping/pong heartbeat over the pipe,
  which also catches a process that is alive but wedged), and restarts
  dead workers — the child re-warms its models on the way up — behind a
  per-worker circuit breaker so a crash-looping checkpoint cannot melt
  the fleet with restart churn.
* **retry/failover** — forecasts are idempotent (content-digest keyed),
  so a request failed by a worker crash is resubmitted to a surviving
  worker under a bounded retry budget with jittered exponential backoff;
  only when the budget is spent does the caller see the error.
  Saturation (:class:`FleetBusyError`) carries a ``retry_after`` hint
  that the HTTP layer surfaces as ``Retry-After`` on the 503.
* **timeout accounting** — requests that die of timeout are counted in
  ``fleet_requests_expired_total`` (and ``stats()["expired"]``) instead
  of vanishing silently.
"""

from __future__ import annotations

import itertools
import random
import signal
import threading
import time
from collections import deque
from concurrent.futures import Future
from pathlib import Path

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.publish import TELEMETRY_DIR, TelemetryPublisher
from repro.obs.trace import Tracer, get_tracer
from repro.serve.cache import ForecastCache, input_digest
from repro.serve.engine import BatchingEngine, ForecastResult
from repro.serve.registry import ModelRegistry


class FleetBusyError(RuntimeError):
    """The fleet is saturated; the request was rejected, not queued.

    ``reason`` is ``"admission"`` (global in-flight cap) or
    ``"backpressure"`` (every worker's queue is at its depth limit).
    Subclasses ``RuntimeError`` so the HTTP layer maps it to 503.
    """

    def __init__(self, reason: str, message: str,
                 retry_after: float | None = None):
        super().__init__(message)
        self.reason = reason
        #: Suggested client wait before retrying; the HTTP layer renders
        #: it as a ``Retry-After`` header on the 503.
        self.retry_after = retry_after


class WorkerError(RuntimeError):
    """A worker process died or failed to come up."""


class WorkerCrashError(WorkerError):
    """The worker process died with this request in flight.

    Typed so the router (and callers) can distinguish a crashed worker —
    safe to retry elsewhere, the request never completed — from a
    request the worker itself rejected.
    """


def backoff_seconds(attempt: int, base: float, cap: float,
                    rng: random.Random) -> float:
    """Jittered exponential backoff: ``base * 2^attempt``, capped,
    scaled by a uniform [0.5, 1.0) jitter drawn from ``rng``."""
    return min(cap, base * (2.0 ** attempt)) * (0.5 + 0.5 * rng.random())


class CircuitBreaker:
    """Per-worker restart gate: closed -> open after ``threshold``
    failures inside ``window`` seconds -> half-open after ``cooldown``.

    Half-open admits restart probes; a probe failure reopens the breaker
    (restarting the cooldown), a success closes it and clears history.
    All timestamps are ``time.monotonic``.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, threshold: int = 3, window: float = 30.0,
                 cooldown: float = 5.0):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.window = window
        self.cooldown = cooldown
        self.state = self.CLOSED
        self._failures: deque[float] = deque()
        self._opened_at: float | None = None

    def _trim(self, now: float) -> None:
        while self._failures and now - self._failures[0] > self.window:
            self._failures.popleft()

    def record_failure(self, now: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        self._failures.append(now)
        self._trim(now)
        if self.state == self.HALF_OPEN \
                or len(self._failures) >= self.threshold:
            self.state = self.OPEN
            self._opened_at = now

    def record_success(self) -> None:
        self.state = self.CLOSED
        self._failures.clear()
        self._opened_at = None

    def allow(self, now: float | None = None) -> bool:
        """May a restart be attempted right now?"""
        now = time.monotonic() if now is None else now
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._opened_at is not None \
                    and now - self._opened_at >= self.cooldown:
                self.state = self.HALF_OPEN
                return True
            return False
        return True     # half-open: probe away

    @property
    def value(self) -> float:
        """Gauge encoding: 0 closed, 1 half-open, 2 open."""
        return {self.CLOSED: 0.0, self.HALF_OPEN: 1.0,
                self.OPEN: 2.0}[self.state]


# -- workers ---------------------------------------------------------------

class _WorkerBase:
    """Shared bookkeeping: the router tracks per-worker queue depth here."""

    def __init__(self, worker_id: str):
        self.worker_id = worker_id
        self._depth = 0          # in-flight requests, router-maintained

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def alive(self) -> bool:
        raise NotImplementedError

    def start(self) -> None:
        raise NotImplementedError

    def stop(self, timeout: float = 10.0) -> None:
        raise NotImplementedError

    def submit(self, model_id: str, x: np.ndarray,
               timeout: float | None) -> Future:
        """Dispatch one request; the future resolves to an (H, W, 3) image."""
        raise NotImplementedError


class ThreadWorker(_WorkerBase):
    """A :class:`BatchingEngine` on a thread, over an exclusive registry.

    The registry (and every model in it) must belong to this worker
    alone — two engines sharing a model would run concurrent forwards
    through shared layer caches.
    """

    def __init__(self, worker_id: str, registry: ModelRegistry,
                 max_batch: int = 8, max_wait_ms: float = 2.0,
                 obs_dir: str | Path | None = None,
                 publish_interval: float = 2.0,
                 threads: int | None = None,
                 inference_mode: str = "float32"):
        super().__init__(worker_id)
        self.metrics = MetricsRegistry()
        # threads is process-global: in-process workers share one gemm
        # pool, so the last-started worker's setting wins (process mode
        # gives each worker its own pool).
        self.engine = BatchingEngine(registry, max_batch=max_batch,
                                     max_wait_ms=max_wait_ms,
                                     metrics=self.metrics,
                                     threads=threads,
                                     inference_mode=inference_mode)
        self._publisher = None
        if obs_dir is not None:
            self._publisher = TelemetryPublisher(
                self.metrics, Path(obs_dir) / TELEMETRY_DIR, role="serve",
                worker=worker_id, interval=publish_interval)

    @property
    def alive(self) -> bool:
        return self.engine.running

    def start(self) -> None:
        self.engine.start()
        if self._publisher is not None:
            self._publisher.start()

    def stop(self, timeout: float = 10.0) -> None:
        if self._publisher is not None:
            self._publisher.stop()
        self.engine.stop(timeout=timeout)

    def restart(self, timeout: float = 10.0) -> None:
        """Restart the in-process engine (thread workers share our fate
        on real crashes; this recovers a stopped engine)."""
        if self.engine.running:
            self.engine.stop(timeout=timeout)
        self.engine.start()

    def submit(self, model_id: str, x: np.ndarray,
               timeout: float | None) -> Future:
        inner = self.engine.submit(model_id, x, timeout=timeout)
        outer: Future = Future()

        def resolve(done: Future) -> None:
            error = done.exception()
            if error is not None:
                outer.set_exception(error)
            else:
                outer.set_result(done.result().image)

        inner.add_done_callback(resolve)
        return outer


def _process_worker_main(conn, checkpoints: str, max_batch: int,
                         max_wait_ms: float, obs_dir: str | None,
                         worker_id: str, publish_interval: float,
                         threads: int | None = None,
                         inference_mode: str = "float32") -> None:
    """Child body: engine + registry fed from a pipe.

    Protocol (parent -> child): ``(req_id, model_id, x, timeout)``,
    ``("__ping__", token, None, None)`` liveness probes, or ``None`` to
    shut down.  (child -> parent): ``("__ready__", ids)`` once after
    loading, then ``(req_id, "ok", image)`` / ``(req_id, "error",
    message)`` per request in completion order, and ``(token, "pong",
    None)`` echoes for probes.  Any message the child cannot decode
    (a garbled pickle) is a protocol breach: the child shuts down
    cleanly and lets the parent's crash path restart it.
    """
    # A foreground Ctrl-C signals the whole process group; workers must
    # not die mid-recv with a traceback — the parent shuts them down
    # through the pipe sentinel.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        registry = ModelRegistry.from_directory(checkpoints)
        metrics = MetricsRegistry()
        engine = BatchingEngine(registry, max_batch=max_batch,
                                max_wait_ms=max_wait_ms, metrics=metrics,
                                warm_start=True, threads=threads,
                                inference_mode=inference_mode)
        engine.start()
    except Exception as error:
        conn.send(("__error__", f"{type(error).__name__}: {error}"))
        conn.close()
        return
    publisher = None
    if obs_dir is not None:
        publisher = TelemetryPublisher(
            metrics, Path(obs_dir) / TELEMETRY_DIR, role="serve",
            worker=worker_id, interval=publish_interval)
        publisher.start()
    conn.send(("__ready__", registry.model_ids))
    send_lock = threading.Lock()

    def sender(req_id: int, future: Future) -> None:
        error = future.exception()
        if error is not None:
            payload = (req_id, "error",
                       f"{type(error).__name__}: {error}")
        else:
            payload = (req_id, "ok", future.result().image)
        with send_lock:
            try:
                conn.send(payload)
            except OSError:
                pass   # parent went away; nothing left to tell it

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            except Exception:
                # Undecodable message (garbled pickle): the pipe can no
                # longer be trusted — exit cleanly; the supervisor's
                # crash path restarts this worker.
                break
            if message is None:
                break
            req_id, model_id, x, timeout = message
            if req_id == "__ping__":
                with send_lock:
                    try:
                        conn.send((model_id, "pong", None))
                    except OSError:
                        break
                continue
            try:
                future = engine.submit(model_id, x, timeout=timeout)
            except Exception as error:
                with send_lock:
                    conn.send((req_id, "error",
                               f"{type(error).__name__}: {error}"))
                continue
            future.add_done_callback(
                lambda done, req_id=req_id: sender(req_id, done))
    except (EOFError, OSError):
        pass
    finally:
        try:
            engine.stop()
        finally:
            if publisher is not None:
                publisher.stop()
            conn.close()


class ProcessWorker(_WorkerBase):
    """A serving engine in a child process, fed over a pipe.

    The child warm-loads ``checkpoints`` into its own registry, so its
    models are exclusive by construction.  Arrays cross the pipe via
    pickle (binary, exact — float32 bits survive the round trip).
    """

    def __init__(self, worker_id: str, checkpoints: str | Path,
                 max_batch: int = 8, max_wait_ms: float = 2.0,
                 obs_dir: str | Path | None = None,
                 publish_interval: float = 2.0,
                 start_timeout: float = 120.0,
                 threads: int | None = None,
                 inference_mode: str = "float32"):
        super().__init__(worker_id)
        self.checkpoints = str(checkpoints)
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.obs_dir = str(obs_dir) if obs_dir is not None else None
        self.publish_interval = publish_interval
        self.start_timeout = start_timeout
        self.threads = threads
        self.inference_mode = inference_mode
        self._process = None
        self._conn = None
        self._receiver: threading.Thread | None = None
        self._pending: dict[int, Future] = {}
        self._pending_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._req_ids = itertools.count()
        self._alive = False
        self.model_ids: list[str] = []
        #: Liveness bookkeeping the supervisor reads (monotonic stamps).
        self.started_at: float | None = None
        self.last_pong: float | None = None
        self.restarts = 0

    @property
    def alive(self) -> bool:
        # The receiver flips _alive on pipe EOF; the process check
        # catches a SIGKILL in the instant before the EOF is observed.
        return (self._alive and self._process is not None
                and self._process.is_alive())

    @property
    def pid(self) -> int | None:
        """The child's pid (the chaos harness's kill target)."""
        return self._process.pid if self._process is not None else None

    def start(self) -> None:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        self._conn, child_conn = ctx.Pipe()
        self._process = ctx.Process(
            target=_process_worker_main,
            args=(child_conn, self.checkpoints, self.max_batch,
                  self.max_wait_ms, self.obs_dir, self.worker_id,
                  self.publish_interval, self.threads,
                  self.inference_mode),
            name=f"fleet-{self.worker_id}", daemon=True)
        self._process.start()
        child_conn.close()
        if not self._conn.poll(self.start_timeout):
            self._process.terminate()
            raise WorkerError(f"worker {self.worker_id} did not come up "
                              f"within {self.start_timeout}s")
        status, payload = self._conn.recv()
        if status != "__ready__":
            self._process.join(5.0)
            raise WorkerError(f"worker {self.worker_id} failed to load "
                              f"{self.checkpoints}: {payload}")
        self.model_ids = list(payload)
        self._alive = True
        self.started_at = time.monotonic()
        self.last_pong = None
        self._receiver = threading.Thread(
            target=self._receive, args=(self._conn,),
            name=f"fleet-recv-{self.worker_id}", daemon=True)
        self._receiver.start()

    def _receive(self, conn) -> None:
        # conn is bound at thread creation: a restart() swaps
        # self._conn, and a lingering old receiver must never read from
        # the new incarnation's pipe.
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            except Exception:
                break   # garbled message: treat the pipe as dead
            if message is None:
                break
            req_id, status, payload = message
            if status == "pong":
                self.last_pong = time.monotonic()
                continue
            with self._pending_lock:
                future = self._pending.pop(req_id, None)
            if future is None:
                continue
            if status == "ok":
                payload.flags.writeable = False
                future.set_result(payload)
            else:
                error: Exception
                if "TimeoutError" in payload.split(":", 1)[0]:
                    error = TimeoutError(payload)
                else:
                    error = WorkerError(
                        f"worker {self.worker_id}: {payload}")
                future.set_exception(error)
        self._alive = False
        self._fail_pending(
            f"worker {self.worker_id} exited with requests in flight")

    def _fail_pending(self, message: str) -> None:
        """Fail every pending future fast with a typed crash error."""
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(WorkerCrashError(message))

    def ping(self) -> bool:
        """Send one liveness probe; the pong lands in :attr:`last_pong`."""
        if not self._alive:
            return False
        token = next(self._req_ids)
        try:
            with self._send_lock:
                self._conn.send(("__ping__", token, None, None))
        except (OSError, ValueError):
            return False
        return True

    def submit(self, model_id: str, x: np.ndarray,
               timeout: float | None) -> Future:
        if not self.alive:
            raise WorkerError(f"worker {self.worker_id} is not running")
        future: Future = Future()
        req_id = next(self._req_ids)
        with self._pending_lock:
            self._pending[req_id] = future
        try:
            with self._send_lock:
                self._conn.send((req_id, model_id,
                                 np.ascontiguousarray(x), timeout))
        except (OSError, ValueError) as error:
            with self._pending_lock:
                self._pending.pop(req_id, None)
            raise WorkerError(f"worker {self.worker_id} pipe is down: "
                              f"{error}") from None
        return future

    def restart(self, timeout: float = 10.0) -> None:
        """Tear down whatever is left of the child and start a fresh one.

        The replacement re-warms the checkpoint directory exactly like
        the first incarnation (``warm_start`` in the child).  Pending
        futures, if the receiver has not failed them already, fail with
        :class:`WorkerCrashError` — never silently hang.
        """
        self._alive = False
        process, conn = self._process, self._conn
        receiver = self._receiver
        if conn is not None:
            try:
                conn.close()    # forces the old receiver out of recv()
            except OSError:
                pass
        if process is not None:
            if process.is_alive():
                process.terminate()
            process.join(timeout)
            if process.is_alive():
                process.kill()
                process.join(5.0)
        if receiver is not None \
                and receiver is not threading.current_thread():
            receiver.join(timeout)
        self._fail_pending(
            f"worker {self.worker_id} restarted with requests in flight")
        self._process = None
        self._conn = None
        self._receiver = None
        self.start()
        self.restarts += 1

    def stop(self, timeout: float = 10.0) -> None:
        if self._process is None:
            return
        self._alive = False
        try:
            with self._send_lock:
                self._conn.send(None)
        except (OSError, ValueError):
            pass
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(5.0)
            raise WorkerError(f"worker {self.worker_id} did not stop "
                              f"within {timeout}s (terminated)")
        self._process = None


# -- the router ------------------------------------------------------------

def _failed_future(error: Exception) -> Future:
    future: Future = Future()
    future.set_exception(error)
    return future


class _NullWorker:
    """Stand-in dispatch target when no live worker exists for a retry."""

    worker_id = "(none)"
    _depth = 1          # _on_worker_done decrements it back to zero


class FleetRouter:
    """Admission-controlled request fan-out over N serving workers.

    Duck-types the :class:`BatchingEngine` serving surface so
    :class:`~repro.serve.http.ForecastServer` can serve it directly.
    """

    def __init__(self, workers: list, registry: ModelRegistry,
                 cache: ForecastCache | None = None,
                 max_inflight: int = 256, worker_queue_limit: int = 32,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 obs_dir: str | Path | None = None,
                 publish_interval: float = 2.0,
                 retry_budget: int = 2, retry_base: float = 0.05,
                 retry_cap: float = 1.0, retry_after: float = 0.5,
                 supervise: bool = True, supervise_interval: float = 0.5,
                 heartbeat_timeout: float = 10.0,
                 breaker_threshold: int = 3, breaker_window: float = 30.0,
                 breaker_cooldown: float = 5.0,
                 retry_seed: int | None = None):
        if not workers:
            raise ValueError("a fleet needs at least one worker")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, "
                             f"got {max_inflight}")
        if worker_queue_limit < 1:
            raise ValueError(f"worker_queue_limit must be >= 1, "
                             f"got {worker_queue_limit}")
        if retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, "
                             f"got {retry_budget}")
        self.workers = list(workers)
        ids = [worker.worker_id for worker in self.workers]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate worker ids: {ids}")
        self.registry = registry
        self.cache = cache
        self.max_inflight = max_inflight
        self.worker_queue_limit = worker_queue_limit
        self.retry_budget = retry_budget
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.retry_after = retry_after
        self.supervise = supervise
        self.supervise_interval = supervise_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.drift = None           # engine-surface parity (no monitor)
        self._lock = threading.Lock()
        self._inflight = 0
        self._running = False
        self._publisher = None
        self._rng = random.Random(retry_seed)
        self._breakers = {
            worker.worker_id: CircuitBreaker(
                threshold=breaker_threshold, window=breaker_window,
                cooldown=breaker_cooldown)
            for worker in self.workers}
        self._supervisor: threading.Thread | None = None
        self._supervisor_wake = threading.Event()
        self._timers: dict = {}      # pending retry Timer -> request state
        self._timer_lock = threading.Lock()
        if obs_dir is not None:
            self._publisher = TelemetryPublisher(
                self.metrics, Path(obs_dir) / TELEMETRY_DIR, role="router",
                worker="router", interval=publish_interval)
        self._register_metrics()

    @classmethod
    def local(cls, checkpoints: str | Path, workers: int = 2,
              mode: str = "process", max_batch: int = 8,
              max_wait_ms: float = 2.0,
              cache: ForecastCache | None = None,
              obs_dir: str | Path | None = None,
              publish_interval: float = 2.0,
              threads: int | None = None,
              inference_mode: str = "float32", **router_kwargs
              ) -> "FleetRouter":
        """Build a fleet over one checkpoint directory.

        ``mode="process"`` gives each worker its own process (true
        multi-core scaling); ``mode="thread"`` keeps them in-process
        (cheaper to start, GIL-bound).  Either way each worker loads its
        own model instances.  ``threads``/``inference_mode`` configure
        every worker's engine (per-process gemm threads and the
        float32/int8 eval variant).
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if mode not in ("process", "thread"):
            raise ValueError(f"mode must be 'process' or 'thread', "
                             f"got {mode!r}")
        registry = ModelRegistry.from_directory(checkpoints)
        built: list = []
        for index in range(workers):
            worker_id = f"w{index}"
            if mode == "process":
                built.append(ProcessWorker(
                    worker_id, checkpoints, max_batch=max_batch,
                    max_wait_ms=max_wait_ms, obs_dir=obs_dir,
                    publish_interval=publish_interval, threads=threads,
                    inference_mode=inference_mode))
            else:
                built.append(ThreadWorker(
                    worker_id, ModelRegistry.from_directory(checkpoints),
                    max_batch=max_batch, max_wait_ms=max_wait_ms,
                    obs_dir=obs_dir, publish_interval=publish_interval,
                    threads=threads, inference_mode=inference_mode))
        return cls(built, registry, cache=cache, obs_dir=obs_dir,
                   publish_interval=publish_interval, **router_kwargs)

    # -- metrics -----------------------------------------------------------

    def _register_metrics(self) -> None:
        m = self.metrics
        self._m_requests = m.counter(
            "fleet_requests_total",
            "Requests reaching the router (cache hits included).")
        self._m_rejected = m.counter(
            "fleet_rejected_total",
            "Requests rejected by admission control or backpressure.",
            labelnames=("reason",))
        self._m_routed = m.counter(
            "fleet_routed_total", "Requests dispatched, by worker.",
            labelnames=("worker",))
        self._m_errors = m.counter(
            "fleet_errors_total", "Requests failed by a worker.")
        self._m_latency = m.histogram(
            "fleet_request_latency_seconds",
            "Router submit-to-result latency per completed request.")
        self._m_expired = m.counter(
            "fleet_requests_expired_total",
            "Requests that timed out before a worker produced a result.")
        self._m_retries = m.counter(
            "fleet_retries_total",
            "Requests resubmitted to a surviving worker after a crash.")
        self._m_restarts = m.counter(
            "fleet_worker_restarts_total",
            "Worker restarts performed by the supervisor, by worker.",
            labelnames=("worker",))
        self._m_breaker = m.gauge(
            "fleet_breaker_state",
            "Circuit breaker state per worker "
            "(0=closed, 1=half-open, 2=open).",
            labelnames=("worker",))
        for worker_id in self._breakers:
            self._m_breaker.labels(worker=worker_id).set(0)
        m.gauge("fleet_inflight", "Requests currently in flight.",
                fn=lambda: self._inflight)
        m.gauge("fleet_workers_alive", "Workers currently serving.",
                fn=lambda: sum(1 for w in self.workers if w.alive))
        m.gauge("fleet_worker_queue_depth",
                "Deepest per-worker queue right now.",
                fn=lambda: max((w.depth for w in self.workers), default=0))
        cache = self.cache
        if cache is not None:
            m.counter("fleet_cache_hits_total", "Shared-cache hits.",
                      fn=lambda: cache.hits)
            m.counter("fleet_cache_misses_total", "Shared-cache misses.",
                      fn=lambda: cache.misses)
            m.gauge("fleet_cache_hit_ratio",
                    "Shared-cache hits over lookups.",
                    fn=lambda: cache.hit_rate)

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "FleetRouter":
        if self._running:
            raise RuntimeError("fleet router is already running")
        started = []
        try:
            for worker in self.workers:
                worker.start()
                started.append(worker)
        except Exception:
            for worker in started:
                try:
                    worker.stop()
                except Exception:
                    pass
            raise
        if self._publisher is not None:
            self._publisher.start()
        self._running = True
        if self.supervise:
            self._supervisor_wake.clear()
            self._supervisor = threading.Thread(
                target=self._supervise_loop, name="fleet-supervisor",
                daemon=True)
            self._supervisor.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        with self._lock:
            self._running = False
        self._supervisor_wake.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout)
            self._supervisor = None
        with self._timer_lock:
            timers, self._timers = self._timers, {}
        for timer, state in timers.items():
            timer.cancel()
            if not state["future"].done():
                state["future"].set_exception(WorkerCrashError(
                    "fleet router stopped with a retry pending"))
        if self._publisher is not None:
            self._publisher.stop()
        errors = []
        for worker in self.workers:
            try:
                worker.stop(timeout=timeout)
            except Exception as error:
                errors.append(f"{worker.worker_id}: {error}")
        if errors:
            raise WorkerError("worker shutdown failed: "
                              + "; ".join(errors))

    # -- supervision -------------------------------------------------------

    def _supervise_loop(self) -> None:
        while True:
            self._supervisor_wake.wait(self.supervise_interval)
            if not self._running:
                return
            self._supervise_tick()

    def _supervise_tick(self) -> None:
        """One liveness sweep: probe, detect, restart behind breakers."""
        now = time.monotonic()
        for worker in self.workers:
            breaker = self._breakers[worker.worker_id]
            stalled = False
            if worker.alive and isinstance(worker, ProcessWorker):
                worker.ping()
                seen = worker.last_pong or worker.started_at or now
                stalled = (now - seen) > self.heartbeat_timeout
            if (not worker.alive or stalled) and breaker.allow(now):
                try:
                    worker.restart()
                except Exception:
                    breaker.record_failure(time.monotonic())
                else:
                    breaker.record_success()
                    self._m_restarts.labels(
                        worker=worker.worker_id).inc()
                    self.tracer.instant("fleet.worker_restart",
                                        worker=worker.worker_id,
                                        stalled=stalled)
            self._m_breaker.labels(
                worker=worker.worker_id).set(breaker.value)

    def __enter__(self) -> "FleetRouter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request path ------------------------------------------------------

    def submit(self, model_id: str, x: np.ndarray,
               timeout: float | None = None) -> Future:
        """Route one request; the future resolves to a
        :class:`~repro.serve.engine.ForecastResult`.

        Raises :class:`FleetBusyError` instead of queueing when the
        fleet is saturated — callers (and the HTTP 503 path) decide
        whether to retry.
        """
        if not self._running:
            raise RuntimeError("fleet router is not running "
                               "(call start())")
        info = self.registry.info(model_id)   # KeyError -> 404 upstream
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 4 and x.shape[0] == 1:
            x = x[0]
        expected = (info.input_channels, info.image_size, info.image_size)
        if x.shape != expected:
            raise ValueError(f"model {model_id!r} expects input shape "
                             f"{expected}, got {x.shape}")
        start = time.perf_counter()
        self._m_requests.inc()
        future: Future = Future()
        digest = input_digest(x) if self.cache is not None else None
        if self.cache is not None:
            hit = self.cache.get(model_id, digest)
            if hit is not None:
                latency = time.perf_counter() - start
                self._m_latency.observe(latency)
                self.tracer.instant("fleet.cache_hit", model=model_id)
                future.set_result(ForecastResult(
                    model_id=model_id, image=hit, cached=True,
                    latency_seconds=latency))
                return future
        state = {
            "model_id": model_id, "x": x, "timeout": timeout,
            "digest": digest, "start": start, "attempt": 0,
            "future": future,
            "deadline": (time.monotonic() + timeout
                         if timeout is not None else None),
        }
        with self._lock:
            if not self._running:
                raise RuntimeError("fleet router is stopping")
            if self._inflight >= self.max_inflight:
                self._m_rejected.labels(reason="admission").inc()
                raise FleetBusyError(
                    "admission",
                    f"fleet at max_inflight={self.max_inflight}; "
                    f"request rejected", retry_after=self.retry_after)
            live = [worker for worker in self.workers if worker.alive]
            if not live:
                raise WorkerError("no live workers in the fleet")
            worker = min(live, key=lambda w: w.depth)
            if worker.depth >= self.worker_queue_limit:
                self._m_rejected.labels(reason="backpressure").inc()
                raise FleetBusyError(
                    "backpressure",
                    f"every worker queue is at depth "
                    f">= {self.worker_queue_limit}; request rejected",
                    retry_after=self.retry_after)
            self._inflight += 1
            worker._depth += 1
        try:
            inner = worker.submit(model_id, x, timeout)
        except Exception:
            with self._lock:
                self._inflight -= 1
                worker._depth -= 1
            raise
        self._m_routed.labels(worker=worker.worker_id).inc()
        inner.add_done_callback(
            lambda done: self._on_worker_done(done, state, worker))
        return future

    # -- retry / failover --------------------------------------------------

    def _on_worker_done(self, done: Future, state: dict, worker) -> None:
        """Resolve one dispatch attempt: finish, or fail over and retry.

        ``_inflight`` was incremented exactly once per request at
        admission and is decremented exactly once here, at final
        resolution — retries in between only touch per-worker depth.
        """
        with self._lock:
            worker._depth -= 1
        error = done.exception()
        if error is None:
            self._finalize_success(state, done.result())
            return
        if isinstance(error, WorkerCrashError) and self._running:
            remaining = (state["deadline"] - time.monotonic()
                         if state["deadline"] is not None else None)
            if (state["attempt"] < self.retry_budget
                    and (remaining is None or remaining > 0)):
                delay = backoff_seconds(state["attempt"], self.retry_base,
                                        self.retry_cap, self._rng)
                if remaining is not None:
                    delay = min(delay, remaining)
                state["attempt"] += 1
                self._m_retries.inc()
                self.tracer.instant("fleet.retry",
                                    model=state["model_id"],
                                    attempt=state["attempt"])
                timer = threading.Timer(
                    delay, self._redispatch, args=(state,))
                timer.daemon = True
                with self._timer_lock:
                    state["_timer"] = timer
                    self._timers[timer] = state
                timer.start()
                return
        self._finalize_failure(state, error)

    def _redispatch(self, state: dict) -> None:
        """Resubmit after backoff to the least-loaded surviving worker.

        Retries are already admitted — they bypass admission control and
        queue limits so a recovering fleet cannot reject work it
        accepted before the crash.
        """
        with self._timer_lock:
            self._timers.pop(state.pop("_timer", None), None)
        if state["future"].done():
            return
        with self._lock:
            running = self._running
            live = ([worker for worker in self.workers if worker.alive]
                    if running else [])
            if live:
                worker = min(live, key=lambda w: w.depth)
                worker._depth += 1
        if not running:
            self._finalize_failure(state, WorkerCrashError(
                "fleet router stopped during retry"))
            return
        if not live:
            # Nobody to run on right now; burn one retry waiting for the
            # supervisor to bring a worker back.
            self._on_worker_done(_failed_future(WorkerCrashError(
                "no live workers to retry on")), state, _NullWorker())
            return
        remaining = (state["deadline"] - time.monotonic()
                     if state["deadline"] is not None else None)
        if remaining is not None and remaining <= 0:
            with self._lock:
                worker._depth -= 1
            self._finalize_failure(state, TimeoutError(
                f"request expired after {state['attempt']} retries"))
            return
        try:
            inner = worker.submit(state["model_id"], state["x"],
                                  remaining if remaining is not None
                                  else state["timeout"])
        except Exception as error:
            self._on_worker_done(_failed_future(error), state, worker)
            return
        self._m_routed.labels(worker=worker.worker_id).inc()
        inner.add_done_callback(
            lambda done: self._on_worker_done(done, state, worker))

    def _finalize_success(self, state: dict, image: np.ndarray) -> None:
        with self._lock:
            self._inflight -= 1
        latency = time.perf_counter() - state["start"]
        self._m_latency.observe(latency)
        if self.cache is not None and state["digest"] is not None:
            self.cache.put(state["model_id"], state["digest"], image)
        if not state["future"].done():
            state["future"].set_result(ForecastResult(
                model_id=state["model_id"], image=image, cached=False,
                latency_seconds=latency))

    def _finalize_failure(self, state: dict, error: Exception) -> None:
        with self._lock:
            self._inflight -= 1
        if isinstance(error, TimeoutError):
            self._m_expired.inc()
        else:
            self._m_errors.inc()
        if not state["future"].done():
            state["future"].set_exception(error)

    def forecast_result(self, model_id: str, x: np.ndarray,
                        timeout: float | None = 30.0) -> ForecastResult:
        """Blocking wrapper (the :class:`ForecastServer` entry point)."""
        return self.submit(model_id, x, timeout=timeout).result(
            timeout=timeout)

    def forecast(self, model_id: str, x: np.ndarray,
                 timeout: float | None = 30.0) -> np.ndarray:
        return self.forecast_result(model_id, x, timeout=timeout).image

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """The fleet's ``/metrics`` JSON shape (router-level numbers)."""
        latency = self._m_latency
        completed = latency.count
        rejected = {labels[0]: int(counter.value)
                    for labels, counter in self._m_rejected.items()}
        routed = {labels[0]: int(counter.value)
                  for labels, counter in self._m_routed.items()}
        restarts = {labels[0]: int(counter.value)
                    for labels, counter in self._m_restarts.items()}
        snapshot = {
            "requests": int(self._m_requests.value),
            "completed": completed,
            "errors": int(self._m_errors.value),
            "expired": int(self._m_expired.value),
            "retries": int(self._m_retries.value),
            "restarts": restarts,
            "breakers": {worker_id: breaker.state
                         for worker_id, breaker in self._breakers.items()},
            "rejected": rejected,
            "routed_by_worker": routed,
            "inflight": self._inflight,
            "workers": len(self.workers),
            "workers_alive": sum(1 for w in self.workers if w.alive),
            "max_inflight": self.max_inflight,
            "worker_queue_limit": self.worker_queue_limit,
            "mean_latency_ms": (1e3 * latency.sum / completed
                                if completed else 0.0),
            "latency_p50_ms": 1e3 * latency.quantile(0.5),
            "latency_p99_ms": 1e3 * latency.quantile(0.99),
        }
        if self.cache is not None:
            cache_stats = self.cache.stats()
            snapshot["cache"] = cache_stats
            snapshot["cache_hits"] = cache_stats["hits"]
            snapshot["cache_misses"] = cache_stats["misses"]
        return snapshot

    def fleet_status(self) -> dict:
        """Per-worker detail for ``GET /fleet/status``."""
        return {
            "stats": self.stats(),
            "workers": [{"id": worker.worker_id, "alive": worker.alive,
                         "queue_depth": worker.depth,
                         "breaker": self._breakers[worker.worker_id].state,
                         "restarts": getattr(worker, "restarts", 0)}
                        for worker in self.workers],
            "models": self.registry.model_ids,
        }
