"""Worker pool: N processes draining a :class:`~repro.fleet.jobs.JobStore`.

Each worker process loops *claim → execute → complete/fail* against the
shared spool directory; the executor for a job is looked up by its
``kind`` in the module-level :data:`EXECUTORS` registry.  Two executors
ship with the pool:

* ``train`` — runs one :class:`~repro.train.spec.TrainSpec` document
  through the PR 5 :class:`~repro.train.runner.Runner` (the sweep driver
  routes its runs through this);
* ``forecast`` — loads a checkpoint (cached per process), forecasts one
  input drawn from a dataset store or an artifact, and puts the result
  into a content-addressed :class:`~repro.fleet.artifacts.ArtifactStore`.

Because every executor is deterministic and every job is independent,
the pool's outputs are worker-count invariant: N workers produce the
same result rows, the same artifact digests, and byte-identical blobs
as a serial drain.

Workers publish live telemetry (jobs claimed/done/failed, per-kind
timings) through :class:`repro.obs.publish.TelemetryPublisher` into
``<spool>/telemetry/``, so ``repro obs top <spool>`` watches a pool the
same way it watches a sweep or a serve fleet.
"""

from __future__ import annotations

import io
import json
import multiprocessing
import time
import traceback
from pathlib import Path

from repro.fleet.jobs import JobStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.publish import TELEMETRY_DIR, TelemetryPublisher

#: kind -> callable(payload: dict) -> dict.  Executors must be importable
#: module-level functions so spawn-start workers resolve them too.
EXECUTORS: dict = {}


def executor(kind: str):
    """Register an executor for a job kind (decorator)."""
    def register(fn):
        EXECUTORS[kind] = fn
        return fn
    return register


class PoolError(Exception):
    """The pool was misconfigured or a worker died unexpectedly."""


# -- built-in executors ----------------------------------------------------

@executor("train")
def run_train_job(payload: dict) -> dict:
    """Execute one train spec under a runs root (the sweep's unit).

    Payload: ``{"root": runs_root, "spec": <TrainSpec document>}``.
    Returns the sweep summary row (never raises on a failed run — the
    row carries the error, matching the sweep driver's contract).
    """
    from repro.train.sweep import _run_one
    return _run_one(payload["root"], payload["spec"])


# One warm registry per checkpoint directory per worker process — the
# forecast executor's equivalent of the serve registry's warm loading.
_MODEL_REGISTRIES: dict = {}


def _registry_for(checkpoints: str):
    from repro.serve.registry import ModelRegistry
    registry = _MODEL_REGISTRIES.get(checkpoints)
    if registry is None:
        registry = ModelRegistry.from_directory(checkpoints)
        _MODEL_REGISTRIES[checkpoints] = registry
    return registry


def _load_forecast_input(payload: dict):
    """The (C, H, W) input named by a forecast payload.

    Either ``{"store": <dataset store root>, "index": i}`` (sample i of
    the sharded store, shard-local read) or ``{"artifact_store": root,
    "artifact": digest}`` (a ``.npy`` payload in the artifact store).
    """
    import numpy as np

    source = payload["input"]
    if "store" in source:
        from repro.data.store import ShardedStore
        store = ShardedStore.open(source["store"])
        index = int(source["index"])
        if not 0 <= index < store.num_samples:
            raise ValueError(f"sample index {index} out of range "
                             f"(store has {store.num_samples})")
        for shard_index in range(store.num_shards):
            shard = store.manifest["shards"][shard_index]
            if index < shard["num_samples"]:
                return store.load_shard(shard_index)[index].x
            index -= shard["num_samples"]
        raise ValueError(f"sample index walked off the shard table")
    if "artifact" in source:
        from repro.fleet.artifacts import ArtifactStore
        artifacts = ArtifactStore(source["artifact_store"])
        data = artifacts.read_bytes(source["artifact"])
        return np.load(io.BytesIO(data))
    raise ValueError(f"forecast input needs 'store' or 'artifact', "
                     f"got {sorted(source)}")


@executor("forecast")
def run_forecast_job(payload: dict) -> dict:
    """Forecast one input and store the result content-addressed.

    Payload::

        {"checkpoints": <dir>, "model": <id>,
         "input": {"store": ..., "index": ...} | {"artifact_store": ...,
                                                  "artifact": ...},
         "artifacts": <artifact store root>}

    Returns ``{"artifact": <forecast artifact digest>, ...}``.  The
    forecast is deterministic, so the digest is worker-count invariant.
    """
    import numpy as np

    from repro.fleet.artifacts import ArtifactStore
    from repro.serve.cache import input_digest

    registry = _registry_for(str(payload["checkpoints"]))
    model_id = payload["model"]
    model = registry.get(model_id)
    x = np.asarray(_load_forecast_input(payload), dtype=np.float32)
    image = model.forecast(x)
    digest = input_digest(x)
    buffer = io.BytesIO()
    np.save(buffer, image)
    artifacts = ArtifactStore(payload["artifacts"])
    ref = artifacts.put_bytes(
        buffer.getvalue(), name=f"{model_id}-{digest[:12]}.npy",
        kind="forecast",
        meta={"model_id": model_id, "input_digest": digest,
              "shape": list(image.shape)})
    return {"artifact": ref.digest, "model": model_id,
            "input_digest": digest}


# -- the worker loop -------------------------------------------------------

def worker_loop(root: str, worker_id: str, drain: bool = True,
                poll: float = 0.05, publish: bool = True) -> dict:
    """Claim and execute jobs until the spool drains (or stop is asked).

    ``drain=True`` exits once no pending job remains; ``drain=False``
    keeps polling until the store's stop sentinel appears.  Returns this
    worker's counters.  Runs in-process — the pool spawns it in worker
    processes, tests call it directly.
    """
    store = JobStore(root)
    metrics = MetricsRegistry()
    claimed = metrics.counter("fleet_jobs_claimed_total",
                              "Jobs this worker claimed.")
    done = metrics.counter("fleet_jobs_done_total",
                           "Jobs this worker completed.")
    failed = metrics.counter("fleet_jobs_failed_total",
                             "Jobs this worker failed.")
    seconds = metrics.counter("fleet_job_seconds_total",
                              "Wall seconds spent executing jobs.",
                              labelnames=("kind",))
    publisher = None
    if publish:
        publisher = TelemetryPublisher(
            metrics, Path(root) / TELEMETRY_DIR, role="pool",
            worker=worker_id, interval=1.0)
        publisher.start()
    try:
        while True:
            job = store.claim(worker_id)
            if job is None:
                if drain or store.stop_requested:
                    break
                time.sleep(poll)
                continue
            claimed.inc()
            start = time.perf_counter()
            try:
                fn = EXECUTORS.get(job.kind)
                if fn is None:
                    raise PoolError(f"no executor for job kind "
                                    f"{job.kind!r} (have "
                                    f"{sorted(EXECUTORS)})")
                result = fn(job.payload)
                store.complete(job, result if isinstance(result, dict)
                               else {"result": result})
                done.inc()
            except Exception:
                store.fail(job, traceback.format_exc(limit=8))
                failed.inc()
            seconds.labels(kind=job.kind).inc(
                time.perf_counter() - start)
    finally:
        if publisher is not None:
            publisher.stop()
    return {"claimed": int(claimed.value), "done": int(done.value),
            "failed": int(failed.value)}


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class WorkerPool:
    """Fan a job spool across N worker processes.

    ``workers <= 1`` drains the spool serially in-process — handy for
    tests and the invariance guarantee's reference side.
    """

    def __init__(self, root: str | Path, workers: int = 2,
                 publish: bool = True):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.root = Path(root)
        self.workers = workers
        self.publish = publish

    def run_until_drained(self, timeout: float | None = None) -> dict:
        """Execute every pending job; returns the job-state counts.

        Worker processes exit when the pending directory is empty.
        Raises :class:`PoolError` if the drain does not finish within
        ``timeout`` seconds.
        """
        store = JobStore(self.root)
        if self.workers <= 1:
            worker_loop(str(self.root), "w0", drain=True,
                        publish=self.publish)
        else:
            ctx = _mp_context()
            processes = [
                ctx.Process(target=worker_loop,
                            args=(str(self.root), f"w{index}"),
                            kwargs={"drain": True,
                                    "publish": self.publish},
                            daemon=True)
                for index in range(self.workers)]
            for process in processes:
                process.start()
            deadline = (time.monotonic() + timeout
                        if timeout is not None else None)
            for process in processes:
                remaining = (None if deadline is None
                             else max(0.0, deadline - time.monotonic()))
                process.join(remaining)
            alive = [p for p in processes if p.is_alive()]
            if alive:
                for process in alive:
                    process.terminate()
                raise PoolError(
                    f"{len(alive)} pool worker(s) still running after "
                    f"{timeout}s")
        return store.counts()
