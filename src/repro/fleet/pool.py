"""Worker pool: N processes draining a :class:`~repro.fleet.jobs.JobStore`.

Each worker process loops *claim → execute → complete/fail* against the
shared spool directory; the executor for a job is looked up by its
``kind`` in the module-level :data:`EXECUTORS` registry.  Two executors
ship with the pool:

* ``train`` — runs one :class:`~repro.train.spec.TrainSpec` document
  through the PR 5 :class:`~repro.train.runner.Runner` (the sweep driver
  routes its runs through this);
* ``forecast`` — loads a checkpoint (cached per process), forecasts one
  input drawn from a dataset store or an artifact, and puts the result
  into a content-addressed :class:`~repro.fleet.artifacts.ArtifactStore`.

Because every executor is deterministic and every job is independent,
the pool's outputs are worker-count invariant: N workers produce the
same result rows, the same artifact digests, and byte-identical blobs
as a serial drain.

Workers publish live telemetry (jobs claimed/done/failed, per-kind
timings) through :class:`repro.obs.publish.TelemetryPublisher` into
``<spool>/telemetry/``, so ``repro obs top <spool>`` watches a pool the
same way it watches a sweep or a serve fleet.

**Fault tolerance.**  Every claim is a lease (see
:mod:`repro.fleet.jobs`): a background keeper thread in each worker
heartbeats the current job, and the pool's supervising parent loop reaps
expired leases — a SIGKILLed worker's job goes back to ``pending/``
(bounded by the job's attempt budget) instead of stranding in
``running/`` forever — and restarts dead worker processes while pending
work remains, up to ``max_restarts`` per worker slot.  Because results
are completion-renamed exactly once and executors are deterministic, a
drain that lost workers mid-flight still produces byte-identical output
to an undisturbed serial drain.
"""

from __future__ import annotations

import io
import json
import multiprocessing
import threading
import time
import traceback
from pathlib import Path

from repro.fleet.jobs import Job, JobStore, LeaseLostError
from repro.obs.metrics import MetricsRegistry
from repro.obs.publish import TELEMETRY_DIR, TelemetryPublisher

#: kind -> callable(payload: dict) -> dict.  Executors must be importable
#: module-level functions so spawn-start workers resolve them too.
EXECUTORS: dict = {}


def executor(kind: str):
    """Register an executor for a job kind (decorator)."""
    def register(fn):
        EXECUTORS[kind] = fn
        return fn
    return register


class PoolError(Exception):
    """The pool was misconfigured or a worker died unexpectedly."""


# -- built-in executors ----------------------------------------------------

@executor("train")
def run_train_job(payload: dict) -> dict:
    """Execute one train spec under a runs root (the sweep's unit).

    Payload: ``{"root": runs_root, "spec": <TrainSpec document>}``.
    Returns the sweep summary row (never raises on a failed run — the
    row carries the error, matching the sweep driver's contract).
    """
    from repro.train.sweep import _run_one
    return _run_one(payload["root"], payload["spec"])


# One warm registry per checkpoint directory per worker process — the
# forecast executor's equivalent of the serve registry's warm loading.
_MODEL_REGISTRIES: dict = {}


def _registry_for(checkpoints: str):
    from repro.serve.registry import ModelRegistry
    registry = _MODEL_REGISTRIES.get(checkpoints)
    if registry is None:
        registry = ModelRegistry.from_directory(checkpoints)
        _MODEL_REGISTRIES[checkpoints] = registry
    return registry


def _load_forecast_input(payload: dict):
    """The (C, H, W) input named by a forecast payload.

    Either ``{"store": <dataset store root>, "index": i}`` (sample i of
    the sharded store, shard-local read) or ``{"artifact_store": root,
    "artifact": digest}`` (a ``.npy`` payload in the artifact store).
    """
    import numpy as np

    source = payload["input"]
    if "store" in source:
        from repro.data.store import ShardedStore
        store = ShardedStore.open(source["store"])
        index = int(source["index"])
        if not 0 <= index < store.num_samples:
            raise ValueError(f"sample index {index} out of range "
                             f"(store has {store.num_samples})")
        for shard_index in range(store.num_shards):
            shard = store.manifest["shards"][shard_index]
            if index < shard["num_samples"]:
                return store.load_shard(shard_index)[index].x
            index -= shard["num_samples"]
        raise ValueError(f"sample index walked off the shard table")
    if "artifact" in source:
        from repro.fleet.artifacts import ArtifactStore
        artifacts = ArtifactStore(source["artifact_store"])
        data = artifacts.read_bytes(source["artifact"])
        return np.load(io.BytesIO(data))
    raise ValueError(f"forecast input needs 'store' or 'artifact', "
                     f"got {sorted(source)}")


@executor("forecast")
def run_forecast_job(payload: dict) -> dict:
    """Forecast one input and store the result content-addressed.

    Payload::

        {"checkpoints": <dir>, "model": <id>,
         "input": {"store": ..., "index": ...} | {"artifact_store": ...,
                                                  "artifact": ...},
         "artifacts": <artifact store root>}

    Returns ``{"artifact": <forecast artifact digest>, ...}``.  The
    forecast is deterministic, so the digest is worker-count invariant.
    """
    import numpy as np

    from repro.fleet.artifacts import ArtifactStore
    from repro.serve.cache import input_digest

    registry = _registry_for(str(payload["checkpoints"]))
    model_id = payload["model"]
    model = registry.get(model_id)
    x = np.asarray(_load_forecast_input(payload), dtype=np.float32)
    image = model.forecast(x)
    digest = input_digest(x)
    buffer = io.BytesIO()
    np.save(buffer, image)
    artifacts = ArtifactStore(payload["artifacts"])
    ref = artifacts.put_bytes(
        buffer.getvalue(), name=f"{model_id}-{digest[:12]}.npy",
        kind="forecast",
        meta={"model_id": model_id, "input_digest": digest,
              "shape": list(image.shape)})
    return {"artifact": ref.digest, "model": model_id,
            "input_digest": digest}


# -- the worker loop -------------------------------------------------------

class _LeaseKeeper(threading.Thread):
    """Heartbeats the worker's current job so its lease never expires
    while the executor is genuinely making progress."""

    def __init__(self, store: JobStore, interval: float):
        super().__init__(name="fleet-lease-keeper", daemon=True)
        self._store = store
        self._interval = interval
        self._halt = threading.Event()
        self._lock = threading.Lock()
        self._job: Job | None = None

    def watch(self, job: Job | None) -> None:
        with self._lock:
            self._job = job

    def halt(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            with self._lock:
                job = self._job
            if job is None:
                continue
            try:
                self._store.heartbeat(job)
            except OSError:       # spool unwritable; the reaper decides
                pass


def worker_loop(root: str, worker_id: str, drain: bool = True,
                poll: float = 0.05, publish: bool = True,
                lease_seconds: float | None = None) -> dict:
    """Claim and execute jobs until the spool drains (or stop is asked).

    ``drain=True`` exits once no pending job remains; ``drain=False``
    keeps polling until the store's stop sentinel appears (and reaps
    expired leases while idle, so a standing pool self-heals).  Returns
    this worker's counters.  Runs in-process — the pool spawns it in
    worker processes, tests call it directly.
    """
    store = (JobStore(root) if lease_seconds is None
             else JobStore(root, lease_seconds=lease_seconds))
    metrics = MetricsRegistry()
    claimed = metrics.counter("fleet_jobs_claimed_total",
                              "Jobs this worker claimed.")
    done = metrics.counter("fleet_jobs_done_total",
                           "Jobs this worker completed.")
    failed = metrics.counter("fleet_jobs_failed_total",
                             "Jobs this worker failed.")
    lease_lost = metrics.counter(
        "fleet_jobs_lease_lost_total",
        "Results discarded because the job's lease was reaped away.")
    requeued = metrics.counter(
        "fleet_jobs_requeued_total",
        "Expired orphan jobs this worker requeued while idle.")
    seconds = metrics.counter("fleet_job_seconds_total",
                              "Wall seconds spent executing jobs.",
                              labelnames=("kind",))
    publisher = None
    if publish:
        publisher = TelemetryPublisher(
            metrics, Path(root) / TELEMETRY_DIR, role="pool",
            worker=worker_id, interval=1.0)
        publisher.start()
    keeper = _LeaseKeeper(store, interval=store.lease_seconds / 4.0)
    keeper.start()
    try:
        while True:
            job = store.claim(worker_id)
            if job is None:
                if drain or store.stop_requested:
                    break
                for action in store.reap():
                    if action["action"] == "requeued":
                        requeued.inc()
                time.sleep(poll)
                continue
            keeper.watch(job)
            claimed.inc()
            start = time.perf_counter()
            try:
                fn = EXECUTORS.get(job.kind)
                if fn is None:
                    raise PoolError(f"no executor for job kind "
                                    f"{job.kind!r} (have "
                                    f"{sorted(EXECUTORS)})")
                result = fn(job.payload)
                keeper.watch(None)
                store.complete(job, result if isinstance(result, dict)
                               else {"result": result})
                done.inc()
            except LeaseLostError:
                lease_lost.inc()
            except Exception:
                keeper.watch(None)
                try:
                    store.fail(job, traceback.format_exc(limit=8))
                    failed.inc()
                except LeaseLostError:
                    lease_lost.inc()
            finally:
                keeper.watch(None)
            seconds.labels(kind=job.kind).inc(
                time.perf_counter() - start)
    finally:
        keeper.halt()
        if publisher is not None:
            publisher.stop()
    return {"claimed": int(claimed.value), "done": int(done.value),
            "failed": int(failed.value),
            "lease_lost": int(lease_lost.value)}


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class WorkerPool:
    """Fan a job spool across N supervised worker processes.

    ``workers <= 1`` drains the spool serially in-process — handy for
    tests and the invariance guarantee's reference side.

    The parent is a supervisor, not a passive joiner: while the drain
    runs it reaps expired job leases (requeueing orphans a dead worker
    stranded in ``running/``) and respawns worker processes that died
    while pending work remains, up to ``max_restarts`` incarnations per
    worker slot.  ``lease_seconds``/``max_attempts`` tune the spool's
    lease policy (see :class:`~repro.fleet.jobs.JobStore`).
    """

    def __init__(self, root: str | Path, workers: int = 2,
                 publish: bool = True,
                 lease_seconds: float | None = None,
                 max_attempts: int | None = None,
                 max_restarts: int = 3, poll: float = 0.1):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, "
                             f"got {max_restarts}")
        self.root = Path(root)
        self.workers = workers
        self.publish = publish
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.max_restarts = max_restarts
        self.poll = poll

    def _open_store(self) -> JobStore:
        kwargs: dict = {}
        if self.lease_seconds is not None:
            kwargs["lease_seconds"] = self.lease_seconds
        if self.max_attempts is not None:
            kwargs["max_attempts"] = self.max_attempts
        return JobStore(self.root, **kwargs)

    def run_until_drained(self, timeout: float | None = None,
                          on_poll=None) -> dict:
        """Execute every pending job; returns the job-state counts.

        The returned dict carries the four state counts plus
        ``"requeued"`` (orphan jobs the reaper recycled) and
        ``"restarts"`` (worker incarnations respawned).  ``on_poll``,
        when given, is called as ``on_poll(counts, processes)`` on every
        supervision tick — the chaos harness's injection point.  Raises
        :class:`PoolError` if the drain does not finish within
        ``timeout`` seconds or every worker slot exhausts its restart
        budget with work still pending.
        """
        store = self._open_store()
        metrics = MetricsRegistry()
        requeued = metrics.counter(
            "fleet_jobs_requeued_total",
            "Expired orphan jobs requeued by the pool supervisor.")
        reap_failed = metrics.counter(
            "fleet_jobs_reaped_failed_total",
            "Orphan jobs terminally failed (attempt budget spent).")
        restarts = metrics.counter(
            "fleet_worker_restarts_total",
            "Worker processes respawned by the pool supervisor.")
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)

        def reap_once() -> None:
            for action in store.reap():
                if action["action"] == "requeued":
                    requeued.inc()
                else:
                    reap_failed.inc()

        def finish() -> dict:
            counts = store.counts()
            counts["requeued"] = int(requeued.value)
            counts["restarts"] = int(restarts.value)
            return counts

        if self.workers <= 1:
            # Serial reference drain: loop reap -> drain until clean, so
            # even leftover orphans from a previously-killed drain are
            # recycled once their lease expires.
            while True:
                worker_loop(str(self.root), "w0", drain=True,
                            publish=self.publish,
                            lease_seconds=self.lease_seconds)
                reap_once()
                if not store.outstanding():
                    return finish()
                if deadline is not None and time.monotonic() > deadline:
                    raise PoolError(f"serial drain did not finish within "
                                    f"{timeout}s")
                time.sleep(self.poll)

        ctx = _mp_context()
        publisher = None
        if self.publish:
            publisher = TelemetryPublisher(
                metrics, self.root / TELEMETRY_DIR, role="pool",
                worker="supervisor", interval=1.0)
            publisher.start()

        def spawn(slot: int, incarnation: int):
            worker_id = (f"w{slot}" if incarnation == 0
                         else f"w{slot}r{incarnation}")
            process = ctx.Process(
                target=worker_loop, args=(str(self.root), worker_id),
                kwargs={"drain": True, "publish": self.publish,
                        "lease_seconds": self.lease_seconds},
                daemon=True)
            process.start()
            return process

        processes = {slot: spawn(slot, 0) for slot in range(self.workers)}
        incarnations = {slot: 0 for slot in range(self.workers)}
        try:
            while True:
                reap_once()
                counts = store.counts()
                if on_poll is not None:
                    on_poll(counts, processes)
                if counts["pending"] + counts["running"] == 0:
                    break
                if counts["pending"] > 0:
                    for slot, process in processes.items():
                        if process.is_alive():
                            continue
                        if incarnations[slot] >= self.max_restarts:
                            continue
                        incarnations[slot] += 1
                        restarts.inc()
                        processes[slot] = spawn(slot, incarnations[slot])
                    if not any(p.is_alive() for p in processes.values()) \
                            and all(incarnations[slot] >= self.max_restarts
                                    for slot in processes):
                        raise PoolError(
                            f"every worker slot spent its restart budget "
                            f"({self.max_restarts}) with "
                            f"{counts['pending']} job(s) still pending")
                if deadline is not None and time.monotonic() > deadline:
                    raise PoolError(
                        f"pool did not drain within {timeout}s "
                        f"({counts['pending']} pending, "
                        f"{counts['running']} running)")
                time.sleep(self.poll)
            for process in processes.values():
                remaining = (30.0 if deadline is None
                             else max(0.0, deadline - time.monotonic()))
                process.join(remaining)
            alive = [p for p in processes.values() if p.is_alive()]
            if alive:
                raise PoolError(
                    f"{len(alive)} pool worker(s) still running after "
                    f"the spool drained")
        except Exception:
            for process in processes.values():
                if process.is_alive():
                    process.terminate()
            raise
        finally:
            if publisher is not None:
                publisher.stop()
        return finish()
