"""Parallel dataset generation: fan per-placement work over processes.

The serial Section-5 pipeline (:mod:`repro.flows.datagen`) routes each
swept placement one after another.  Here the same unit of work —
:func:`repro.flows.datagen.route_and_render` on one
:class:`~repro.flows.datagen.PlacerOptions` — is fanned over a
``multiprocessing`` pool.  Determinism comes for free: every task is
seeded by its own ``PlacerOptions.seed`` (``base_seed + index`` from the
sweep), each worker rebuilds the identical per-design context from a
picklable recipe, and results are consumed in task order (``imap``), so an
N-worker build emits the same samples, in the same order, as a serial one
(up to the recorded wall-clock timings, which the store's content hashes
exclude).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from repro.config import ExperimentScale
from repro.flows.datagen import (
    _SWEEP_VERSION,
    DesignContext,
    make_design_context,
    prepare_design,
    route_and_render,
    size_channels,
    sweep_placer_options,
)
from repro.fpga import PlacerOptions
from repro.fpga.generators import DesignSpec
from repro.gan.dataset import Sample

from repro.data.store import DEFAULT_SHARD_SIZE, ShardedStore


@dataclass(frozen=True)
class DesignRecipe:
    """Picklable recipe from which any process rebuilds a design context.

    Channel width is resolved up front (it depends on routing the first
    sweep placement), so workers reconstruct bit-identical substrate
    without coordinating.
    """

    spec: DesignSpec
    scale: ExperimentScale
    seed: int
    image_size: int
    channel_width: int
    connect_weight: float

    def build_context(self) -> DesignContext:
        return make_design_context(
            self.spec, self.scale, seed=self.seed,
            image_size=self.image_size, connect_weight=self.connect_weight,
            channel_width=self.channel_width)


def design_recipe(spec: DesignSpec, scale: ExperimentScale, seed: int = 0,
                  image_size: int | None = None,
                  connect_weight: float | None = None) -> DesignRecipe:
    """Resolve a design's recipe (sizes channels by place+route once)."""
    connect_weight = (connect_weight if connect_weight is not None
                      else scale.connect_weight)
    netlist, probe_arch, _, image_size = prepare_design(
        spec, scale, seed=seed, image_size=image_size)
    channel_width = size_channels(
        netlist, probe_arch, sweep_placer_options(1, base_seed=seed)[0])
    return DesignRecipe(spec=spec, scale=scale, seed=seed,
                        image_size=image_size, channel_width=channel_width,
                        connect_weight=connect_weight)


# Per-process context, built once by the pool initializer so every task in
# a worker reuses the same netlist/arch/layout/floor image.
_WORKER_CONTEXT: DesignContext | None = None


def _init_worker(recipe: DesignRecipe) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = recipe.build_context()


def _run_option(option_fields: dict) -> Sample:
    assert _WORKER_CONTEXT is not None, "pool initializer did not run"
    sample, _ = route_and_render(_WORKER_CONTEXT,
                                 PlacerOptions(**option_fields))
    return sample


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork shares the imported interpreter (cheap start); fall back to
    # spawn where fork is unavailable (e.g. macOS default, Windows).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def iter_design_samples(recipe: DesignRecipe, num_placements: int,
                        workers: int = 0,
                        chunksize: int = 1) -> Iterator[Sample]:
    """Yield the design's samples in sweep order.

    ``workers <= 1`` runs inline (no pool, no pickling); otherwise a pool
    of ``workers`` processes runs :func:`route_and_render` per placement
    and results stream back in task order.
    """
    options = sweep_placer_options(num_placements, base_seed=recipe.seed)
    fields = [vars(option).copy() for option in options]
    if workers <= 1:
        context = recipe.build_context()
        for option_fields in fields:
            sample, _ = route_and_render(context,
                                         PlacerOptions(**option_fields))
            yield sample
        return
    with _pool_context().Pool(processes=workers, initializer=_init_worker,
                              initargs=(recipe,)) as pool:
        yield from pool.imap(_run_option, fields, chunksize=chunksize)


def build_design_store(
    spec: DesignSpec,
    scale: ExperimentScale,
    out_dir: str | Path,
    num_placements: int | None = None,
    seed: int = 0,
    workers: int = 0,
    shard_size: int = DEFAULT_SHARD_SIZE,
    image_size: int | None = None,
    connect_weight: float | None = None,
    store: ShardedStore | None = None,
    log: Callable[[str], None] | None = None,
) -> ShardedStore:
    """Generate one design's sweep into a sharded store.

    Pass an existing ``store`` to append a design into a multi-design
    corpus (the CLI does this when given several designs); otherwise a new
    store is created at ``out_dir``.  The build's parameters land in the
    manifest's provenance, and the content hashes of an N-worker build
    match a serial build of the same parameters exactly.
    """
    num_placements = (num_placements if num_placements is not None
                      else scale.placements_per_design)
    recipe = design_recipe(spec, scale, seed=seed, image_size=image_size,
                           connect_weight=connect_weight)
    if store is None:
        store = ShardedStore.create(out_dir, shard_size=shard_size)
    start = time.perf_counter()
    done = 0
    for sample in iter_design_samples(recipe, num_placements,
                                      workers=workers):
        store.append(sample)
        done += 1
        if log is not None:
            log(f"{spec.name}: {done}/{num_placements} placements")
    store.flush()
    store.metadata.setdefault("channel_width", recipe.channel_width)
    store.add_provenance({
        "design": spec.name,
        "scale": scale.name,
        "seed": seed,
        "num_placements": num_placements,
        "image_size": recipe.image_size,
        "channel_width": recipe.channel_width,
        "connect_weight": recipe.connect_weight,
        "sweep_version": _SWEEP_VERSION,
        "workers": workers,
        "build_seconds": round(time.perf_counter() - start, 3),
    })
    return store
