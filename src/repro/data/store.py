"""Sharded on-disk dataset store with a provenance-carrying manifest.

A store is a directory of fixed-size ``.npz`` shards (each one a
:class:`repro.gan.dataset.Dataset` archive, so any shard also loads as a
legacy single-file dataset) plus a ``manifest.json`` recording:

* shape metadata — image size, input/target channel counts, sample counts;
* per-shard integrity — file sha256, sample count, designs;
* per-sample **content hashes** — sha256 over each sample's deterministic
  fields (design, x, y, congestion, placer options, convergence), excluding
  wall-clock timings, so a worker-pool build hashes identically to a
  serial one;
* free-form ``metadata`` (e.g. routed channel width) and a ``provenance``
  list of build records appended by each generation run.

All writes are atomic (staged file + ``os.replace``), and the manifest is
rewritten after every completed shard, so an interrupted build keeps every
shard it finished.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro import __version__
from repro.gan.dataset import Dataset, Sample
from repro.obs.trace import get_tracer

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1
DEFAULT_SHARD_SIZE = 16


def sample_content_hash(sample: Sample) -> str:
    """sha256 over a sample's deterministic content.

    Covers design, both arrays (dtype, shape, bytes), the routed
    congestion, placer options, and convergence — but *not* the recorded
    place/route wall-clock seconds, which vary run to run.
    """
    hasher = hashlib.sha256()
    hasher.update(sample.design.encode())
    for array in (sample.x, sample.y):
        array = np.ascontiguousarray(array)
        hasher.update(str(array.dtype).encode())
        hasher.update(str(array.shape).encode())
        hasher.update(array.tobytes())
    hasher.update(repr(float(sample.true_congestion)).encode())
    hasher.update(repr(sorted(sample.placer_options.items())).encode())
    hasher.update(b"1" if sample.converged else b"0")
    return hasher.hexdigest()


def file_sha256(path: Path) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


class StoreError(Exception):
    """A store directory is missing, malformed, or fails verification."""


class ShardedStore:
    """Append-only sharded dataset rooted at a directory.

    Use :meth:`create` for a new store, :meth:`open` for an existing one.
    ``append``/``extend`` buffer samples and write a shard whenever
    ``shard_size`` samples accumulate; call :meth:`flush` to persist a
    final partial shard.  Reading is shard-at-a-time (:meth:`load_shard`,
    :meth:`iter_samples`), which is what the streaming loader builds on.
    """

    def __init__(self, root: str | Path, manifest: dict):
        self.root = Path(root)
        self.manifest = manifest
        self._buffer: list[Sample] = []

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, root: str | Path, shard_size: int = DEFAULT_SHARD_SIZE,
               metadata: dict | None = None) -> "ShardedStore":
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        root = Path(root)
        if cls.is_store(root):
            raise StoreError(f"store already exists at {root}")
        root.mkdir(parents=True, exist_ok=True)
        store = cls(root, {
            "format_version": FORMAT_VERSION,
            "created_by": f"repro {__version__}",
            "shard_size": shard_size,
            "image_size": None,
            "input_channels": None,
            "target_channels": None,
            "num_samples": 0,
            "designs": {},
            "metadata": dict(metadata or {}),
            "provenance": [],
            "shards": [],
        })
        store._write_manifest()
        return store

    @classmethod
    def open(cls, root: str | Path) -> "ShardedStore":
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"no {MANIFEST_NAME} under {root}")
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise StoreError(f"unsupported store format {version!r} "
                             f"(expected {FORMAT_VERSION})")
        return cls(root, manifest)

    @staticmethod
    def is_store(root: str | Path) -> bool:
        return (Path(root) / MANIFEST_NAME).exists()

    # -- introspection -----------------------------------------------------

    @property
    def num_samples(self) -> int:
        return int(self.manifest["num_samples"])

    def __len__(self) -> int:
        return self.num_samples

    @property
    def num_shards(self) -> int:
        return len(self.manifest["shards"])

    @property
    def shard_size(self) -> int:
        return int(self.manifest["shard_size"])

    @property
    def image_size(self) -> int | None:
        return self.manifest["image_size"]

    @property
    def designs(self) -> list[str]:
        return list(self.manifest["designs"])

    @property
    def metadata(self) -> dict:
        return self.manifest["metadata"]

    @property
    def sample_hashes(self) -> list[str]:
        """Per-sample content hashes in dataset order (buffered included)."""
        hashes = []
        for shard in self.manifest["shards"]:
            hashes.extend(shard["sample_hashes"])
        hashes.extend(sample_content_hash(s) for s in self._buffer)
        return hashes

    def stats(self) -> dict:
        """Summary for ``repro data stats`` (counts, sizes, provenance)."""
        shard_bytes = sum(
            (self.root / shard["name"]).stat().st_size
            for shard in self.manifest["shards"]
            if (self.root / shard["name"]).exists())
        return {
            "root": str(self.root),
            "num_samples": self.num_samples,
            "num_shards": self.num_shards,
            "shard_size": self.shard_size,
            "image_size": self.image_size,
            "designs": dict(self.manifest["designs"]),
            "total_bytes": shard_bytes,
            "provenance_records": len(self.manifest["provenance"]),
        }

    # -- writing -----------------------------------------------------------

    def append(self, sample: Sample) -> None:
        """Buffer one sample; write a shard when the buffer fills."""
        self._check_shapes(sample)
        self._buffer.append(sample)
        if len(self._buffer) >= self.shard_size:
            self._write_shard()

    def extend(self, samples: Iterable[Sample]) -> None:
        for sample in samples:
            self.append(sample)

    def flush(self) -> None:
        """Write any buffered samples as a final (possibly partial) shard."""
        if self._buffer:
            self._write_shard()

    def add_provenance(self, record: dict) -> None:
        """Append one build record to the manifest and persist it."""
        self.manifest["provenance"].append(dict(record))
        self._write_manifest()

    def _check_shapes(self, sample: Sample) -> None:
        manifest = self.manifest
        if manifest["image_size"] is None:
            manifest["image_size"] = int(sample.x.shape[-1])
            manifest["input_channels"] = int(sample.x.shape[0])
            manifest["target_channels"] = int(sample.y.shape[0])
            return
        expected_x = (manifest["input_channels"], manifest["image_size"],
                      manifest["image_size"])
        expected_y = (manifest["target_channels"], manifest["image_size"],
                      manifest["image_size"])
        if tuple(sample.x.shape) != expected_x:
            raise StoreError(f"sample x shape {sample.x.shape} does not "
                             f"match store shape {expected_x}")
        if tuple(sample.y.shape) != expected_y:
            raise StoreError(f"sample y shape {sample.y.shape} does not "
                             f"match store shape {expected_y}")

    def _write_shard(self) -> None:
        samples, self._buffer = self._buffer, []
        name = f"shard-{self.num_shards:05d}.npz"
        path = self.root / name
        Dataset(samples).save(path)   # atomic (staged + os.replace)
        designs = sorted({sample.design for sample in samples})
        self.manifest["shards"].append({
            "name": name,
            "num_samples": len(samples),
            "sha256": file_sha256(path),
            "designs": designs,
            "sample_hashes": [sample_content_hash(s) for s in samples],
        })
        self.manifest["num_samples"] += len(samples)
        counts = self.manifest["designs"]
        for sample in samples:
            counts[sample.design] = counts.get(sample.design, 0) + 1
        self._write_manifest()

    def _write_manifest(self) -> None:
        _atomic_write_text(self.root / MANIFEST_NAME,
                           json.dumps(self.manifest, indent=1))

    # -- reading -----------------------------------------------------------

    def load_shard(self, index: int) -> Dataset:
        shard = self.manifest["shards"][index]
        # Decode span is separate from the loader's "data.shard_load":
        # this is the npz read+decompress alone, the loader span adds
        # whatever sits above it (manifest math, Sample assembly).
        with get_tracer().span("data.shard_decode", shard=index,
                               shard_name=shard["name"]):
            return Dataset.load(self.root / shard["name"])

    def iter_samples(self) -> Iterator[Sample]:
        """Stream every sample, holding one shard in memory at a time."""
        for index in range(self.num_shards):
            yield from self.load_shard(index)
        yield from self._buffer

    def to_dataset(self) -> Dataset:
        """Materialize the whole store (the legacy in-memory path)."""
        return Dataset(list(self.iter_samples()))

    # -- maintenance -------------------------------------------------------

    def verify(self) -> list[str]:
        """Recheck every shard against the manifest; return the problems.

        Checks file presence, sha256, per-shard sample counts, per-sample
        content hashes and shapes, and the manifest's total count.  An
        empty list means the store is intact.
        """
        problems = []
        total = 0
        for index, shard in enumerate(self.manifest["shards"]):
            path = self.root / shard["name"]
            if not path.exists():
                problems.append(f"shard {shard['name']}: file missing")
                continue
            if file_sha256(path) != shard["sha256"]:
                problems.append(f"shard {shard['name']}: sha256 mismatch "
                                f"(file corrupted or rewritten)")
                continue
            try:
                dataset = self.load_shard(index)
            except Exception as error:
                problems.append(f"shard {shard['name']}: unreadable "
                                f"({error})")
                continue
            total += len(dataset)
            if len(dataset) != shard["num_samples"]:
                problems.append(
                    f"shard {shard['name']}: {len(dataset)} samples, "
                    f"manifest says {shard['num_samples']}")
            hashes = [sample_content_hash(s) for s in dataset]
            if hashes != shard["sample_hashes"]:
                problems.append(
                    f"shard {shard['name']}: sample content hashes do not "
                    f"match the manifest")
            for sample in dataset:
                try:
                    self._check_shapes(sample)
                except StoreError as error:
                    problems.append(f"shard {shard['name']}: {error}")
                    break
        if total != self.num_samples:
            problems.append(f"manifest num_samples={self.num_samples} but "
                            f"shards hold {total}")
        return problems

    def merge_from(self, other: "ShardedStore") -> None:
        """Append every sample (and provenance) of ``other`` to this store.

        Samples are re-sharded at this store's ``shard_size``; call
        :meth:`flush` after the last merge.
        """
        if (self.image_size is not None and other.image_size is not None
                and self.image_size != other.image_size):
            raise StoreError(
                f"cannot merge image size {other.image_size} into "
                f"{self.image_size}")
        self.extend(other.iter_samples())
        self.manifest["provenance"].extend(other.manifest["provenance"])
        for key, value in other.metadata.items():
            self.metadata.setdefault(key, value)
        self._write_manifest()

    # -- conversions -------------------------------------------------------

    @classmethod
    def from_dataset(cls, root: str | Path, dataset: Dataset,
                     shard_size: int = DEFAULT_SHARD_SIZE,
                     metadata: dict | None = None,
                     provenance: list[dict] | None = None) -> "ShardedStore":
        """Write an in-memory dataset out as a new store."""
        store = cls.create(root, shard_size=shard_size, metadata=metadata)
        store.extend(dataset)
        store.flush()
        for record in provenance or []:
            store.manifest["provenance"].append(dict(record))
        store._write_manifest()
        return store

    @classmethod
    def convert_archive(cls, archive: str | Path, root: str | Path,
                        shard_size: int = DEFAULT_SHARD_SIZE,
                        metadata: dict | None = None) -> "ShardedStore":
        """Convert a legacy single-file ``Dataset.save`` archive to a store.

        The legacy archive is left in place; the new store records the
        conversion in its provenance.
        """
        archive = Path(archive)
        dataset = Dataset.load(archive)
        return cls.from_dataset(
            root, dataset, shard_size=shard_size, metadata=metadata,
            provenance=[{"converted_from": archive.name,
                         "num_samples": len(dataset)}])
