"""Dataset platform: sharded store, parallel generation, streaming loading.

* :mod:`repro.data.store` — fixed-size ``.npz`` shards plus a JSON
  manifest with provenance, per-shard sha256, and per-sample content
  hashes; atomic append/merge/verify, and conversion from legacy
  single-file ``Dataset.save`` archives.
* :mod:`repro.data.parallel` — the Section-5 per-placement
  route-and-render work fanned over a ``multiprocessing`` pool, with
  deterministic per-task seeding so worker-pool builds hash identically
  to serial ones.
* :mod:`repro.data.loader` — shard-aware shuffling, dihedral
  augmentation, and epoch streaming into the trainer without
  materializing the corpus.

Exposed on the CLI as ``repro data {build,merge,stats,verify,convert}``.
"""

from repro.data.loader import (
    NUM_DIHEDRAL,
    MemoryLoader,
    StreamingLoader,
    apply_dihedral,
    augment_pair,
    iter_eval_batches,
    shard_eval_arrays,
)
from repro.data.parallel import (
    DesignRecipe,
    build_design_store,
    design_recipe,
    iter_design_samples,
)
from repro.data.store import (
    DEFAULT_SHARD_SIZE,
    ShardedStore,
    StoreError,
    file_sha256,
    sample_content_hash,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "DesignRecipe",
    "MemoryLoader",
    "NUM_DIHEDRAL",
    "ShardedStore",
    "StoreError",
    "StreamingLoader",
    "apply_dihedral",
    "augment_pair",
    "build_design_store",
    "design_recipe",
    "file_sha256",
    "iter_design_samples",
    "iter_eval_batches",
    "sample_content_hash",
    "shard_eval_arrays",
]
