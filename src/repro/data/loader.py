"""Streaming training pipeline: shard-aware shuffling and augmentation.

Both loaders present epochs of ``(x, y)`` mini-batches to
:meth:`repro.gan.trainer.Pix2PixTrainer.fit_stream`:

* :class:`StreamingLoader` reads a :class:`~repro.data.store.ShardedStore`
  one shard at a time — peak residency is one shard, not the corpus.
* :class:`MemoryLoader` wraps an in-memory
  :class:`~repro.gan.dataset.Dataset`, optionally partitioned into virtual
  shards of the same size.

Shuffling is *shard-aware*: each epoch draws a shard order, then a
within-shard order, from one rng seeded by ``(seed, epoch)``.  Because
both loaders run the identical epoch plan over the same shard partition,
a streaming run over a store reproduces the in-memory run sample for
sample — which is what the loss-parity test pins down.

Augmentation applies a dihedral-group transform (rotations and flips)
jointly to the input stack and the target, drawn per sample from the same
epoch rng, so augmented runs are reproducible too.
"""

from __future__ import annotations

import time
from typing import Iterator

import numpy as np

from repro.gan.dataset import Dataset, Sample
from repro.obs.trace import get_tracer

from repro.data.store import ShardedStore

#: Order of the dihedral group of the square: 4 rotations x optional flip.
NUM_DIHEDRAL = 8


def apply_dihedral(array: np.ndarray, index: int) -> np.ndarray:
    """Apply dihedral transform ``index`` (0..7) over the last two axes.

    ``index % 4`` counts quarter-turn rotations; ``index >= 4`` adds a
    horizontal flip before rotating.  Index 0 is the identity and returns
    the input array itself (a no-op, not a copy).
    """
    if not 0 <= index < NUM_DIHEDRAL:
        raise ValueError(f"dihedral index must be in [0, {NUM_DIHEDRAL}), "
                         f"got {index}")
    if index == 0:
        return array
    result = array
    if index >= 4:
        result = np.flip(result, axis=-1)
    turns = index % 4
    if turns:
        result = np.rot90(result, k=turns, axes=(-2, -1))
    return np.ascontiguousarray(result)


def augment_pair(x: np.ndarray, y: np.ndarray, index: int
                 ) -> tuple[np.ndarray, np.ndarray]:
    """The same dihedral transform applied jointly to input and target."""
    return apply_dihedral(x, index), apply_dihedral(y, index)


def shard_eval_arrays(store: ShardedStore, shard_index: int,
                      batch_size: int = 16,
                      designs: list[str] | None = None
                      ) -> Iterator[tuple[np.ndarray, np.ndarray,
                                          list[str]]]:
    """One shard's samples as eval-order ``(x, y, designs)`` batches.

    Evaluation iteration is deterministic by construction: samples come
    out in manifest order with no shuffling and no augmentation, so two
    runs (or two workers handed the same shard) see identical batches.
    ``designs`` restricts to a subset of designs (split filtering) before
    batching, keeping batch boundaries independent of other shards.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    samples = store.load_shard(shard_index).samples
    if designs is not None:
        wanted = set(designs)
        samples = [sample for sample in samples if sample.design in wanted]
    for start in range(0, len(samples), batch_size):
        chunk = samples[start:start + batch_size]
        yield (np.stack([sample.x for sample in chunk]),
               np.stack([sample.y for sample in chunk]),
               [sample.design for sample in chunk])


def iter_eval_batches(store: ShardedStore, batch_size: int = 16,
                      designs: list[str] | None = None
                      ) -> Iterator[tuple[np.ndarray, np.ndarray,
                                          list[str]]]:
    """Stream a whole store in eval order, one shard resident at a time."""
    for shard_index in range(store.num_shards):
        yield from shard_eval_arrays(store, shard_index,
                                     batch_size=batch_size, designs=designs)


class _ShardLoader:
    """Epoch iteration over an abstract sequence of sample shards."""

    def __init__(self, batch_size: int = 1, seed: int = 0,
                 shuffle: bool = True, augment: bool = False):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self.seed = seed
        self.shuffle = shuffle
        self.augment = augment

    # Subclasses implement the shard view.
    def _num_shards(self) -> int:
        raise NotImplementedError

    def _load_shard(self, index: int) -> list[Sample]:
        raise NotImplementedError

    def _shard_length(self, index: int) -> int:
        """Sample count of one shard, without loading its arrays."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def epoch(self, index: int, skip_batches: int = 0
              ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield one epoch of ``(x, y)`` batches, deterministically.

        The rng is seeded by ``(loader seed, epoch index)`` — never the
        module-level ``np.random`` state — so epoch N is the same
        regardless of how many epochs ran before it, and two loaders over
        the same shard partition yield identical streams.  The epoch plan
        (shard order, within-shard orders, augmentation indices) is a pure
        function of ``(seed, epoch)``, which makes a run's position
        capturable as a plain ``(epoch, batches consumed)`` cursor.

        ``skip_batches`` resumes mid-epoch at that cursor: the first
        ``skip_batches`` batches of the plan are replayed without being
        built or yielded, producing a stream bitwise-identical to the
        tail of a full epoch.  Every rng draw still happens (the plan
        must not diverge), but shards that fall entirely inside the
        skipped prefix are never read — only their manifest lengths are.
        Skipped batches are always full ones (a short batch can only be
        the epoch's last), so the skip is ``skip_batches * batch_size``
        samples.
        """
        if skip_batches < 0:
            raise ValueError(
                f"skip_batches must be >= 0, got {skip_batches}")
        rng = np.random.default_rng((self.seed, index))
        num_shards = self._num_shards()
        shard_order = (rng.permutation(num_shards) if self.shuffle
                       else np.arange(num_shards))
        to_skip = skip_batches * self.batch_size
        batch_x: list[np.ndarray] = []
        batch_y: list[np.ndarray] = []
        for shard_index in shard_order:
            length = self._shard_length(int(shard_index))
            order = (rng.permutation(length) if self.shuffle
                     else np.arange(length))
            transforms = (rng.integers(0, NUM_DIHEDRAL, size=length)
                          if self.augment else None)
            if to_skip >= length:
                to_skip -= length
                continue
            samples = self._load_shard(int(shard_index))
            start, to_skip = to_skip, 0
            for position in range(start, length):
                sample = samples[int(order[position])]
                x, y = sample.x, sample.y
                if transforms is not None:
                    x, y = augment_pair(x, y, int(transforms[position]))
                batch_x.append(x)
                batch_y.append(y)
                if len(batch_x) == self.batch_size:
                    yield np.stack(batch_x), np.stack(batch_y)
                    batch_x, batch_y = [], []
        if batch_x:
            yield np.stack(batch_x), np.stack(batch_y)

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        return self.epoch(0)


class MemoryLoader(_ShardLoader):
    """The in-memory reference pipeline over a :class:`Dataset`.

    ``shard_size`` partitions the dataset into virtual shards (in dataset
    order, like the store does on append); ``None`` treats the whole
    dataset as one shard.
    """

    def __init__(self, dataset: Dataset, shard_size: int | None = None,
                 **kwargs):
        super().__init__(**kwargs)
        if shard_size is not None and shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        self.dataset = dataset
        step = shard_size if shard_size is not None else max(1, len(dataset))
        self._shards = [dataset.samples[i:i + step]
                        for i in range(0, len(dataset), step)] or [[]]

    def _num_shards(self) -> int:
        return len(self._shards)

    def _load_shard(self, index: int) -> list[Sample]:
        return self._shards[index]

    def _shard_length(self, index: int) -> int:
        return len(self._shards[index])

    def __len__(self) -> int:
        return len(self.dataset)


class StreamingLoader(_ShardLoader):
    """Stream a :class:`ShardedStore` without materializing it.

    One shard is resident at a time; ``peak_resident_samples``,
    ``shard_loads``, and ``shard_load_seconds`` record the memory/IO
    behavior so tests (and the bench) can assert the full corpus was
    never held at once — and so telemetry can say where epoch time went.
    """

    def __init__(self, store: ShardedStore, **kwargs):
        super().__init__(**kwargs)
        self.store = store
        self.peak_resident_samples = 0
        self.shard_loads = 0
        self.shard_load_seconds = 0.0

    def _num_shards(self) -> int:
        return self.store.num_shards

    def _shard_length(self, index: int) -> int:
        return int(self.store.manifest["shards"][index]["num_samples"])

    def _load_shard(self, index: int) -> list[Sample]:
        started = time.perf_counter()
        with get_tracer().span("data.shard_load", shard=index):
            samples = self.store.load_shard(index).samples
        self.shard_load_seconds += time.perf_counter() - started
        self.shard_loads += 1
        self.peak_resident_samples = max(self.peak_resident_samples,
                                         len(samples))
        return samples

    def __len__(self) -> int:
        return self.store.num_samples
