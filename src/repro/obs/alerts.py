"""Declarative threshold alerts over flattened metric series.

Rules are plain JSON — reviewable, diffable, no code::

    [{"name": "latency-p99-high",
      "metric": "serve_request_latency_seconds.p99",
      "op": ">", "value": 0.25, "for_seconds": 10,
      "severity": "page",
      "message": "p99 latency above 250ms"}]

``metric`` names a flat series exactly as
:func:`repro.obs.timeseries.flatten_export` spells it (histogram
quantiles as ``name.p99``, labeled children as ``name{label=value}``).
Each rule runs a small state machine per evaluation tick:

    ok --condition true--> pending --held for for_seconds--> firing
    firing/pending --condition false--> ok  (emits ``resolved`` if fired)

A metric absent from the snapshot evaluates to *not breached* — no data
is not an incident (the missing-series count is reported instead).
Firing and resolving transitions are appended to ``alerts.jsonl`` (one
JSON object per line, the repo's standard sidecar idiom), mirrored into
an ``obs_alert_firing`` gauge family (so alerts themselves aggregate
across the fleet), and readable live via :meth:`AlertManager.active` —
which is what ``GET /alerts`` and ``repro obs top`` render.  Stdlib-only.
"""

from __future__ import annotations

import json
import operator
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import MetricsRegistry

#: Conventional alert event log name.
ALERTS_NAME = "alerts.jsonl"

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}

_SEVERITIES = ("info", "warning", "page")


@dataclass(frozen=True)
class AlertRule:
    """One validated threshold rule."""

    name: str
    metric: str
    op: str
    value: float
    for_seconds: float = 0.0
    severity: str = "warning"
    message: str = ""

    def __post_init__(self):
        if not self.name:
            raise ValueError("alert rule needs a non-empty name")
        if not self.metric:
            raise ValueError(f"rule {self.name!r} needs a metric")
        if self.op not in _OPS:
            raise ValueError(f"rule {self.name!r}: unknown op {self.op!r} "
                             f"(use one of {sorted(_OPS)})")
        if self.for_seconds < 0:
            raise ValueError(f"rule {self.name!r}: for_seconds must be >= 0")
        if self.severity not in _SEVERITIES:
            raise ValueError(f"rule {self.name!r}: severity "
                             f"{self.severity!r} not in {_SEVERITIES}")

    def breached(self, sample: float) -> bool:
        return _OPS[self.op](sample, self.value)

    def describe(self) -> str:
        return f"{self.metric} {self.op} {self.value:g}"


def parse_rule(document: dict) -> AlertRule:
    known = {f for f in AlertRule.__dataclass_fields__}
    unknown = set(document) - known
    if unknown:
        raise ValueError(f"alert rule {document.get('name', '?')!r} has "
                         f"unknown keys {sorted(unknown)}")
    try:
        return AlertRule(**{key: (float(value)
                                  if key in ("value", "for_seconds")
                                  else value)
                            for key, value in document.items()})
    except TypeError as error:
        raise ValueError(f"invalid alert rule "
                         f"{document.get('name', '?')!r}: {error}") from None


def load_rules(path: str | Path) -> list[AlertRule]:
    """Parse a rules file: a JSON list, or ``{"rules": [...]}``."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(document, dict):
        document = document.get("rules", [])
    if not isinstance(document, list):
        raise ValueError(f"{path}: expected a JSON list of rules")
    rules = [parse_rule(entry) for entry in document]
    names = [rule.name for rule in rules]
    if len(set(names)) != len(names):
        raise ValueError(f"{path}: duplicate rule names")
    return rules


@dataclass
class _RuleState:
    pending_since: float | None = None
    firing_since: float | None = None
    last_value: float | None = None
    fired_count: int = 0


@dataclass
class AlertEvent:
    """One firing/resolved transition (what ``alerts.jsonl`` stores)."""

    rule: str
    state: str               # "firing" | "resolved"
    at_unix: float
    value: float | None
    severity: str
    condition: str
    message: str = ""
    extra: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        document = {
            "rule": self.rule,
            "state": self.state,
            "at_unix": self.at_unix,
            "value": self.value,
            "severity": self.severity,
            "condition": self.condition,
        }
        if self.message:
            document["message"] = self.message
        document.update(self.extra)
        return document


class AlertManager:
    """Evaluate rules against metric snapshots; track and log transitions.

    Parameters
    ----------
    rules:
        The validated rule set.
    log_path:
        Where to append ``alerts.jsonl`` events (``None`` disables the
        file log; transitions are still tracked in memory).
    metrics:
        Optional registry for the ``obs_alert_firing`` gauge family.
    """

    def __init__(self, rules: list[AlertRule],
                 log_path: str | Path | None = None,
                 metrics: MetricsRegistry | None = None):
        self.rules = list(rules)
        self.log_path = Path(log_path) if log_path is not None else None
        self._lock = threading.Lock()
        self._states = {rule.name: _RuleState() for rule in self.rules}
        self._events: list[AlertEvent] = []
        self._g_firing = None
        if metrics is not None:
            self._g_firing = metrics.gauge(
                "obs_alert_firing",
                "1 while the named alert rule is firing.",
                labelnames=("rule",), agg="max")
            for rule in self.rules:
                self._g_firing.labels(rule=rule.name).set(0.0)

    def evaluate(self, flat: dict, now: float | None = None
                 ) -> list[AlertEvent]:
        """Run every rule against one flattened snapshot.

        Returns the transitions (newly firing / newly resolved) this
        tick produced, already appended to the event log.
        """
        now = time.time() if now is None else now
        transitions: list[AlertEvent] = []
        with self._lock:
            for rule in self.rules:
                state = self._states[rule.name]
                sample = flat.get(rule.metric)
                state.last_value = sample
                breached = sample is not None and rule.breached(sample)
                if breached:
                    if state.pending_since is None:
                        state.pending_since = now
                    held = now - state.pending_since
                    if state.firing_since is None \
                            and held >= rule.for_seconds:
                        state.firing_since = now
                        state.fired_count += 1
                        transitions.append(self._transition(
                            rule, "firing", now, sample))
                else:
                    if state.firing_since is not None:
                        transitions.append(self._transition(
                            rule, "resolved", now, sample))
                    state.pending_since = None
                    state.firing_since = None
                if self._g_firing is not None:
                    self._g_firing.labels(rule=rule.name).set(
                        1.0 if state.firing_since is not None else 0.0)
            self._events.extend(transitions)
        if transitions and self.log_path is not None:
            self._append(transitions)
        return transitions

    def _transition(self, rule: AlertRule, state: str, now: float,
                    sample: float | None) -> AlertEvent:
        return AlertEvent(rule=rule.name, state=state, at_unix=now,
                          value=sample, severity=rule.severity,
                          condition=rule.describe(), message=rule.message)

    def _append(self, events: list[AlertEvent]) -> None:
        self.log_path.parent.mkdir(parents=True, exist_ok=True)
        with self.log_path.open("a", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event.to_json(),
                                        sort_keys=True) + "\n")

    # -- reporting ----------------------------------------------------------

    def active(self) -> list[dict]:
        """Currently-firing alerts (the ``GET /alerts`` payload)."""
        with self._lock:
            report = []
            for rule in self.rules:
                state = self._states[rule.name]
                if state.firing_since is None:
                    continue
                report.append({
                    "rule": rule.name,
                    "severity": rule.severity,
                    "condition": rule.describe(),
                    "message": rule.message,
                    "since_unix": state.firing_since,
                    "value": state.last_value,
                })
            return report

    def status(self) -> dict:
        """Full rule status (every rule, firing or not)."""
        with self._lock:
            return {
                rule.name: {
                    "condition": rule.describe(),
                    "severity": rule.severity,
                    "for_seconds": rule.for_seconds,
                    "firing": self._states[rule.name].firing_since
                    is not None,
                    "pending": (
                        self._states[rule.name].pending_since is not None
                        and self._states[rule.name].firing_since is None),
                    "last_value": self._states[rule.name].last_value,
                    "fired_count": self._states[rule.name].fired_count,
                }
                for rule in self.rules
            }

    def events(self) -> list[AlertEvent]:
        with self._lock:
            return list(self._events)


def read_alert_log(path: str | Path) -> tuple[list[dict], int]:
    """Read ``alerts.jsonl``; returns ``(events, skipped_lines)``.

    Partially-written final lines (a writer mid-append) are skipped and
    counted, never raised.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    events, skipped = [], 0
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                skipped += 1
    return events, skipped
