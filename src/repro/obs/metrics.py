"""Metrics registry: counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` per subsystem (the serving engine owns one;
anything standalone can build its own).  Three metric kinds cover the
repo's needs:

* :class:`Counter` — monotonically non-decreasing totals (requests,
  cache hits, forward seconds).  Optionally label-split into children
  (``registry.counter(..., labelnames=("route",)).labels(route=...)``).
* :class:`Gauge` — a value that goes both ways (queue depth, arena
  bytes).  A gauge built with ``fn=`` is *collected*: its value is read
  from the callback at snapshot/render time, so live objects (a queue, a
  workspace) are observed without double accounting.
* :class:`Histogram` — fixed upper-bound buckets with exact per-bucket
  counts, a running sum/count, and the observed max; quantiles (p50/p99)
  are estimated by linear interpolation inside the owning bucket, the
  standard Prometheus-side approximation.

Snapshots are deterministic: metrics sort by name, labeled children by
label values, so two snapshots of identical state are identical JSON.
``render_prometheus`` emits the Prometheus text exposition format
(``# HELP``/``# TYPE`` headers, cumulative ``_bucket{le=...}`` rows with
``+Inf``, ``_sum``/``_count``).

For fleet use (``repro.obs.publish`` / ``repro.obs.aggregate``) a
registry also ``export()``s itself with full merge metadata — kind,
help, label names, gauge aggregation policy (``sum``/``max``/``last``),
histogram bucket bounds and raw per-bucket counts — which is enough to
reconstruct an equivalent live registry in another process and to merge
N worker exports into one with exact semantics.

Everything here is stdlib-only and thread-safe: one lock per metric
child, none held during callback collection longer than the read.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Callable, Iterable

#: Default histogram buckets for second-scale latencies (upper bounds).
DEFAULT_TIME_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _format_value(value: float) -> str:
    """Prometheus-friendly number rendering: ints bare, floats by repr."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_int = int(value)
    if as_int == value:
        return str(as_int)
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_suffix(labels: tuple[tuple[str, str], ...],
                  extra: str = "") -> str:
    parts = [f'{name}="{_escape_label(value)}"' for name, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def quantile_from_counts(bounds, counts, q: float, *,
                         minimum: float | None = None,
                         maximum: float | None = None) -> float:
    """Estimated q-quantile from raw histogram state.

    Interpolation rule (shared by :meth:`Histogram.quantile` and the
    merged-snapshot readers): the target rank ``q * total`` is located
    in its owning bucket by cumulative count, then linearly interpolated
    between that bucket's lower and upper bounds by the rank's fraction
    through the bucket.  Exact edges: ``q=0.0`` returns the observed
    minimum and ``q=1.0`` the observed maximum (when tracked) — both are
    order statistics the histogram knows exactly, so no interpolation
    applies.  Estimates clamp to ``[minimum, maximum]``; ranks landing
    in the ``+Inf`` bucket return the observed maximum (that bucket has
    no width to interpolate in).  An empty histogram returns 0.0 so
    merged-snapshot quantiles are always defined numbers.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    if q == 0.0 and minimum is not None:
        return minimum
    if q == 1.0 and maximum is not None:
        return maximum
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        lower = cumulative
        cumulative += count
        if cumulative >= rank:
            if index >= len(bounds):
                # +Inf bucket: the best point estimate is the max seen.
                return maximum if maximum is not None else bounds[-1]
            hi = bounds[index]
            lo = bounds[index - 1] if index > 0 else min(0.0, hi)
            fraction = (rank - lower) / count
            estimate = lo + (hi - lo) * max(0.0, min(1.0, fraction))
            if maximum is not None:
                estimate = min(estimate, maximum)
            if minimum is not None:
                estimate = max(estimate, minimum)
            return estimate
    return maximum if maximum is not None else bounds[-1]


class Counter:
    """A monotonically non-decreasing total.

    ``fn``-backed counters are collected (value read from the callback);
    calling :meth:`inc` on one is an error.
    """

    kind = "counter"

    def __init__(self, fn: Callable[[], float] | None = None):
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise RuntimeError("cannot inc a collected (fn-backed) counter")
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def _snapshot_value(self):
        value = self.value
        return int(value) if value == int(value) else value

    def _restore(self, value: float) -> None:
        """Set the absolute total (aggregator reconstruction only)."""
        with self._lock:
            self._fn = None
            self._value = float(value)


#: Gauge merge policies a fleet aggregator may apply across workers.
GAUGE_AGGREGATIONS = ("sum", "max", "last")


class Gauge:
    """A value that can go up and down; optionally callback-collected.

    ``agg`` declares how a fleet aggregator merges this gauge across
    worker snapshots: ``"sum"`` (queue depths, byte counts), ``"max"``
    (high-water marks), or ``"last"`` (ratios and other values where
    summing is meaningless; the value from the last worker in sorted
    worker order wins, deterministically).
    """

    kind = "gauge"

    def __init__(self, fn: Callable[[], float] | None = None,
                 agg: str = "last"):
        if agg not in GAUGE_AGGREGATIONS:
            raise ValueError(f"gauge agg must be one of "
                             f"{GAUGE_AGGREGATIONS}, got {agg!r}")
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn
        self.agg = agg

    def _check_settable(self) -> None:
        if self._fn is not None:
            raise RuntimeError("cannot set a collected (fn-backed) gauge")

    def set(self, value: float) -> None:
        self._check_settable()
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._check_settable()
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_to_max(self, value: float) -> None:
        """Ratchet: keep the largest value ever set (high-water marks)."""
        self._check_settable()
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def _snapshot_value(self):
        value = self.value
        return int(value) if value == int(value) else value

    def _restore(self, value: float) -> None:
        """Set the absolute value (aggregator reconstruction only)."""
        with self._lock:
            self._fn = None
            self._value = float(value)


class Histogram:
    """Fixed-bucket histogram with exact per-bucket counts.

    ``buckets`` are inclusive upper bounds in increasing order; an
    implicit ``+Inf`` bucket catches the rest.  An observation equal to
    a bound lands in that bound's bucket (Prometheus ``le`` semantics).
    """

    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = DEFAULT_TIME_BUCKETS):
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing, "
                             f"got {bounds}")
        self._lock = threading.Lock()
        self.bounds = tuple(bounds)
        # counts[i] observations in (bounds[i-1], bounds[i]]; counts[-1]
        # is the +Inf overflow.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._max = -math.inf
        self._min = math.inf

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value
            if value < self._min:
                self._min = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def max_observed(self) -> float | None:
        with self._lock:
            return self._max if self._count else None

    @property
    def min_observed(self) -> float | None:
        with self._lock:
            return self._min if self._count else None

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> dict[str, int]:
        """Exact per-bucket (non-cumulative) counts, keyed by upper bound."""
        with self._lock:
            counts = list(self._counts)
        keyed = {_format_value(bound): counts[i]
                 for i, bound in enumerate(self.bounds)}
        keyed["+Inf"] = counts[-1]
        return keyed

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0..1); see :func:`quantile_from_counts`.

        The interpolation rule: the rank ``q * count`` is located in its
        owning bucket, then linearly interpolated between the bucket's
        bounds; estimates clamp to the observed ``[min, max]``.  Exact
        edges: ``q=0.0`` returns the observed minimum, ``q=1.0`` the
        observed maximum, and an empty histogram returns 0.0 at any
        ``q`` — so quantiles over merged snapshots are always defined.
        """
        with self._lock:
            counts = list(self._counts)
            total = self._count
            observed_max = self._max if total else None
            observed_min = self._min if total else None
        return quantile_from_counts(self.bounds, counts, q,
                                    minimum=observed_min,
                                    maximum=observed_max)

    def _snapshot_value(self) -> dict:
        return {
            "buckets": self.bucket_counts(),
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min_observed,
            "max": self.max_observed,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }

    def _raw_state(self) -> dict:
        """Exact internal state for export/merge (non-cumulative counts,
        ``+Inf`` last; ``min``/``max`` are ``None`` when empty)."""
        with self._lock:
            return {
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
            }

    def _restore(self, counts, total, value_sum, minimum, maximum) -> None:
        """Set exact internal state (aggregator reconstruction only)."""
        if len(counts) != len(self.bounds) + 1:
            raise ValueError(
                f"expected {len(self.bounds) + 1} bucket counts, "
                f"got {len(counts)}")
        with self._lock:
            self._counts = [int(c) for c in counts]
            self._sum = float(value_sum)
            self._count = int(total)
            self._min = math.inf if minimum is None else float(minimum)
            self._max = -math.inf if maximum is None else float(maximum)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One registered name: help text, kind, and labeled children.

    An unlabeled metric is a family with a single anonymous child, which
    the registry returns directly — callers never see the family.
    """

    def __init__(self, name: str, help_text: str, kind: str,
                 labelnames: tuple[str, ...], **child_kwargs):
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = labelnames
        self._child_kwargs = child_kwargs
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not labelnames:
            self._children[()] = _KINDS[kind](**child_kwargs)

    def labels(self, **labels: str):
        """The child metric for one label-value combination (created lazily)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(f"{self.name} expects labels "
                             f"{self.labelnames}, got {tuple(labels)}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = _KINDS[self.kind](**self._child_kwargs)
                self._children[key] = child
            return child

    def _sorted_children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def items(self) -> list[tuple[tuple[str, ...], object]]:
        """(label-values tuple, child metric) pairs, deterministically
        sorted — the read-side counterpart of :meth:`labels`."""
        return self._sorted_children()

    def _export(self) -> dict:
        """The family with full merge metadata (see ``MetricsRegistry.export``)."""
        document: dict = {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
        }
        if self.kind == "gauge":
            document["agg"] = self._child_kwargs.get("agg", "last")
        children = []
        for key, child in self._sorted_children():
            if self.kind == "histogram":
                if "bounds" not in document:
                    document["bounds"] = list(child.bounds)
                children.append([list(key), child._raw_state()])
            else:
                children.append([list(key), child._snapshot_value()])
        if self.kind == "histogram" and "bounds" not in document:
            document["bounds"] = list(self._child_kwargs.get("buckets", ()))
        document["children"] = children
        return document


class MetricsRegistry:
    """Get-or-create registry of named metrics with deterministic output."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, name: str, help_text: str, kind: str,
                       labelnames: tuple[str, ...], **child_kwargs):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, help_text, kind,
                                 tuple(labelnames), **child_kwargs)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}")
            elif family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} has labels {family.labelnames}, "
                    f"not {tuple(labelnames)}")
        if family.labelnames:
            return family
        return family._children[()]

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = (),
                fn: Callable[[], float] | None = None):
        """A :class:`Counter` (or, with ``labelnames``, its family)."""
        return self._get_or_create(name, help_text, "counter",
                                   tuple(labelnames), fn=fn)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = (),
              fn: Callable[[], float] | None = None,
              agg: str = "last"):
        """A :class:`Gauge` (or its family); ``fn`` makes it collected.

        ``agg`` declares the fleet merge policy (``sum``/``max``/``last``)
        applied when worker snapshots of this gauge are aggregated.
        """
        return self._get_or_create(name, help_text, "gauge",
                                   tuple(labelnames), fn=fn, agg=agg)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
                  labelnames: Iterable[str] = ()):
        return self._get_or_create(name, help_text, "histogram",
                                   tuple(labelnames),
                                   buckets=tuple(buckets))

    # -- output ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic JSON-able view of every metric's current value."""
        with self._lock:
            families = sorted(self._families.items())
        document: dict = {}
        for name, family in families:
            children = family._sorted_children()
            if not family.labelnames:
                document[name] = children[0][1]._snapshot_value()
                continue
            document[name] = {
                ",".join(f"{ln}={lv}" for ln, lv
                         in zip(family.labelnames, key)):
                child._snapshot_value()
                for key, child in children}
        return document

    def export(self) -> dict:
        """Snapshot *with merge metadata*, the unit of fleet publishing.

        Unlike :meth:`snapshot` (values only, human/JSON-friendly), the
        export carries everything an aggregator needs to merge worker
        registries exactly: kind, help text, label names, gauge ``agg``
        policy, histogram bucket bounds, and raw non-cumulative bucket
        counts with exact ``sum``/``count``/``min``/``max``.  Children
        are ``[label-values, state]`` pairs in deterministic sorted
        order.  Collected (``fn=``-backed) metrics export their value at
        call time; the callback itself does not travel.
        """
        with self._lock:
            families = sorted(self._families.items())
        return {name: family._export() for name, family in families}

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            families = sorted(self._families.items())
        lines: list[str] = []
        for name, family in families:
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in family._sorted_children():
                labels = tuple(zip(family.labelnames, key))
                if family.kind == "histogram":
                    self._render_histogram(lines, name, labels, child)
                else:
                    lines.append(f"{name}{_label_suffix(labels)} "
                                 f"{_format_value(child.value)}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_histogram(lines: list[str], name: str,
                          labels: tuple[tuple[str, str], ...],
                          histogram: Histogram) -> None:
        cumulative = 0
        counts = histogram.bucket_counts()
        for bound_text, count in counts.items():
            cumulative += count
            suffix = _label_suffix(labels, f'le="{bound_text}"')
            lines.append(f"{name}_bucket{suffix} {cumulative}")
        plain = _label_suffix(labels)
        lines.append(f"{name}_sum{plain} {_format_value(histogram.sum)}")
        lines.append(f"{name}_count{plain} {histogram.count}")
