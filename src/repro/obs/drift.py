"""Serve-side forecast-quality drift monitors.

A serving fleet can degrade silently: the traffic distribution wanders
away from what the model was trained on, and nobody reruns the eval
suite against live inputs.  This module watches three signals cheap
enough for the serve path:

* **hotspot-score shift** — each forecast is reduced to one scalar, the
  fraction of pixels whose decoded congestion utilization exceeds a
  threshold (:func:`hotspot_score`).  A :class:`ReferenceProfile`
  captured at *training* time (by the Runner's eval pass over held-out
  batches) fixes the expected distribution of that scalar; at serve
  time a sliding window of live scores is compared against it by total
  variation distance (0 = identical, 1 = disjoint).
* **input novelty rate** — the fraction of recent requests whose input
  content hash (the forecast cache's sha256 digest) was never seen
  before.  A hot cache serving a stable input population has low
  novelty; a sudden jump means the traffic changed.
* **sampled ground-truth NRMS** — when callers *do* have the real
  congestion map after the fact, :meth:`DriftMonitor.observe_truth`
  folds the paper's NRMS metric over a sliding sample of them.

Every signal is exported as a ``serve_drift_*`` gauge family labeled by
model (``agg="max"`` so a fleet merge shows the worst worker), which is
what alert rules (:mod:`repro.obs.alerts`) evaluate.

This module needs numpy (decoding forecasts) and must **not** be
imported by ``repro.obs.__init__`` — the obs package import path stays
stdlib-only for the numpy-free CLI commands.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from pathlib import Path

from repro.obs.metrics import MetricsRegistry

#: Default congestion-utilization threshold defining a hotspot pixel.
DEFAULT_THRESHOLD = 0.5

#: Default number of uniform score bins over [0, 1] in a profile.
DEFAULT_BINS = 20

#: Conventional file name for a run's reference profile artifact.
REFERENCE_NAME = "reference.json"


def hotspot_score(image, threshold: float = DEFAULT_THRESHOLD) -> float:
    """Fraction of pixels of one forecast that are hotspot-hot.

    ``image`` is a served forecast — channel-last ``(H, W, 3)`` in
    [0, 1], decoded through the paper's color gradient; any other shape
    falls back to the raw mean-over-channels utilization.
    """
    import numpy as np

    image = np.asarray(image, dtype=np.float64)
    if image.ndim >= 1 and image.shape[-1] == 3:
        from repro.viz.colors import COLOR_SCHEME, decode_utilization
        utilization = decode_utilization(image, COLOR_SCHEME)
    else:
        utilization = image
    if utilization.size == 0:
        return 0.0
    return float(np.mean(utilization >= threshold))


def hotspot_scores(images, threshold: float = DEFAULT_THRESHOLD
                   ) -> list[float]:
    """Per-sample hotspot scores for a batch of ``(N, H, W, 3)`` forecasts
    (one shared color decode instead of N)."""
    import numpy as np

    images = np.asarray(images, dtype=np.float64)
    if images.ndim == 3:
        images = images[None]
    if images.shape[-1] == 3:
        from repro.viz.colors import COLOR_SCHEME, decode_utilization
        utilization = decode_utilization(images, COLOR_SCHEME)
    else:
        utilization = images
    hot = utilization >= threshold
    return [float(value)
            for value in hot.reshape(hot.shape[0], -1).mean(axis=1)]


def sampled_nrms(pred, target) -> float:
    """Paper NRMS (RMSE over the target's value range) of one pair.

    Both arrays are decoded to per-pixel utilization first when they are
    channel-last RGB forecasts.  A constant target (zero range) yields
    0.0 for a perfect match and ``inf`` otherwise, matching the eval
    suite's convention of never dividing by zero silently.
    """
    import numpy as np

    def _util(a):
        a = np.asarray(a, dtype=np.float64)
        if a.ndim >= 1 and a.shape[-1] == 3:
            from repro.viz.colors import COLOR_SCHEME, decode_utilization
            return decode_utilization(a, COLOR_SCHEME)
        return a
    p, t = _util(pred), _util(target)
    rmse = float(np.sqrt(np.mean((p - t) ** 2)))
    spread = float(t.max() - t.min()) if t.size else 0.0
    if spread == 0.0:
        return 0.0 if rmse == 0.0 else math.inf
    return rmse / spread


def _bin_index(score: float, bins: int) -> int:
    return min(max(int(score * bins), 0), bins - 1)


class ReferenceProfile:
    """The training-time distribution of per-forecast hotspot scores.

    A fixed uniform histogram over [0, 1] (``bins`` buckets) plus the
    observation count and mean.  JSON round-trips exactly (counts are
    integers), so the artifact a Runner writes is byte-stable.
    """

    def __init__(self, bins: int = DEFAULT_BINS,
                 threshold: float = DEFAULT_THRESHOLD,
                 meta: dict | None = None):
        if bins < 2:
            raise ValueError(f"bins must be >= 2, got {bins}")
        self.bins = int(bins)
        self.threshold = float(threshold)
        self.meta = dict(meta or {})
        self.counts = [0] * self.bins
        self.count = 0
        self._score_sum = 0.0

    @classmethod
    def from_scores(cls, scores, bins: int = DEFAULT_BINS,
                    threshold: float = DEFAULT_THRESHOLD,
                    meta: dict | None = None) -> "ReferenceProfile":
        profile = cls(bins=bins, threshold=threshold, meta=meta)
        for score in scores:
            profile.observe(float(score))
        return profile

    def observe(self, score: float) -> None:
        self.counts[_bin_index(score, self.bins)] += 1
        self.count += 1
        self._score_sum += score

    @property
    def mean(self) -> float:
        return self._score_sum / self.count if self.count else 0.0

    def density(self) -> list[float]:
        """Normalized bin probabilities (all zeros when empty)."""
        if not self.count:
            return [0.0] * self.bins
        return [c / self.count for c in self.counts]

    def shift(self, scores) -> float:
        """Total variation distance between live scores and the profile.

        ``0.5 * sum(|p_i - q_i|)`` over the shared bins — 0 when the
        live window reproduces the training distribution, 1 when they
        are disjoint.  An empty window (or empty profile) reads 0 —
        no evidence is not drift.
        """
        scores = list(scores)
        if not scores or not self.count:
            return 0.0
        live = [0] * self.bins
        for score in scores:
            live[_bin_index(float(score), self.bins)] += 1
        n = len(scores)
        return 0.5 * sum(abs(c / n - q)
                         for c, q in zip(live, self.density()))

    # -- persistence --------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "kind": "hotspot_score_profile",
            "bins": self.bins,
            "threshold": self.threshold,
            "counts": list(self.counts),
            "count": self.count,
            "score_sum": self._score_sum,
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, document: dict) -> "ReferenceProfile":
        if document.get("kind") != "hotspot_score_profile":
            raise ValueError("not a reference profile document")
        profile = cls(bins=document["bins"],
                      threshold=document["threshold"],
                      meta=document.get("meta"))
        counts = list(document["counts"])
        if len(counts) != profile.bins:
            raise ValueError(f"profile has {len(counts)} counts for "
                             f"{profile.bins} bins")
        profile.counts = counts
        profile.count = int(document["count"])
        profile._score_sum = float(document.get("score_sum", 0.0))
        return profile

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), sort_keys=True,
                                   indent=2) + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ReferenceProfile":
        return cls.from_json(
            json.loads(Path(path).read_text(encoding="utf-8")))


class _ModelWindow:
    """Per-model sliding state (scores, novelty flags, truth NRMS)."""

    def __init__(self, window: int, novelty_window: int,
                 seen_capacity: int):
        self.scores: deque = deque(maxlen=window)
        self.novel_flags: deque = deque(maxlen=novelty_window)
        self.nrms: deque = deque(maxlen=window)
        self.seen: set = set()
        self.seen_order: deque = deque(maxlen=seen_capacity)
        self.reference: ReferenceProfile | None = None
        self.observations = 0

    def note_digest(self, digest: str) -> bool:
        """Record one digest; True when it was never seen before."""
        novel = digest not in self.seen
        if novel:
            if len(self.seen_order) == self.seen_order.maxlen:
                self.seen.discard(self.seen_order[0])
            self.seen_order.append(digest)
            self.seen.add(digest)
        self.novel_flags.append(1 if novel else 0)
        return novel


class DriftMonitor:
    """Sliding-window drift signals for every served model.

    Thread-safe (the engine worker observes, HTTP threads read).  All
    signals surface both as return values of :meth:`status` and as the
    ``serve_drift_*`` gauges on ``metrics``.
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 window: int = 256, novelty_window: int = 512,
                 seen_capacity: int = 8192,
                 threshold: float = DEFAULT_THRESHOLD):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.window = window
        self.novelty_window = novelty_window
        self.seen_capacity = seen_capacity
        self.threshold = threshold
        self._lock = threading.Lock()
        self._models: dict[str, _ModelWindow] = {}
        m = self.metrics
        self._g_shift = m.gauge(
            "serve_drift_score_shift",
            "Total variation distance of live hotspot scores vs the "
            "training reference profile.",
            labelnames=("model",), agg="max")
        self._g_novelty = m.gauge(
            "serve_drift_novelty_rate",
            "Fraction of recent requests with never-seen input hashes.",
            labelnames=("model",), agg="max")
        self._g_nrms = m.gauge(
            "serve_drift_sampled_nrms",
            "Mean NRMS over the sampled ground-truth window.",
            labelnames=("model",), agg="max")
        self._g_window = m.gauge(
            "serve_drift_window_size",
            "Live forecasts currently inside the drift window.",
            labelnames=("model",), agg="sum")
        self._c_observed = m.counter(
            "serve_drift_observations_total",
            "Forecasts folded into the drift monitors.",
            labelnames=("model",))

    def _state(self, model_id: str) -> _ModelWindow:
        state = self._models.get(model_id)
        if state is None:
            state = self._models[model_id] = _ModelWindow(
                self.window, self.novelty_window, self.seen_capacity)
        return state

    def set_reference(self, model_id: str,
                      profile: ReferenceProfile) -> None:
        with self._lock:
            self._state(model_id).reference = profile

    def load_reference(self, model_id: str, path: str | Path) -> None:
        self.set_reference(model_id, ReferenceProfile.load(path))

    def has_reference(self, model_id: str) -> bool:
        with self._lock:
            state = self._models.get(model_id)
            return state is not None and state.reference is not None

    # -- observation --------------------------------------------------------

    def observe(self, model_id: str, image,
                digest: str | None = None) -> float:
        """Fold one served forecast in; returns its hotspot score."""
        score = hotspot_score(image, self.threshold)
        with self._lock:
            state = self._state(model_id)
            state.scores.append(score)
            state.observations += 1
            if digest is not None:
                state.note_digest(digest)
            self._publish(model_id, state)
        self._c_observed.labels(model=model_id).inc()
        return score

    def observe_truth(self, model_id: str, image, target) -> float:
        """Fold one (forecast, ground truth) pair in; returns its NRMS."""
        value = sampled_nrms(image, target)
        with self._lock:
            state = self._state(model_id)
            if math.isfinite(value):
                state.nrms.append(value)
            self._publish(model_id, state)
        return value

    def _publish(self, model_id: str, state: _ModelWindow) -> None:
        """Update the gauges from one model's windows (lock held)."""
        shift = (state.reference.shift(state.scores)
                 if state.reference is not None else 0.0)
        flags = state.novel_flags
        novelty = sum(flags) / len(flags) if flags else 0.0
        nrms = (sum(state.nrms) / len(state.nrms)
                if state.nrms else 0.0)
        self._g_shift.labels(model=model_id).set(shift)
        self._g_novelty.labels(model=model_id).set(novelty)
        self._g_nrms.labels(model=model_id).set(nrms)
        self._g_window.labels(model=model_id).set(float(len(state.scores)))

    # -- reporting ----------------------------------------------------------

    def status(self) -> dict:
        """Per-model drift signals (the ``GET /alerts`` payload half)."""
        with self._lock:
            report = {}
            for model_id, state in sorted(self._models.items()):
                flags = state.novel_flags
                report[model_id] = {
                    "observations": state.observations,
                    "window_size": len(state.scores),
                    "score_mean": (sum(state.scores) / len(state.scores)
                                   if state.scores else 0.0),
                    "score_shift": (
                        state.reference.shift(state.scores)
                        if state.reference is not None else None),
                    "has_reference": state.reference is not None,
                    "novelty_rate": (sum(flags) / len(flags)
                                     if flags else 0.0),
                    "sampled_nrms": (sum(state.nrms) / len(state.nrms)
                                     if state.nrms else None),
                    "truth_samples": len(state.nrms),
                }
            return report
