"""Stdlib-only readers/renderers for telemetry and trace artifacts.

Everything ``repro obs`` and the ``repro train status`` timing block
need to turn a run directory's ``telemetry.jsonl`` / ``trace.jsonl``
into numbers and terminal text lives here — with zero numpy on the
import path, same contract as ``repro.train.status``.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

TELEMETRY_NAME = "telemetry.jsonl"
TRACE_NAME = "trace.jsonl"


def read_jsonl(path: str | Path) -> tuple[list[dict], int]:
    """All records from a JSONL file plus the count of skipped lines.

    A live writer may be mid-append, leaving a partially-written final
    line; readers polling such files (``repro obs tail``, ``train
    status``, trace export) must not crash on it.  Unparseable lines are
    skipped and counted, never raised.  Returns ``([], 0)`` when the
    file is absent.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    records, skipped = [], 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                skipped += 1
    return records, skipped


def read_telemetry(path: str | Path) -> list[dict]:
    """All telemetry records from a JSONL file ([] when absent).

    Partially-written lines are skipped (see :func:`read_jsonl`).
    """
    return read_jsonl(path)[0]


def tail_telemetry(path: str | Path, count: int = 10) -> list[dict]:
    """The last ``count`` parseable telemetry records, oldest first."""
    path = Path(path)
    if not path.exists():
        return []
    tail: deque = deque(maxlen=count)
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                tail.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return list(tail)


class _Acc:
    __slots__ = ("count", "total_ms", "max_ms")

    def __init__(self):
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0

    def add(self, ms: float) -> None:
        self.count += 1
        self.total_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms

    def asdict(self) -> dict:
        return {
            "count": self.count,
            "total_ms": self.total_ms,
            "mean_ms": self.total_ms / self.count if self.count else 0.0,
            "max_ms": self.max_ms,
        }


def summarize_telemetry(records: list[dict]) -> dict:
    """Aggregate step/epoch/eval/checkpoint events into one summary.

    ``steps_per_sec`` / ``mean_step_ms`` under ``"throughput"`` come
    from the *last* epoch fold — the current speed, not the lifetime
    average, which is what a status poll wants.
    """
    accs = {name: _Acc() for name in ("step", "eval", "checkpoint")}
    last_epoch = None
    epochs = 0
    for record in records:
        event = record.get("event")
        if event == "epoch":
            epochs += 1
            last_epoch = record
        elif event in accs and "ms" in record:
            accs[event].add(record["ms"])
    summary = {
        "events": len(records),
        "steps": accs["step"].asdict(),
        "evals": accs["eval"].asdict(),
        "checkpoints": accs["checkpoint"].asdict(),
        "epochs": epochs,
    }
    if last_epoch is not None:
        summary["throughput"] = {
            "phase": last_epoch.get("phase"),
            "epoch": last_epoch.get("epoch"),
            "steps_per_sec": last_epoch.get("steps_per_sec"),
            "mean_step_ms": last_epoch.get("mean_step_ms"),
        }
    return summary


def format_telemetry_summary(summary: dict) -> str:
    lines = [f"telemetry: {summary['events']} events, "
             f"{summary['epochs']} epoch folds"]
    steps = summary["steps"]
    if steps["count"]:
        lines.append(f"  steps        {steps['count']} timed, "
                     f"mean {steps['mean_ms']:.2f} ms, "
                     f"max {steps['max_ms']:.2f} ms")
    throughput = summary.get("throughput")
    if throughput and throughput.get("steps_per_sec") is not None:
        lines.append(f"  throughput   {throughput['steps_per_sec']:.2f} "
                     f"steps/s (phase {throughput['phase']}, "
                     f"epoch {throughput['epoch']})")
    evals = summary["evals"]
    if evals["count"]:
        lines.append(f"  eval hooks   {evals['count']} runs, "
                     f"mean {evals['mean_ms']:.1f} ms")
    checkpoints = summary["checkpoints"]
    if checkpoints["count"]:
        lines.append(f"  checkpoints  {checkpoints['count']} written, "
                     f"mean {checkpoints['mean_ms']:.1f} ms")
    return "\n".join(lines)


def format_telemetry_record(record: dict) -> str:
    """One telemetry record as a stable single line for ``obs tail``."""
    event = record.get("event", "?")
    where = " ".join(
        f"{key}={record[key]}" for key in ("phase", "epoch", "step")
        if key in record)
    timing = ""
    if "ms" in record:
        timing = f"  {record['ms']:.2f} ms"
    elif "seconds" in record:
        timing = f"  {record['seconds']:.2f} s"
    extras = " ".join(
        f"{key}={_round(record[key])}"
        for key in sorted(record)
        if key not in ("event", "phase", "epoch", "step", "ms", "seconds"))
    return f"{event:<11}{where}{timing}" + (f"  [{extras}]" if extras else "")


def _round(value):
    return round(value, 4) if isinstance(value, float) else value


def summarize_spans(spans: list[dict]) -> dict:
    """Per-name span aggregates (count, total/mean/max ms), sorted by
    total time descending."""
    accs: dict[str, _Acc] = {}
    for span in spans:
        accs.setdefault(span["name"], _Acc()).add(
            span.get("dur_us", 0) / 1000.0)
    ordered = sorted(accs.items(), key=lambda kv: -kv[1].total_ms)
    return {name: acc.asdict() for name, acc in ordered}


def format_span_summary(by_name: dict) -> str:
    lines = [f"{'span':<28} {'count':>7} {'total ms':>10} "
             f"{'mean ms':>9} {'max ms':>9}"]
    for name, acc in by_name.items():
        lines.append(f"{name:<28} {acc['count']:>7} {acc['total_ms']:>10.2f} "
                     f"{acc['mean_ms']:>9.3f} {acc['max_ms']:>9.3f}")
    return "\n".join(lines)
