"""Opt-in per-layer profiling for ``repro.nn`` models.

:class:`Profiler` wraps the compute methods (``forward``, ``backward``,
``forward_eval``, ``forward_eval_folded``) of every *leaf* module in a
model with a timing shim, accumulating per-layer call counts, wall time,
and gemm counts.  The wrap is per-instance: :meth:`Profiler.attach`
shadows the bound methods in the instance ``__dict__`` and
:meth:`Profiler.detach` deletes the shadows, so a model that is not
being profiled runs the original unwrapped methods — disabled profiling
is *literally absent*, not a branch on a flag.

Gemm counts come from a ``GEMM_COUNTS`` class attribute on the layer
(``{"forward": 1, "backward": 2, ...}`` on the conv layers); a conv
``backward(..., need_input_grad=False)`` skips its input-gradient gemm,
which the shim accounts for.  Workspace high-water bytes are read from
the arena's own ``peak_nbytes`` counter at snapshot time.

This module is stdlib-only — it duck-types against ``repro.nn`` modules
without importing numpy, so ``repro.obs`` stays importable everywhere.
"""

from __future__ import annotations

import functools
import time

#: Compute methods a leaf module may define; wrapped when overridden.
PROFILED_METHODS = ("forward", "backward", "forward_eval",
                    "forward_eval_folded")


def _gemms_for(module, method: str, args: tuple, kwargs: dict) -> int:
    counts = getattr(type(module), "GEMM_COUNTS", None)
    if not counts:
        return 0
    gemms = counts.get(method, 0)
    if method == "backward" and gemms:
        need_input_grad = kwargs.get(
            "need_input_grad", args[1] if len(args) > 1 else True)
        if need_input_grad is False:
            gemms -= 1
    return gemms


class _Stat:
    __slots__ = ("calls", "ns", "gemms")

    def __init__(self):
        self.calls = 0
        self.ns = 0
        self.gemms = 0


class Profiler:
    """Accumulate per-layer timing by shimming leaf-module methods."""

    def __init__(self):
        # (layer path, method name) -> _Stat
        self._stats: dict[tuple[str, str], _Stat] = {}
        # (module, method name) -> True while shimmed, for clean detach
        self._wrapped: list[tuple[object, str]] = []
        self._attached_roots: list[object] = []

    @property
    def attached(self) -> bool:
        return bool(self._wrapped)

    # -- attach / detach ---------------------------------------------------

    def attach(self, module, prefix: str = "") -> "Profiler":
        """Shim every leaf module under ``module`` (recursively).

        ``prefix`` names the root in the stats (useful when profiling
        generator and discriminator under one profiler).
        """
        self._attached_roots.append(module)
        base = type(module).__mro__[-2]  # the repro.nn Module base
        for path, leaf in _named_leaves(module, prefix):
            for method in PROFILED_METHODS:
                impl = getattr(type(leaf), method, None)
                if impl is None or impl is getattr(base, method, None):
                    continue  # inherited default delegates to forward
                if method in vars(leaf):
                    raise RuntimeError(
                        f"{path}.{method} already wrapped; nested attach "
                        f"of the same module is not supported")
                self._shim(leaf, path, method)
        return self

    def _shim(self, leaf, path: str, method: str) -> None:
        original = getattr(leaf, method)  # bound method
        stat = self._stats.setdefault((path, method), _Stat())
        perf_ns = time.perf_counter_ns

        @functools.wraps(original)
        def wrapper(*args, **kwargs):
            start = perf_ns()
            try:
                return original(*args, **kwargs)
            finally:
                stat.ns += perf_ns() - start
                stat.calls += 1
                stat.gemms += _gemms_for(leaf, method, args, kwargs)

        setattr(leaf, method, wrapper)
        self._wrapped.append((leaf, method))

    def detach(self) -> "Profiler":
        """Remove every shim, restoring the original class methods."""
        for leaf, method in self._wrapped:
            vars(leaf).pop(method, None)
        self._wrapped.clear()
        self._attached_roots.clear()
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.detach()
        return False

    # -- results -----------------------------------------------------------

    def reset(self) -> None:
        for stat in self._stats.values():
            stat.calls = stat.ns = stat.gemms = 0

    def snapshot(self, workspace=None) -> dict:
        """Deterministically-ordered stats, plus arena bytes if given."""
        layers: dict[str, dict] = {}
        totals = {"calls": 0, "ms": 0.0, "gemms": 0}
        for (path, method), stat in sorted(self._stats.items()):
            entry = layers.setdefault(path, {})
            entry[method] = {
                "calls": stat.calls,
                "ms": stat.ns / 1e6,
                "gemms": stat.gemms,
            }
            totals["calls"] += stat.calls
            totals["ms"] += stat.ns / 1e6
            totals["gemms"] += stat.gemms
        document = {"layers": layers, "totals": totals}
        if workspace is not None:
            document["workspace"] = {
                "nbytes": int(workspace.nbytes),
                "peak_nbytes": int(workspace.peak_nbytes),
            }
        return document

    def format_table(self, top: int = 0) -> str:
        """A plain-text per-layer table, slowest first."""
        rows = sorted(
            ((stat.ns, path, method, stat)
             for (path, method), stat in self._stats.items()
             if stat.calls),
            reverse=True)
        if top:
            rows = rows[:top]
        lines = [f"{'layer':<40} {'pass':<20} {'calls':>7} "
                 f"{'ms':>10} {'gemms':>7}"]
        for _, path, method, stat in rows:
            lines.append(f"{path:<40} {method:<20} {stat.calls:>7} "
                         f"{stat.ns / 1e6:>10.3f} {stat.gemms:>7}")
        return "\n".join(lines)


def _named_leaves(module, prefix: str):
    """(path, leaf) pairs for modules with no child modules."""
    for path, sub in module.named_modules(prefix):
        if not any(True for _ in sub.children()):
            yield path, sub
