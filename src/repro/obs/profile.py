"""Opt-in per-layer profiling for ``repro.nn`` models.

:class:`Profiler` wraps the compute methods (``forward``, ``backward``,
``forward_eval``, ``forward_eval_folded``) of every *leaf* module in a
model with a timing shim, accumulating per-layer call counts, wall time,
and gemm counts.  The wrap is per-instance: :meth:`Profiler.attach`
shadows the bound methods in the instance ``__dict__`` and
:meth:`Profiler.detach` deletes the shadows, so a model that is not
being profiled runs the original unwrapped methods — disabled profiling
is *literally absent*, not a branch on a flag.

Gemm counts come from a ``GEMM_COUNTS`` class attribute on the layer
(``{"forward": 1, "backward": 2, ...}`` on the conv layers); a conv
``backward(..., need_input_grad=False)`` skips its input-gradient gemm,
which the shim accounts for.  Workspace high-water bytes are read from
the arena's own ``peak_nbytes`` counter at snapshot time.

Accumulation is **thread-local**: each thread that executes profiled
methods (e.g. several serve worker threads sharing one profiler) writes
its own integer cells, registered once under a lock and merged at read
time — integer sums are order-independent, so a snapshot is
deterministic no matter how the work interleaved, and no increment is
ever lost to a torn read-modify-write.  Snapshots also attribute time
per thread, and fold in the ``repro.nn.parallel`` pool's per-worker
busy time and per-variant gemm tallies when that subsystem is loaded.

This module is stdlib-only — it duck-types against ``repro.nn`` modules
without importing numpy, so ``repro.obs`` stays importable everywhere.
"""

from __future__ import annotations

import functools
import sys
import threading
import time

#: Compute methods a leaf module may define; wrapped when overridden.
PROFILED_METHODS = ("forward", "backward", "forward_eval",
                    "forward_eval_folded")


def _gemms_for(module, method: str, args: tuple, kwargs: dict) -> int:
    counts = getattr(type(module), "GEMM_COUNTS", None)
    if not counts:
        return 0
    gemms = counts.get(method, 0)
    if method == "backward" and gemms:
        need_input_grad = kwargs.get(
            "need_input_grad", args[1] if len(args) > 1 else True)
        if need_input_grad is False:
            gemms -= 1
    return gemms


class _Stat:
    __slots__ = ("calls", "ns", "gemms")

    def __init__(self):
        self.calls = 0
        self.ns = 0
        self.gemms = 0


class Profiler:
    """Accumulate per-layer timing by shimming leaf-module methods."""

    def __init__(self):
        # Per-thread stat tables: thread-local handle for writers, plus
        # a registration list [(seq, thread name, table)] for readers.
        # Registration order is the only nondeterminism and it cannot
        # leak: merged values are integer sums.
        self._local = threading.local()
        self._lock = threading.Lock()
        self._threads: list[tuple[int, str, dict[tuple[str, str], _Stat]]] = []
        # (module, method name) -> True while shimmed, for clean detach
        self._wrapped: list[tuple[object, str]] = []
        self._attached_roots: list[object] = []

    def _thread_table(self) -> dict[tuple[str, str], _Stat]:
        table = getattr(self._local, "table", None)
        if table is None:
            table = {}
            self._local.table = table
            with self._lock:
                self._threads.append(
                    (len(self._threads), threading.current_thread().name,
                     table))
        return table

    def _merged(self) -> dict[tuple[str, str], _Stat]:
        """Stats summed across threads (deterministic: integer sums)."""
        with self._lock:
            tables = [table for _, _, table in self._threads]
        merged: dict[tuple[str, str], _Stat] = {}
        for table in tables:
            for key, stat in list(table.items()):
                into = merged.get(key)
                if into is None:
                    merged[key] = into = _Stat()
                into.calls += stat.calls
                into.ns += stat.ns
                into.gemms += stat.gemms
        return merged

    @property
    def attached(self) -> bool:
        return bool(self._wrapped)

    # -- attach / detach ---------------------------------------------------

    def attach(self, module, prefix: str = "") -> "Profiler":
        """Shim every leaf module under ``module`` (recursively).

        ``prefix`` names the root in the stats (useful when profiling
        generator and discriminator under one profiler).
        """
        self._attached_roots.append(module)
        base = type(module).__mro__[-2]  # the repro.nn Module base
        for path, leaf in _named_leaves(module, prefix):
            for method in PROFILED_METHODS:
                impl = getattr(type(leaf), method, None)
                if impl is None or impl is getattr(base, method, None):
                    continue  # inherited default delegates to forward
                if method in vars(leaf):
                    raise RuntimeError(
                        f"{path}.{method} already wrapped; nested attach "
                        f"of the same module is not supported")
                self._shim(leaf, path, method)
        return self

    def _shim(self, leaf, path: str, method: str) -> None:
        original = getattr(leaf, method)  # bound method
        key = (path, method)
        # Pre-register a zero entry on the attaching thread so wrapped-
        # but-never-called methods still appear in snapshots.
        self._thread_table().setdefault(key, _Stat())
        thread_table = self._thread_table
        perf_ns = time.perf_counter_ns

        @functools.wraps(original)
        def wrapper(*args, **kwargs):
            table = thread_table()
            stat = table.get(key)
            if stat is None:
                stat = table.setdefault(key, _Stat())
            start = perf_ns()
            try:
                return original(*args, **kwargs)
            finally:
                stat.ns += perf_ns() - start
                stat.calls += 1
                stat.gemms += _gemms_for(leaf, method, args, kwargs)

        setattr(leaf, method, wrapper)
        self._wrapped.append((leaf, method))

    def detach(self) -> "Profiler":
        """Remove every shim, restoring the original class methods."""
        for leaf, method in self._wrapped:
            vars(leaf).pop(method, None)
        self._wrapped.clear()
        self._attached_roots.clear()
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.detach()
        return False

    # -- results -----------------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            tables = [table for _, _, table in self._threads]
        for table in tables:
            for stat in list(table.values()):
                stat.calls = stat.ns = stat.gemms = 0

    def snapshot(self, workspace=None) -> dict:
        """Deterministically-ordered stats, plus arena bytes if given.

        ``layers``/``totals`` merge every executing thread's cells (sums
        of integers — order-independent, hence deterministic).  The
        ``threads`` section attributes wall time per executing thread,
        and ``parallel`` reports the gemm pool's configuration,
        per-worker busy time, and per-variant gemm tallies whenever
        ``repro.nn.parallel`` is loaded in this process.
        """
        layers: dict[str, dict] = {}
        totals = {"calls": 0, "ms": 0.0, "gemms": 0}
        for (path, method), stat in sorted(self._merged().items()):
            entry = layers.setdefault(path, {})
            entry[method] = {
                "calls": stat.calls,
                "ms": stat.ns / 1e6,
                "gemms": stat.gemms,
            }
            totals["calls"] += stat.calls
            totals["ms"] += stat.ns / 1e6
            totals["gemms"] += stat.gemms
        document = {"layers": layers, "totals": totals}
        with self._lock:
            registered = list(self._threads)
        threads = {}
        for seq, name, table in registered:
            calls = ns = 0
            for stat in list(table.values()):
                calls += stat.calls
                ns += stat.ns
            threads[f"{seq}:{name}"] = {"calls": calls, "ms": ns / 1e6}
        document["threads"] = threads
        # The gemm pool ships its own accounting; fold it in when the
        # subsystem is already imported (never import numpy from here).
        nn_parallel = sys.modules.get("repro.nn.parallel")
        if nn_parallel is not None:
            document["parallel"] = dict(nn_parallel.pool_stats(),
                                        gemms=nn_parallel.gemm_stats())
        if workspace is not None:
            document["workspace"] = {
                "nbytes": int(workspace.nbytes),
                "peak_nbytes": int(workspace.peak_nbytes),
            }
        return document

    def format_table(self, top: int = 0) -> str:
        """A plain-text per-layer table, slowest first."""
        rows = sorted(
            ((stat.ns, path, method, stat)
             for (path, method), stat in self._merged().items()
             if stat.calls),
            reverse=True)
        if top:
            rows = rows[:top]
        lines = [f"{'layer':<40} {'pass':<20} {'calls':>7} "
                 f"{'ms':>10} {'gemms':>7}"]
        for _, path, method, stat in rows:
            lines.append(f"{path:<40} {method:<20} {stat.calls:>7} "
                         f"{stat.ns / 1e6:>10.3f} {stat.gemms:>7}")
        return "\n".join(lines)


def _named_leaves(module, prefix: str):
    """(path, leaf) pairs for modules with no child modules."""
    for path, sub in module.named_modules(prefix):
        if not any(True for _ in sub.children()):
            yield path, sub
