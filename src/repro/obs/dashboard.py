"""``repro obs top`` — a live ANSI dashboard over a telemetry source.

Two sources feed the same renderer:

* :class:`DirectorySource` polls a telemetry directory (a sweep root or
  a serve ``--obs-dir``) through :func:`repro.obs.aggregate.aggregate_dir`
  and reads firing alerts from the sibling ``alerts.jsonl``;
* :class:`HttpSource` polls a running serve host's ``GET /telemetry``
  and ``GET /alerts`` endpoints.

Each poll flattens the merged fleet export into scalar series
(:func:`repro.obs.timeseries.flatten_export`), feeds a bounded
:class:`~repro.obs.timeseries.TimeSeriesStore` (so rates are real
deltas over the window, not lifetime averages), and renders one frame:
request rate, latency p50/p99, cache hit rate, queue depth, per-worker
training step/s, firing alerts, and the busiest remaining series.

The renderer is a pure function of the dashboard state — tests call
:meth:`Dashboard.frame` directly and drive ``--frames 1``; only
:func:`run_top` touches the terminal.  Stdlib-only.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.aggregate import FleetSnapshot, aggregate_dir
from repro.obs.alerts import ALERTS_NAME, read_alert_log
from repro.obs.publish import TELEMETRY_DIR
from repro.obs.timeseries import TimeSeriesStore, flatten_export

#: ANSI fragments used when color is on.
_CSI = "\x1b["
_RESET = f"{_CSI}0m"
_BOLD = f"{_CSI}1m"
_DIM = f"{_CSI}2m"
_RED = f"{_CSI}31m"
_GREEN = f"{_CSI}32m"
_YELLOW = f"{_CSI}33m"

#: Series given dedicated dashboard rows (everything else is generic).
_KNOWN_PREFIXES = (
    "serve_requests_total", "serve_request_latency_seconds",
    "serve_cache_hit_ratio", "serve_queue_depth", "serve_batch_occupancy",
    "serve_drift_", "train_steps_total", "obs_alert_firing",
)


@dataclass
class FleetPoll:
    """One poll of a telemetry source."""

    fleet: FleetSnapshot
    alerts: list[dict] = field(default_factory=list)
    target: str = ""


def firing_from_log(events: list[dict]) -> list[dict]:
    """Currently-firing alerts implied by an ``alerts.jsonl`` history
    (the last transition per rule wins)."""
    last: dict[str, dict] = {}
    for event in events:
        rule = event.get("rule")
        if rule:
            last[rule] = event
    return [event for _, event in sorted(last.items())
            if event.get("state") == "firing"]


class DirectorySource:
    """Aggregate a telemetry directory (sweep root, serve obs dir)."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.target = str(self.directory)

    def _alerts(self) -> list[dict]:
        base = self.directory
        candidates = [base / ALERTS_NAME]
        if base.name == TELEMETRY_DIR:
            candidates.append(base.parent / ALERTS_NAME)
        else:
            candidates.append(base / TELEMETRY_DIR / ALERTS_NAME)
        for path in candidates:
            if path.exists():
                events, _ = read_alert_log(path)
                return firing_from_log(events)
        return []

    def poll(self) -> FleetPoll:
        return FleetPoll(fleet=aggregate_dir(self.directory),
                         alerts=self._alerts(), target=self.target)


class HttpSource:
    """Poll a running serve host (``GET /telemetry`` + ``GET /alerts``)."""

    def __init__(self, url: str, timeout: float = 5.0):
        self.base = url.rstrip("/")
        if "://" not in self.base:
            self.base = f"http://{self.base}"
        self.timeout = timeout
        self.target = self.base

    def _get(self, route: str):
        with urllib.request.urlopen(f"{self.base}{route}",
                                    timeout=self.timeout) as response:
            return json.loads(response.read().decode("utf-8"))

    def poll(self) -> FleetPoll:
        document = self._get("/telemetry")
        snapshot = {"role": document.get("role", "serve"),
                    "worker": document.get("worker", "0"),
                    "families": document["families"]}
        from repro.obs.aggregate import aggregate_snapshots
        try:
            alerts = self._get("/alerts").get("active", [])
        except (urllib.error.URLError, OSError, ValueError):
            alerts = []
        return FleetPoll(fleet=aggregate_snapshots([snapshot]),
                         alerts=alerts, target=self.base)


class Dashboard:
    """Rolling state + frame renderer for ``repro obs top``."""

    def __init__(self, source, window: float = 30.0,
                 capacity: int = 600, color: bool = False,
                 series_limit: int = 8):
        self.source = source
        self.window = window
        self.color = color
        self.series_limit = series_limit
        self.store = TimeSeriesStore(capacity=capacity)
        self.worker_store = TimeSeriesStore(capacity=capacity)
        self.samples = 0
        self.last_poll: FleetPoll | None = None

    # -- polling ------------------------------------------------------------

    def tick(self, now: float | None = None) -> FleetPoll:
        """Poll the source once and fold it into the ring stores."""
        now = time.time() if now is None else now
        poll = self.source.poll()
        self.store.record(now, flatten_export(poll.fleet.merged))
        for doc in poll.fleet.snapshots:
            worker = f"{doc.get('role', '?')}-{doc.get('worker', '?')}"
            flat = flatten_export(doc["families"])
            self.worker_store.record(
                now, {f"{worker}/{name}": value
                      for name, value in flat.items()})
        self.samples += 1
        self.last_poll = poll
        return poll

    # -- rendering ----------------------------------------------------------

    def _paint(self, text: str, *codes: str) -> str:
        if not self.color or not codes:
            return text
        return "".join(codes) + text + _RESET

    def _fmt(self, value: float | None, unit: str = "") -> str:
        if value is None:
            return "-"
        if unit == "ms":
            return f"{value * 1e3:.1f}ms"
        if unit == "%":
            return f"{value * 100:.1f}%"
        if abs(value) >= 1000:
            return f"{value:,.0f}{unit}"
        return f"{value:.3g}{unit}"

    def frame(self, now: float | None = None) -> str:
        """One rendered dashboard frame (no cursor control; plain text
        unless ``color``)."""
        now = time.time() if now is None else now
        poll = self.last_poll
        lines: list[str] = []
        stamp = time.strftime("%H:%M:%S", time.localtime(now))
        target = poll.target if poll else "?"
        workers = poll.fleet.workers if poll else []
        lines.append(self._paint(
            f"repro obs top — {target}", _BOLD)
            + f"   {stamp}   workers: {len(workers)}"
            f"   samples: {self.samples}")
        lines.append("")
        lines.extend(self._alert_lines(poll))
        lines.extend(self._serve_lines())
        lines.extend(self._worker_lines(workers))
        lines.extend(self._series_lines(self.series_limit))
        return "\n".join(lines) + "\n"

    def _alert_lines(self, poll: FleetPoll | None) -> list[str]:
        alerts = poll.alerts if poll else []
        if not alerts:
            return [self._paint("alerts: none firing", _DIM), ""]
        lines = [self._paint(f"ALERTS FIRING ({len(alerts)})",
                             _BOLD, _RED)]
        for alert in alerts:
            value = alert.get("value")
            shown = f"{value:.4g}" if isinstance(value, (int, float)) \
                else "-"
            lines.append(self._paint(
                f"  !! {alert.get('rule', '?')} "
                f"[{alert.get('severity', '?')}] "
                f"{alert.get('condition', '')} (value {shown}) "
                f"{alert.get('message', '')}".rstrip(), _RED))
        lines.append("")
        return lines

    def _serve_lines(self) -> list[str]:
        store = self.store
        rps = store.rate("serve_requests_total", self.window)
        p50 = store.latest("serve_request_latency_seconds.p50")
        p99 = store.latest("serve_request_latency_seconds.p99")
        hit = store.latest("serve_cache_hit_ratio")
        depth = store.latest("serve_queue_depth")
        occupancy = store.latest("serve_batch_occupancy.mean")
        if all(value is None
               for value in (rps, p50, p99, hit, depth, occupancy)):
            return []
        lines = [self._paint("serve", _BOLD)]
        lines.append(
            f"  rps {self._fmt(rps):>10}   "
            f"p50 {self._fmt(p50, 'ms'):>9}   "
            f"p99 {self._fmt(p99, 'ms'):>9}")
        lines.append(
            f"  cache hit {self._fmt(hit, '%'):>6}   "
            f"queue {self._fmt(depth):>5}   "
            f"batch occupancy {self._fmt(occupancy):>5}")
        drift = [name for name in store.names()
                 if name.startswith("serve_drift_score_shift")
                 or name.startswith("serve_drift_novelty_rate")]
        for name in drift:
            value = store.latest(name)
            codes = (_YELLOW,) if (value or 0) > 0.25 else (_DIM,)
            lines.append("  " + self._paint(
                f"{name} = {self._fmt(value)}", *codes))
        lines.append("")
        return lines

    def _worker_lines(self, workers: list[str]) -> list[str]:
        rows = []
        for worker in workers:
            steps = self.worker_store.latest(
                f"{worker}/train_steps_total")
            if steps is None:
                continue
            step_rate = self.worker_store.rate(
                f"{worker}/train_steps_total", self.window)
            rows.append(f"  {worker:<24} steps {steps:>8.0f}   "
                        f"step/s {self._fmt(step_rate):>8}")
        if not rows:
            return []
        return [self._paint("workers", _BOLD), *rows, ""]

    def _series_lines(self, limit: int = 8) -> list[str]:
        """The busiest generic series (rate over the window) — whatever
        the fleet publishes beyond the dedicated rows still shows up."""
        rows = []
        for name in self.store.names():
            if name.startswith(_KNOWN_PREFIXES) \
                    or any(f"/{prefix}" in name
                           for prefix in _KNOWN_PREFIXES):
                continue
            if name.endswith((".p50", ".p99", ".mean", ".max", ".sum")):
                continue
            latest = self.store.latest(name)
            rate = self.store.rate(name, self.window)
            rows.append((rate or 0.0, name, latest, rate))
        rows.sort(key=lambda row: (-row[0], row[1]))
        if not rows:
            return []
        lines = [self._paint(
            f"series (rate over {self.window:.0f}s)", _BOLD)]
        for _, name, latest, rate in rows[:limit]:
            lines.append(f"  {name:<44} {self._fmt(latest):>12} "
                         f"  {self._fmt(rate):>10}/s")
        if len(rows) > limit:
            lines.append(self._paint(
                f"  ... {len(rows) - limit} more series", _DIM))
        lines.append("")
        return lines


def make_source(target: str):
    """A dashboard source from a CLI target: URL or directory."""
    if target.startswith(("http://", "https://")) \
            or (":" in target and not Path(target).exists()):
        return HttpSource(target)
    return DirectorySource(target)


def run_top(source, interval: float = 2.0, frames: int | None = None,
            window: float = 30.0, stream=None, color: bool | None = None
            ) -> Dashboard:
    """Drive the dashboard loop; ``frames`` bounds it (None = forever)."""
    stream = sys.stdout if stream is None else stream
    if color is None:
        color = bool(getattr(stream, "isatty", lambda: False)())
    dashboard = Dashboard(source, window=window, color=color)
    rendered = 0
    try:
        while frames is None or rendered < frames:
            try:
                dashboard.tick()
                frame = dashboard.frame()
            except (urllib.error.URLError, OSError) as error:
                frame = f"repro obs top — {source.target}: {error}\n"
            if color:
                stream.write(f"{_CSI}H{_CSI}2J")
            stream.write(frame)
            stream.flush()
            rendered += 1
            if frames is not None and rendered >= frames:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return dashboard
