"""repro.obs — unified telemetry: metrics, span tracing, profiling.

Three pillars, all stdlib-only (importing this package never pulls in
numpy, so status/obs CLI paths stay usable on bare hosts):

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms, rendered as a deterministic JSON
  snapshot or Prometheus text.  The serving engine keeps one and serves
  it at ``GET /metrics``.
* :mod:`repro.obs.trace` — :class:`Tracer` span context managers on
  monotonic clocks, emitting JSONL convertible to Chrome
  ``trace_event`` JSON (:func:`write_chrome_trace`).  Disabled tracers
  hand out one shared no-op span: zero allocation, zero branches in
  callee code.
* :mod:`repro.obs.profile` — :class:`Profiler` per-layer wall time and
  gemm counts for ``repro.nn`` models via detachable method shims;
  when detached the model runs its original, unwrapped methods.

The guarantee carried by the whole package: instrumentation observes,
it never perturbs — instrumented and uninstrumented runs produce
byte-identical artifacts (checked by ``tests/test_obs_integration.py``).
"""

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import Profiler
from repro.obs.render import (
    TELEMETRY_NAME,
    TRACE_NAME,
    format_span_summary,
    format_telemetry_record,
    format_telemetry_summary,
    read_telemetry,
    summarize_spans,
    summarize_telemetry,
    tail_telemetry,
)
from repro.obs.trace import (
    Tracer,
    get_tracer,
    read_spans,
    set_tracer,
    write_chrome_trace,
)

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "TELEMETRY_NAME",
    "TRACE_NAME",
    "Tracer",
    "format_span_summary",
    "format_telemetry_record",
    "format_telemetry_summary",
    "get_tracer",
    "read_spans",
    "read_telemetry",
    "set_tracer",
    "summarize_spans",
    "summarize_telemetry",
    "tail_telemetry",
    "write_chrome_trace",
]
