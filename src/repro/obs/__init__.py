"""repro.obs — unified telemetry: metrics, span tracing, profiling.

Three pillars, all stdlib-only (importing this package never pulls in
numpy, so status/obs CLI paths stay usable on bare hosts):

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms, rendered as a deterministic JSON
  snapshot or Prometheus text.  The serving engine keeps one and serves
  it at ``GET /metrics``.
* :mod:`repro.obs.trace` — :class:`Tracer` span context managers on
  monotonic clocks, emitting JSONL convertible to Chrome
  ``trace_event`` JSON (:func:`write_chrome_trace`).  Disabled tracers
  hand out one shared no-op span: zero allocation, zero branches in
  callee code.
* :mod:`repro.obs.profile` — :class:`Profiler` per-layer wall time and
  gemm counts for ``repro.nn`` models via detachable method shims;
  when detached the model runs its original, unwrapped methods.

Fleet telemetry extends the metrics pillar across processes:

* :mod:`repro.obs.publish` — workers atomically publish registry
  snapshots as ``telemetry/<role>-<worker>.json``
  (:class:`TelemetryPublisher`);
* :mod:`repro.obs.aggregate` — N snapshots merge into one logical
  registry with exact semantics (:func:`aggregate_dir`,
  :class:`FleetSnapshot`);
* :mod:`repro.obs.timeseries` — a bounded ring store over flattened
  snapshots powering rate/delta queries and ``repro obs top``
  (:mod:`repro.obs.dashboard`);
* :mod:`repro.obs.alerts` — declarative JSON threshold rules emitting
  ``alerts.jsonl`` (:class:`AlertManager`);
* :mod:`repro.obs.drift` — serve-side forecast-quality monitors
  (hotspot-score shift, input novelty, sampled NRMS).  Drift needs
  numpy and is deliberately **not** imported here.

The guarantee carried by the whole package: instrumentation observes,
it never perturbs — instrumented and uninstrumented runs produce
byte-identical artifacts (checked by ``tests/test_obs_integration.py``).
"""

from repro.obs.aggregate import (
    FleetSnapshot,
    aggregate_dir,
    aggregate_snapshots,
    merge_exports,
    registry_from_export,
)
from repro.obs.alerts import (
    ALERTS_NAME,
    AlertManager,
    AlertRule,
    load_rules,
    read_alert_log,
)

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import Profiler
from repro.obs.publish import (
    TELEMETRY_DIR,
    TelemetryPublisher,
    discover_snapshots,
    read_snapshot,
    write_snapshot,
)
from repro.obs.render import (
    TELEMETRY_NAME,
    TRACE_NAME,
    format_span_summary,
    format_telemetry_record,
    format_telemetry_summary,
    read_telemetry,
    summarize_spans,
    summarize_telemetry,
    tail_telemetry,
)
from repro.obs.timeseries import TimeSeriesStore, flatten_export
from repro.obs.trace import (
    Tracer,
    get_tracer,
    read_spans,
    set_tracer,
    write_chrome_trace,
)

__all__ = [
    "ALERTS_NAME",
    "AlertManager",
    "AlertRule",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "FleetSnapshot",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "TELEMETRY_DIR",
    "TELEMETRY_NAME",
    "TRACE_NAME",
    "TelemetryPublisher",
    "TimeSeriesStore",
    "Tracer",
    "aggregate_dir",
    "aggregate_snapshots",
    "discover_snapshots",
    "flatten_export",
    "format_span_summary",
    "format_telemetry_record",
    "format_telemetry_summary",
    "get_tracer",
    "load_rules",
    "merge_exports",
    "read_alert_log",
    "read_snapshot",
    "read_spans",
    "read_telemetry",
    "registry_from_export",
    "set_tracer",
    "summarize_spans",
    "summarize_telemetry",
    "tail_telemetry",
    "write_chrome_trace",
    "write_snapshot",
]
