"""Cross-process telemetry publishing: one atomic JSON file per worker.

A fleet (sweep workers, ``data.parallel`` generators, the serve engine)
has no shared memory, so each worker *publishes* its
:class:`~repro.obs.metrics.MetricsRegistry` as a snapshot file under a
shared telemetry directory::

    <dir>/telemetry/<role>-<worker>.json

Files are written atomically (temp file + ``os.replace``), so a reader
never sees a torn snapshot — the aggregation side
(:mod:`repro.obs.aggregate`) can poll the directory at any moment and
merge whatever set of workers is currently live.  Each snapshot carries
the registry's full merge-metadata :meth:`~MetricsRegistry.export` plus
worker identity (role, worker id, pid) and a monotonically increasing
``seq`` so staleness is detectable.

:class:`TelemetryPublisher` is both a one-shot writer (:meth:`publish`)
and a daemon thread republishing every ``interval`` seconds; stopping it
always publishes one final snapshot, so short-lived workers leave their
complete totals behind.  Everything here is stdlib-only.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.obs.metrics import MetricsRegistry

#: Subdirectory name conventionally holding worker snapshot files.
TELEMETRY_DIR = "telemetry"

#: Snapshot document format version.
SNAPSHOT_VERSION = 1


def snapshot_path(directory: str | Path, role: str, worker: str) -> Path:
    """Where a worker's snapshot file lives under ``directory``."""
    return Path(directory) / f"{role}-{worker}.json"


def write_snapshot(registry: MetricsRegistry, directory: str | Path,
                   role: str, worker: str, seq: int = 0,
                   extra: dict | None = None) -> Path:
    """Atomically publish one snapshot; returns the file written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    document = {
        "version": SNAPSHOT_VERSION,
        "role": role,
        "worker": str(worker),
        "pid": os.getpid(),
        "seq": int(seq),
        "published_unix": time.time(),
        "families": registry.export(),
    }
    if extra:
        document["extra"] = dict(extra)
    path = snapshot_path(directory, role, worker)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    tmp.write_text(json.dumps(document, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)
    return path


def read_snapshot(path: str | Path) -> dict:
    """One published snapshot document (raises on missing/invalid)."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "families" not in document:
        raise ValueError(f"{path} is not a telemetry snapshot "
                         f"(no 'families' key)")
    return document


def discover_snapshots(directory: str | Path) -> list[dict]:
    """All readable snapshots under ``directory``, sorted by (role, worker).

    Unreadable or non-snapshot JSON files are skipped (a worker may be
    mid-``os.replace`` on another filesystem, or the directory may hold
    unrelated files); the deterministic sort order is what makes merges
    invariant to discovery order.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    snapshots = []
    for path in sorted(directory.glob("*.json")):
        try:
            snapshots.append(read_snapshot(path))
        except (ValueError, OSError, json.JSONDecodeError):
            continue
    snapshots.sort(key=lambda doc: (doc.get("role", ""),
                                    doc.get("worker", "")))
    return snapshots


class TelemetryPublisher:
    """Periodically publish a registry to a shared telemetry directory.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` to snapshot.
    directory:
        The telemetry directory (created on first publish).
    role:
        Worker role (``serve``, ``sweep``, ``datagen`` ...); together
        with ``worker`` it names the snapshot file.
    worker:
        Worker identity within the role; defaults to the pid.
    interval:
        Seconds between background republishes (:meth:`start`).
    on_publish:
        Optional callback invoked with the snapshot document after each
        publish — the hook alert evaluation and dashboards ride on.
    """

    def __init__(self, registry: MetricsRegistry, directory: str | Path,
                 role: str, worker: str | None = None,
                 interval: float = 2.0, on_publish=None):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.registry = registry
        self.directory = Path(directory)
        self.role = role
        self.worker = str(worker if worker is not None else os.getpid())
        self.interval = interval
        self.on_publish = on_publish
        self.seq = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def path(self) -> Path:
        return snapshot_path(self.directory, self.role, self.worker)

    def publish(self, extra: dict | None = None) -> Path:
        """Write one snapshot now; bumps ``seq``."""
        self.seq += 1
        path = write_snapshot(self.registry, self.directory, self.role,
                              self.worker, seq=self.seq, extra=extra)
        if self.on_publish is not None:
            self.on_publish(read_snapshot(path))
        return path

    # -- background publishing --------------------------------------------

    def start(self) -> "TelemetryPublisher":
        if self._thread is not None:
            raise RuntimeError("publisher is already running")
        self._stop.clear()
        self.publish()   # an immediate first snapshot, not interval-delayed
        self._thread = threading.Thread(
            target=self._run, name=f"obs-publish-{self.role}", daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.publish()
            except OSError:
                # A transient filesystem error must not kill the worker;
                # the next interval retries.
                continue

    def stop(self, final: bool = True) -> None:
        """Stop the thread; by default publish one last exact snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if final:
            self.publish()

    def unpublish(self) -> None:
        """Remove this worker's snapshot file (a clean fleet departure)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "TelemetryPublisher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
