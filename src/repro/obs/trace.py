"""Span tracing on monotonic clocks, with Chrome ``trace_event`` export.

A :class:`Tracer` writes one JSON line per finished span to a sink
(usually a ``trace.jsonl`` inside a run directory).  Spans nest — each
records its depth from a thread-local stack — and are exception-safe:
a span that exits via ``raise`` still closes, tagged with the exception
type, and never swallows it.

The cost model is the whole point.  A tracer with no sink is *disabled*:
``span()`` returns one shared no-op object (identity fast path — the
same singleton every call, zero allocation), and ``complete()`` /
``instant()`` return before touching a clock.  Timing comes from
``time.perf_counter_ns`` so spans are immune to wall-clock steps;
``ts_us`` is microseconds from the tracer's own epoch, which makes the
numbers small, stable, and directly usable as Chrome ``ts`` values.

:func:`write_chrome_trace` converts a span JSONL file into the Chrome
``trace_event`` JSON object format (``{"traceEvents": [...]}``), which
``about://tracing`` and Perfetto load directly.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path


class _NullSpan:
    """The shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **args) -> None:
        """Accept and drop annotations, mirroring :class:`_Span.set`."""


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_tracer", "name", "args", "_start_ns", "depth")

    def __init__(self, tracer: "Tracer", name: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start_ns = 0
        self.depth = 0

    def set(self, **args) -> None:
        """Attach extra key/values to the span record."""
        self.args.update(args)

    def __enter__(self):
        stack = self._tracer._stack
        self.depth = len(stack.spans)
        stack.spans.append(self)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb):
        end_ns = time.perf_counter_ns()
        stack = self._tracer._stack
        if stack.spans and stack.spans[-1] is self:
            stack.spans.pop()
        elif self in stack.spans:  # tolerate out-of-order exits
            stack.spans.remove(self)
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        self._tracer._emit(self.name, self._start_ns, end_ns - self._start_ns,
                           self.depth, self.args)
        return False


class _ThreadStack(threading.local):
    def __init__(self):
        self.spans: list = []


class Tracer:
    """Emit nestable spans as JSONL; a ``sink=None`` tracer does nothing.

    ``sink`` may be a path (opened append, line-buffered-by-flush) or any
    object with ``write(str)``; pass ``flush_every`` > 1 to batch flushes
    on hot paths.
    """

    def __init__(self, sink=None, *, flush_every: int = 1):
        self._lock = threading.Lock()
        self._stack = _ThreadStack()
        self._flush_every = max(1, int(flush_every))
        self._pending = 0
        self._owns_sink = False
        if sink is None:
            self._sink = None
        elif isinstance(sink, (str, Path)):
            path = Path(sink)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = open(path, "a", encoding="utf-8")
            self._owns_sink = True
        else:
            self._sink = sink
        self._epoch_ns = time.perf_counter_ns()
        self._pid = os.getpid()

    @property
    def enabled(self) -> bool:
        return self._sink is not None

    def span(self, name: str, **args):
        """A context manager timing ``name``; shared no-op when disabled."""
        if self._sink is None:
            return _NULL_SPAN
        return _Span(self, name, args)

    def complete(self, name: str, start_ns: int, dur_ns: int, **args) -> None:
        """Record an externally-timed span (e.g. queue wait measured by
        timestamps captured on two different threads)."""
        if self._sink is None:
            return
        self._emit(name, start_ns, dur_ns, len(self._stack.spans), args)

    def instant(self, name: str, **args) -> None:
        """A zero-duration marker (cache hit, checkpoint written, ...)."""
        if self._sink is None:
            return
        now = time.perf_counter_ns()
        self._emit(name, now, 0, len(self._stack.spans), args)

    def _emit(self, name: str, start_ns: int, dur_ns: int,
              depth: int, args: dict) -> None:
        record = {
            "name": name,
            "ts_us": (start_ns - self._epoch_ns) // 1000,
            "dur_us": max(0, dur_ns) // 1000,
            "pid": self._pid,
            "tid": threading.get_ident(),
            "depth": depth,
        }
        if args:
            record["args"] = args
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._sink.write(line + "\n")
            self._pending += 1
            if self._pending >= self._flush_every:
                self._flush_locked()

    def _flush_locked(self) -> None:
        flush = getattr(self._sink, "flush", None)
        if flush is not None:
            flush()
        self._pending = 0

    def flush(self) -> None:
        if self._sink is None:
            return
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        if self._sink is None:
            return
        self.flush()
        if self._owns_sink:
            self._sink.close()
        self._sink = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


_DEFAULT_LOCK = threading.Lock()
_default_tracer: Tracer | None = None


def get_tracer() -> Tracer:
    """The process-default tracer.

    Lazily initialised from ``REPRO_TRACE`` (a JSONL path) so any code
    path — the data store, the loader — can trace without plumbing a
    tracer through every constructor; with the variable unset this is a
    disabled tracer and every ``span()`` is the shared no-op.
    """
    global _default_tracer
    tracer = _default_tracer
    if tracer is None:
        with _DEFAULT_LOCK:
            tracer = _default_tracer
            if tracer is None:
                sink = os.environ.get("REPRO_TRACE") or None
                tracer = Tracer(sink)
                _default_tracer = tracer
    return tracer


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Swap the process-default tracer; returns the previous one."""
    global _default_tracer
    with _DEFAULT_LOCK:
        previous = _default_tracer
        _default_tracer = tracer
    return previous


def read_spans(path) -> list[dict]:
    """All span records from a JSONL file.

    Blank and partially-written lines (a tracer flushing concurrently)
    are skipped, so Chrome export of a live trace never crashes on a
    torn final line.
    """
    spans = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return spans


def write_chrome_trace(spans_or_path, out_path) -> int:
    """Convert span records (or a JSONL path) into Chrome trace JSON.

    Returns the number of events written.  The output loads directly in
    ``about://tracing`` / Perfetto: complete (``ph: "X"``) events with
    microsecond ``ts``/``dur``, one instant (``ph: "i"``) per
    zero-duration marker.
    """
    if isinstance(spans_or_path, (str, Path)):
        spans = read_spans(spans_or_path)
    else:
        spans = list(spans_or_path)
    events = []
    for span in spans:
        event = {
            "name": span["name"],
            "ph": "X" if span.get("dur_us", 0) > 0 else "i",
            "ts": span["ts_us"],
            "pid": span.get("pid", 0),
            "tid": span.get("tid", 0),
            "args": dict(span.get("args", {})),
        }
        if event["ph"] == "X":
            event["dur"] = span["dur_us"]
        else:
            event["s"] = "t"  # instant scope: thread
        if "depth" in span:
            event["args"]["depth"] = span["depth"]
        events.append(event)
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, handle)
    return len(events)
