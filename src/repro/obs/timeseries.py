"""Bounded in-memory time series over metric snapshots.

``repro obs top`` (and anything else that wants *rates* rather than
lifetime totals) needs a short history of the fleet's merged state.
:class:`TimeSeriesStore` is that history: an append-only ring of
``(t, value)`` points per series, bounded to ``capacity`` samples, fed
by :func:`flatten_export` which turns a registry export (or a merged
fleet export) into flat scalar series::

    serve_requests_total                      -> counter value
    serve_queue_depth                         -> gauge value
    serve_request_latency_seconds.p99         -> histogram quantile
    http_requests_total{route=/v1/forecast}   -> labeled child

Queries are window-based: :meth:`rate` is the delta between now and the
oldest sample inside the window divided by the actual elapsed time, the
standard counter-rate estimate; :meth:`delta` is the raw difference.
Counter resets (a worker restart shrinking the merged total) clamp the
delta at 0 rather than reporting a negative rate.  Stdlib-only and
thread-safe (one lock; appends and reads are O(1)/O(window)).
"""

from __future__ import annotations

import threading
from collections import deque

from repro.obs.metrics import quantile_from_counts

#: Scalar sub-series derived from each histogram family.
HISTOGRAM_FIELDS = ("count", "sum", "mean", "p50", "p99", "max")


def series_name(name: str, labelnames, label_values) -> str:
    """The flat series key for one child (``name{a=x,b=y}`` when labeled)."""
    if not labelnames:
        return name
    inner = ",".join(f"{ln}={lv}"
                     for ln, lv in zip(labelnames, label_values))
    return f"{name}{{{inner}}}"


def _histogram_fields(state: dict, bounds) -> dict[str, float]:
    count = state["count"]
    total = state["sum"]
    return {
        "count": count,
        "sum": total,
        "mean": total / count if count else 0.0,
        "p50": quantile_from_counts(bounds, state["counts"], 0.5,
                                    minimum=state["min"],
                                    maximum=state["max"]),
        "p99": quantile_from_counts(bounds, state["counts"], 0.99,
                                    minimum=state["min"],
                                    maximum=state["max"]),
        "max": state["max"] if state["max"] is not None else 0.0,
    }


def flatten_export(families: dict) -> dict[str, float]:
    """Flatten a registry export (or merged export) to scalar series."""
    flat: dict[str, float] = {}
    for name, family in families.items():
        kind = family["kind"]
        labelnames = family.get("labelnames", ())
        bounds = family.get("bounds", ())
        for label_values, state in family.get("children", ()):
            key = series_name(name, labelnames, label_values)
            if kind == "histogram":
                for fld, value in _histogram_fields(state, bounds).items():
                    flat[f"{key}.{fld}"] = value
            else:
                flat[key] = state
    return flat


class TimeSeriesStore:
    """Bounded ring of timestamped samples for many named series."""

    def __init__(self, capacity: int = 600):
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._series: dict[str, deque] = {}

    def record(self, t: float, values: dict[str, float]) -> None:
        """Append one sample of every series at time ``t``."""
        with self._lock:
            for name, value in values.items():
                ring = self._series.get(name)
                if ring is None:
                    ring = self._series[name] = deque(maxlen=self.capacity)
                ring.append((t, value))

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def series(self, name: str) -> list[tuple[float, float]]:
        """All retained ``(t, value)`` points, oldest first."""
        with self._lock:
            ring = self._series.get(name)
            return list(ring) if ring is not None else []

    def latest(self, name: str) -> float | None:
        with self._lock:
            ring = self._series.get(name)
            return ring[-1][1] if ring else None

    def window(self, name: str, seconds: float) -> list[tuple[float, float]]:
        """Points from the trailing ``seconds`` (relative to the newest)."""
        points = self.series(name)
        if not points:
            return []
        horizon = points[-1][0] - seconds
        return [point for point in points if point[0] >= horizon]

    def delta(self, name: str, seconds: float) -> float | None:
        """Newest value minus the oldest value inside the window.

        ``None`` with fewer than two points; clamped at 0 for apparent
        counter resets (merged totals shrink when a worker restarts).
        """
        points = self.window(name, seconds)
        if len(points) < 2:
            return None
        difference = points[-1][1] - points[0][1]
        return max(0.0, difference)

    def rate(self, name: str, seconds: float) -> float | None:
        """Per-second rate over the window (delta / actual elapsed)."""
        points = self.window(name, seconds)
        if len(points) < 2:
            return None
        elapsed = points[-1][0] - points[0][0]
        if elapsed <= 0:
            return None
        return max(0.0, points[-1][1] - points[0][1]) / elapsed
