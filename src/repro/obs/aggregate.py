"""Merge N worker telemetry snapshots into one logical registry.

The aggregation contract is *exactness*: merging the exports of N
registries produces the same state as one registry that observed every
sample itself —

* **counters** sum;
* **gauges** merge by their declared policy (``sum`` / ``max`` /
  ``last``, where ``last`` deterministically takes the value of the
  last worker in sorted ``(role, worker)`` order);
* **histograms** merge bucket-by-bucket (exact integer per-bucket
  counts add, ``count`` adds, ``sum`` adds, ``min``/``max`` take the
  extremes) — every derived quantity (cumulative Prometheus buckets,
  quantiles via the shared interpolation rule) is then computed from
  exact merged state, never re-estimated.

Because inputs are sorted before merging, the result is invariant to
worker count and to the order snapshots are discovered in: 1 publisher
or 4, shuffled or not, the merged snapshot is identical as long as the
same observations were made.  (Histogram/counter float sums are added
in sorted worker order, so the merge itself is deterministic; they are
bitwise-equal to a serial registry whenever the partial sums are exact
in float arithmetic, e.g. integer-valued observations.)

The merged result is materialized as a *live*
:class:`~repro.obs.metrics.MetricsRegistry`, so rendering (Prometheus
text, JSON snapshot) is the registry's own — one code path whether the
numbers came from one process or fifty.  Per-worker drill-down is
retained: :meth:`FleetSnapshot.worker_registry` rebuilds the same
families with a ``worker`` label on every child.  Stdlib-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.publish import TELEMETRY_DIR, discover_snapshots

#: Label added to every child when rendering per-worker drill-down.
WORKER_LABEL = "worker"


def _merge_histogram(target: dict | None, state: dict,
                     bounds: list) -> dict:
    if target is None:
        return {
            "bounds": list(bounds),
            "counts": list(state["counts"]),
            "sum": state["sum"],
            "count": state["count"],
            "min": state["min"],
            "max": state["max"],
        }
    if list(bounds) != target["bounds"]:
        raise ValueError(f"histogram bucket bounds differ across workers: "
                         f"{target['bounds']} vs {list(bounds)}")
    target["counts"] = [a + b for a, b
                        in zip(target["counts"], state["counts"])]
    target["sum"] += state["sum"]
    target["count"] += state["count"]
    for name, pick in (("min", min), ("max", max)):
        ours, theirs = target[name], state[name]
        if ours is None:
            target[name] = theirs
        elif theirs is not None:
            target[name] = pick(ours, theirs)
    return target


def merge_exports(exports: list[tuple[str, dict]]) -> dict:
    """Merge ``(worker, families-export)`` pairs into one families doc.

    Inputs are sorted by worker id first, so the merge is invariant to
    the order they were collected in.  The merged document has the same
    shape as :meth:`MetricsRegistry.export` except that histogram
    children carry their resolved ``bounds`` inline.
    """
    merged: dict = {}
    for worker, families in sorted(exports, key=lambda pair: pair[0]):
        for name, family in families.items():
            kind = family["kind"]
            target = merged.get(name)
            if target is None:
                target = merged[name] = {
                    "kind": kind,
                    "help": family.get("help", ""),
                    "labelnames": list(family.get("labelnames", ())),
                    "children": {},
                }
                if kind == "gauge":
                    target["agg"] = family.get("agg", "last")
                if kind == "histogram":
                    target["bounds"] = list(family.get("bounds", ()))
            elif target["kind"] != kind:
                raise ValueError(
                    f"metric {name!r} is a {target['kind']} on one worker "
                    f"and a {kind} on another")
            elif target["labelnames"] != list(family.get("labelnames", ())):
                raise ValueError(
                    f"metric {name!r} has labels {target['labelnames']} on "
                    f"one worker, {family.get('labelnames')} on another")
            children = target["children"]
            for label_values, state in family.get("children", ()):
                key = tuple(label_values)
                if kind == "counter":
                    children[key] = children.get(key, 0) + state
                elif kind == "gauge":
                    policy = target.get("agg", "last")
                    if key not in children or policy == "last":
                        children[key] = state
                    elif policy == "sum":
                        children[key] = children[key] + state
                    else:   # max
                        children[key] = max(children[key], state)
                else:
                    children[key] = _merge_histogram(
                        children.get(key), state, family.get("bounds", ()))
    # Normalize to the export shape: sorted [label-values, state] pairs.
    for family in merged.values():
        family["children"] = [[list(key), value] for key, value
                              in sorted(family["children"].items())]
    return merged


def registry_from_export(families: dict,
                         extra_label: tuple[str, str] | None = None
                         ) -> MetricsRegistry:
    """Materialize an export (or a merged one) as a live registry.

    ``extra_label`` appends one ``(name, value)`` label to every child —
    the per-worker drill-down path tags each worker's families with
    ``worker=<id>`` before pouring them into a shared registry.
    """
    registry = MetricsRegistry()
    for name, family in families.items():
        kind = family["kind"]
        labelnames = list(family.get("labelnames", ()))
        if extra_label is not None:
            labelnames = labelnames + [extra_label[0]]
        bounds = family.get("bounds") or None
        for label_values, state in family.get("children", ()):
            values = list(label_values)
            if extra_label is not None:
                values = values + [extra_label[1]]
            if kind == "counter":
                metric = registry.counter(name, family.get("help", ""),
                                          labelnames=labelnames)
            elif kind == "gauge":
                metric = registry.gauge(name, family.get("help", ""),
                                        labelnames=labelnames,
                                        agg=family.get("agg", "last"))
            else:
                child_bounds = bounds
                if child_bounds is None and isinstance(state, dict):
                    child_bounds = list(range(1, len(state["counts"])))
                metric = registry.histogram(name, family.get("help", ""),
                                            buckets=child_bounds,
                                            labelnames=labelnames)
            if labelnames:
                metric = metric.labels(**dict(zip(labelnames, values)))
            if kind == "histogram":
                metric._restore(state["counts"], state["count"],
                                state["sum"], state["min"], state["max"])
            else:
                metric._restore(state)
        # Labeled families with no children yet still register, so their
        # HELP/TYPE headers render (an unlabeled family always has its
        # anonymous child and never lands here).
        if not family.get("children") and labelnames:
            if kind == "counter":
                registry.counter(name, family.get("help", ""),
                                 labelnames=labelnames)
            elif kind == "gauge":
                registry.gauge(name, family.get("help", ""),
                               labelnames=labelnames,
                               agg=family.get("agg", "last"))
            else:
                registry.histogram(name, family.get("help", ""),
                                   buckets=bounds or (1.0,),
                                   labelnames=labelnames)
    return registry


@dataclass
class FleetSnapshot:
    """The merged view of one telemetry directory poll."""

    snapshots: list[dict] = field(default_factory=list)
    merged: dict = field(default_factory=dict)

    @property
    def workers(self) -> list[str]:
        return [f"{doc.get('role', '?')}-{doc.get('worker', '?')}"
                for doc in self.snapshots]

    def registry(self) -> MetricsRegistry:
        """A live registry holding the exact merged state."""
        return registry_from_export(self.merged)

    def worker_registry(self) -> MetricsRegistry:
        """One registry with every child tagged ``worker=<role>-<id>``."""
        registry = MetricsRegistry()
        for doc in self.snapshots:
            worker = f"{doc.get('role', '?')}-{doc.get('worker', '?')}"
            partial = registry_from_export(
                doc["families"], extra_label=(WORKER_LABEL, worker))
            _pour(partial, registry)
        return registry

    def render_prometheus(self, per_worker: bool = False) -> str:
        """Prometheus text of the merged state (or worker drill-down)."""
        registry = self.worker_registry() if per_worker else self.registry()
        return registry.render_prometheus()


def _pour(source: MetricsRegistry, target: MetricsRegistry) -> None:
    """Move every family of ``source`` into ``target`` (used to combine
    per-worker labeled registries; names never collide on state because
    each child carries its unique worker label)."""
    merged = merge_exports([("", target.export()), ("", source.export())])
    rebuilt = registry_from_export(merged)
    target._families = rebuilt._families


def aggregate_snapshots(snapshots: list[dict]) -> FleetSnapshot:
    """Merge snapshot documents (see :mod:`repro.obs.publish`)."""
    ordered = sorted(snapshots, key=lambda doc: (doc.get("role", ""),
                                                 doc.get("worker", "")))
    merged = merge_exports([
        (f"{doc.get('role', '')}-{doc.get('worker', '')}", doc["families"])
        for doc in ordered])
    return FleetSnapshot(snapshots=ordered, merged=merged)


def aggregate_dir(directory: str | Path) -> FleetSnapshot:
    """Poll a telemetry directory and merge whatever workers are live.

    Accepts the telemetry directory itself, or a parent containing a
    ``telemetry/`` subdirectory (a sweep root, a serve obs dir).
    """
    directory = Path(directory)
    if (directory / TELEMETRY_DIR).is_dir():
        directory = directory / TELEMETRY_DIR
    return aggregate_snapshots(discover_snapshots(directory))
