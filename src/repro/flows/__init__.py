"""End-to-end application flows.

* :mod:`repro.flows.datagen` — the dataset pipeline of Section 5: sweep VPR
  placement options, route every placement, render image pairs.
* :mod:`repro.flows.experiments` — Table 2 (two training strategies plus
  Top10), the Section 5.2 grayscale ablation, the Section 5.3 L1/skip
  ablations, and the Section 5.1 speedup measurement.
* :mod:`repro.flows.exploration` — Figure 9: constrained placement
  exploration by inference.
* :mod:`repro.flows.realtime` — Section 5.4: forecasting while the design
  is being placed.
"""

from repro.flows.datagen import (
    DesignBundle,
    DesignContext,
    build_design_bundle,
    build_suite_bundles,
    make_design_context,
    route_and_render,
    suite_image_size,
    sweep_placer_options,
)
from repro.flows.exploration import (
    ExplorationOutcome,
    region_mask,
    run_exploration,
    train_explorer,
)
from repro.flows.experiments import (
    AblationResult,
    Table2Row,
    measure_speedup,
    run_ablation,
    run_grayscale_ablation,
    run_table2,
)
from repro.flows.realtime import RealtimeFrame, live_forecast

__all__ = [
    "AblationResult",
    "DesignBundle",
    "DesignContext",
    "ExplorationOutcome",
    "RealtimeFrame",
    "Table2Row",
    "build_design_bundle",
    "build_suite_bundles",
    "live_forecast",
    "make_design_context",
    "measure_speedup",
    "region_mask",
    "route_and_render",
    "run_ablation",
    "run_exploration",
    "run_grayscale_ablation",
    "run_table2",
    "suite_image_size",
    "train_explorer",
    "sweep_placer_options",
]
