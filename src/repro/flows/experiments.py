"""Experiment orchestration for the paper's quantitative results.

* :func:`run_table2` — Table 2: Acc.1 (leave-one-design-out), Acc.2
  (plus transfer fine-tuning), Top10 ranking accuracy, per design.
* :func:`run_ablation` — Sections 5.3 / Figures 7-8: L1 and skip-connection
  ablations with loss histories and inference images.
* :func:`run_grayscale_ablation` — Section 5.2: color scheme vs grayscale.
* :func:`measure_speedup` — Section 5.1: routing runtime vs inference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.config import ExperimentScale
from repro.flows.datagen import DesignBundle, build_suite_bundles
from repro.gan.dataset import Dataset, Sample
from repro.gan.metrics import (
    image_congestion_score,
    per_pixel_accuracy,
    speedup,
    top_k_overlap,
)
from repro.gan.pix2pix import Pix2Pix, Pix2PixConfig
from repro.gan.trainer import Pix2PixTrainer, TrainHistory
from repro.viz.colors import rgb_to_grayscale


@dataclass
class Table2Row:
    """One row of Table 2.

    ``rank_rho`` extends the paper's table with the Spearman correlation
    between forecast and routed congestion over the test set — the
    continuous counterpart of the Top10 column, far less noisy at reduced
    placement counts.
    """

    design: str
    num_luts: int
    num_ffs: int
    num_nets: int
    num_placements: int
    acc1: float
    acc2: float
    top10: float
    rank_rho: float = float("nan")

    def format(self) -> str:
        return (f"{self.design:<10} {self.num_luts:>7} {self.num_ffs:>6} "
                f"{self.num_nets:>7} {self.num_placements:>4} "
                f"{self.acc1:>7.1%} {self.acc2:>7.1%} {self.top10:>6.0%} "
                f"{self.rank_rho:>6.2f}")

    @staticmethod
    def header() -> str:
        return (f"{'Design':<10} {'#LUTs':>7} {'#FF':>6} {'#Nets':>7} "
                f"{'#P':>4} {'Acc.1':>7} {'Acc.2':>7} {'Top10':>6} "
                f"{'rho':>6}")


def _combined_dataset(bundles: dict[str, DesignBundle]) -> Dataset:
    combined = Dataset()
    for bundle in bundles.values():
        combined.extend(bundle.dataset)
    return combined


def run_table2(
    scale: ExperimentScale,
    bundles: dict[str, DesignBundle] | None = None,
    designs: list[str] | None = None,
    seed: int = 0,
    cache_dir=None,
    log=None,
    run_root=None,
) -> list[Table2Row]:
    """Reproduce Table 2 at the given scale.

    For every design D: train on all other designs (strategy 1, Acc.1),
    fine-tune on ``scale.finetune_pairs`` pairs of D (strategy 2, Acc.2),
    then rank the remaining placements of D by forecast congestion and
    report the Top-k overlap with ground truth (Top10 column; k scales
    down with the dataset).

    Both strategies execute through the :mod:`repro.train` run layer —
    one :class:`~repro.train.runner.Runner` per design with a scratch
    phase and a fine-tune phase, sample order and trajectories
    bitwise-identical to the historical in-place loops.  Pass
    ``run_root`` to persist each design's run directory (loss JSONL,
    exact-resume checkpoints, published strategy-2 checkpoints);
    ``None`` keeps the runs in memory.
    """
    from repro.train import FinetuneSpec, Runner, TrainSpec, describe_scale

    if bundles is None:
        bundles = build_suite_bundles(scale, designs=designs, seed=seed,
                                      cache_dir=cache_dir, log=log)
    combined = _combined_dataset(bundles)
    scale_name, scale_overrides = describe_scale(scale)

    rows = []
    for design, bundle in bundles.items():
        if log is not None:
            log(f"table2: leave-one-out training for {design}")
        train, test = combined.leave_one_out(design)
        finetune = test[:scale.finetune_pairs]
        holdout = test[scale.finetune_pairs:]
        if len(holdout) == 0:
            holdout = test

        spec = TrainSpec(
            name=f"table2-{design}",
            data="inline",
            scale=scale_name,
            scale_overrides=scale_overrides,
            seed=seed,
            epochs=scale.epochs,
            order="shuffle",
            finetune=FinetuneSpec(epochs=scale.finetune_epochs,
                                  pairs=len(finetune), design=design),
            publish=run_root is not None,
        )
        runner = Runner(
            spec,
            run_dir=(Path(run_root) / spec.name
                     if run_root is not None else None),
            dataset=train, finetune_dataset=finetune, log=log)
        trainer = Pix2PixTrainer(runner.model, seed=seed)
        acc1_of = {}

        def measure_acc1(phase_name: str, model,
                         trainer=trainer, test=test, box=acc1_of) -> None:
            if phase_name == "train":
                box["acc1"] = trainer.mean_accuracy(test)

        runner.run(on_phase=measure_acc1)
        acc1 = acc1_of["acc1"]
        acc2 = trainer.mean_accuracy(holdout)

        # Top10: rank the *whole* testing set of the design by forecast
        # congestion (the paper ranks within the full per-design test set,
        # using the strategy-2 model).
        mask = bundle.channel_mask
        predicted = np.array([
            image_congestion_score(trainer.forecast(sample), mask)
            for sample in test])
        truth = np.array([sample.true_congestion for sample in test])
        k = max(1, min(scale.top_k, len(test) // 2))
        top10 = top_k_overlap(predicted, truth, k=k)
        if len(test) >= 3:
            from scipy.stats import spearmanr

            rank_rho = float(spearmanr(predicted, truth).statistic)
        else:
            rank_rho = float("nan")

        spec = bundle.spec
        rows.append(Table2Row(
            design=design,
            num_luts=spec.num_luts,
            num_ffs=spec.num_ffs,
            num_nets=spec.num_nets,
            num_placements=len(bundle.dataset),
            acc1=acc1,
            acc2=acc2,
            top10=top10,
            rank_rho=rank_rho,
        ))
        if log is not None:
            log(f"  {design}: Acc.1={acc1:.1%} Acc.2={acc2:.1%} "
                f"Top{k}={top10:.0%} rho={rank_rho:.2f}")
    return rows


# ---------------------------------------------------------------------------
# Section 5.3 — L1 / skip-connection ablation (Figures 7 and 8)
# ---------------------------------------------------------------------------

#: The three configurations compared in Figures 7 and 8.
ABLATION_VARIANTS: dict[str, dict] = {
    "L1+skip": {"l1_weight": None, "skip_mode": "all"},
    "w/o L1": {"l1_weight": 0.0, "skip_mode": "all"},
    "single skip": {"l1_weight": None, "skip_mode": "single"},
}


@dataclass
class AblationResult:
    """Loss curves and a held-out forecast for one model variant."""

    name: str
    history: TrainHistory
    forecast01: np.ndarray        # (H, W, 3) generated heat map in [0, 1]
    truth01: np.ndarray           # ground truth heat map in [0, 1]
    accuracy: float
    loss_noise: float = field(default=0.0)

    @staticmethod
    def loss_roughness(values: list[float]) -> float:
        """Mean |second difference|: the 'training noise' of Figure 8."""
        if len(values) < 3:
            return 0.0
        arr = np.asarray(values)
        return float(np.abs(np.diff(arr, n=2)).mean())


def run_ablation(
    scale: ExperimentScale,
    bundle: DesignBundle,
    variants: dict[str, dict] | None = None,
    epochs: int | None = None,
    seed: int = 0,
) -> dict[str, AblationResult]:
    """Train the Figure 7/8 model variants on one design's dataset.

    The last placement is held out as the Figure 7 inference example; the
    rest train each variant from the same initialization seed.
    """
    variants = variants if variants is not None else ABLATION_VARIANTS
    epochs = epochs if epochs is not None else max(2, scale.epochs)
    if len(bundle.dataset) < 2:
        raise ValueError("ablation needs at least 2 samples")
    train = bundle.dataset[:-1]
    held_out = bundle.dataset[len(bundle.dataset) - 1]

    results = {}
    for name, overrides in variants.items():
        l1_weight = overrides.get("l1_weight")
        config = Pix2PixConfig.from_scale(
            scale,
            image_size=bundle.layout.image_size,
            skip_mode=overrides.get("skip_mode", "all"),
            seed=seed,
            **({} if l1_weight is None else {"l1_weight": l1_weight}),
        )
        model = Pix2Pix(config)
        trainer = Pix2PixTrainer(model, seed=seed)
        history = trainer.fit(train, epochs)
        forecast = trainer.forecast(held_out)
        truth = held_out.y_image
        results[name] = AblationResult(
            name=name,
            history=history,
            forecast01=forecast,
            truth01=truth,
            accuracy=per_pixel_accuracy(forecast, truth),
            loss_noise=AblationResult.loss_roughness(history.g_total),
        )
    return results


# ---------------------------------------------------------------------------
# Section 5.2 — color scheme vs grayscale
# ---------------------------------------------------------------------------

def _grayscale_dataset(dataset: Dataset) -> Dataset:
    """Replace the RGB placement channels with their grayscale version."""
    converted = Dataset()
    for sample in dataset:
        place01 = sample.place_image
        gray01 = rgb_to_grayscale(place01)
        x = sample.x.copy()
        x[:3] = (2.0 * gray01 - 1.0).transpose(2, 0, 1)
        converted.append(Sample(
            design=sample.design, x=x, y=sample.y,
            true_congestion=sample.true_congestion,
            placer_options=sample.placer_options,
            route_seconds=sample.route_seconds,
            place_seconds=sample.place_seconds,
            converged=sample.converged,
        ))
    return converted


@dataclass
class GrayscaleComparison:
    """Color vs grayscale: accuracy and runtime (Section 5.2)."""

    color_accuracy: float
    gray_accuracy: float
    color_train_seconds: float
    gray_train_seconds: float
    color_infer_seconds: float
    gray_infer_seconds: float

    @property
    def accuracy_drop(self) -> float:
        return self.color_accuracy - self.gray_accuracy


def run_grayscale_ablation(
    scale: ExperimentScale,
    bundle: DesignBundle,
    epochs: int | None = None,
    holdout: int = 2,
    seed: int = 0,
) -> GrayscaleComparison:
    """Train identical models on RGB and grayscale inputs and compare."""
    epochs = epochs if epochs is not None else max(2, scale.epochs)
    if len(bundle.dataset) <= holdout:
        raise ValueError("not enough samples for the requested holdout")
    results = {}
    for variant in ("color", "gray"):
        dataset = (bundle.dataset if variant == "color"
                   else _grayscale_dataset(bundle.dataset))
        train = dataset[:-holdout]
        test = dataset[len(dataset) - holdout:]
        model = Pix2Pix(Pix2PixConfig.from_scale(
            scale, image_size=bundle.layout.image_size, seed=seed))
        trainer = Pix2PixTrainer(model, seed=seed)
        start = time.perf_counter()
        trainer.fit(train, epochs)
        train_seconds = time.perf_counter() - start
        trainer.forecast(test[0])  # warm caches before timing inference
        start = time.perf_counter()
        accuracy = trainer.mean_accuracy(test)
        infer_seconds = (time.perf_counter() - start) / len(test)
        results[variant] = (accuracy, train_seconds, infer_seconds)
    return GrayscaleComparison(
        color_accuracy=results["color"][0],
        gray_accuracy=results["gray"][0],
        color_train_seconds=results["color"][1],
        gray_train_seconds=results["gray"][1],
        color_infer_seconds=results["color"][2],
        gray_infer_seconds=results["gray"][2],
    )


# ---------------------------------------------------------------------------
# Section 5.1 — speedup
# ---------------------------------------------------------------------------

@dataclass
class SpeedupReport:
    """Routing runtime vs forecast runtime."""

    mean_route_seconds: float
    mean_infer_seconds: float

    @property
    def speedup(self) -> float:
        return speedup(self.mean_route_seconds, self.mean_infer_seconds)


def measure_speedup(bundle: DesignBundle, trainer: Pix2PixTrainer,
                    repeats: int = 3) -> SpeedupReport:
    """Average routed runtime (recorded at datagen) vs generator inference."""
    route_seconds = float(np.mean(
        [sample.route_seconds for sample in bundle.dataset]))
    sample = bundle.dataset[0]
    start = time.perf_counter()
    for _ in range(repeats):
        trainer.forecast(sample)
    infer_seconds = (time.perf_counter() - start) / repeats
    return SpeedupReport(mean_route_seconds=route_seconds,
                         mean_infer_seconds=infer_seconds)
