"""Real-time congestion forecasting during placement (Section 5.4).

"The proposed approach is applied to visualize the routing utilization
on-the-fly during placement ... the classic simulated annealing based
placement algorithm implemented in VPR."

:func:`live_forecast` hooks the annealer's snapshot callback: at every K-th
temperature it renders the in-flight placement, forecasts the heat map with
the trained generator, and records (optionally writes) the frame — the GIF
frames of the paper's demo page.

Forecasts run either directly on a :class:`~repro.gan.Pix2Pix` model or
through a running :class:`repro.serve.BatchingEngine` (pass ``engine=``),
which is how a placer shares one warm forecaster — and its cache — with
other clients.  Both paths are deterministic and produce identical frames.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.fpga import PlacerOptions, SimulatedAnnealingPlacer
from repro.flows.datagen import DesignBundle
from repro.gan.dataset import input_from_images
from repro.gan.metrics import image_congestion_score
from repro.gan.pix2pix import Pix2Pix
from repro.viz import (
    render_connectivity,
    render_floorplan,
    render_placement,
    write_png,
)


@dataclass
class RealtimeFrame:
    """One forecast taken mid-anneal."""

    temperature_index: int
    temperature: float
    place_image: np.ndarray       # (H, W, 3) in [0, 1]
    forecast: np.ndarray          # (H, W, 3) in [0, 1]
    predicted_congestion: float
    forecast_seconds: float


def live_forecast(
    bundle: DesignBundle,
    model: Pix2Pix | None = None,
    options: PlacerOptions | None = None,
    snapshot_every: int = 2,
    connect_weight: float = 0.1,
    out_dir: str | Path | None = None,
    gif_path: str | Path | None = None,
    engine=None,
    engine_model_id: str | None = None,
) -> list[RealtimeFrame]:
    """Anneal the bundle's netlist while forecasting congestion per snapshot.

    Returns the frame sequence; when ``out_dir`` is given, each frame's
    placement and forecast images are written as PNG pairs; when
    ``gif_path`` is given, the forecast frames are additionally written as
    an animated GIF (the artifact of the paper's demo page).

    When ``engine`` (a started :class:`repro.serve.BatchingEngine`) is
    given, forecasts go through its batching/cache path instead of calling
    the model directly: either name a registered model with
    ``engine_model_id``, or pass ``model`` and it is registered in the
    engine's registry on first use (under ``"realtime"``, or a suffixed id
    when that is taken by a different model).
    """
    if engine is None and model is None:
        raise ValueError("pass a model, an engine, or both")
    options = options if options is not None else PlacerOptions(seed=17)
    layout = bundle.layout
    floor_image = render_floorplan(bundle.arch, layout)
    mask = bundle.channel_mask
    frames: list[RealtimeFrame] = []

    model_id = engine_model_id
    if engine is not None and model_id is None:
        if model is None:
            raise ValueError(
                "pass model= or engine_model_id= with an engine")
        # Serve THIS model instance — never a same-named earlier one.
        model_id = engine.registry.id_of(model)
        if model_id is None:
            model_id, suffix = "realtime", 1
            while model_id in engine.registry:
                suffix += 1
                model_id = f"realtime-{suffix}"
            engine.registry.register(model_id, model)

    def snapshot(index: int, temperature: float, placement) -> None:
        place_image = render_placement(placement, layout, base=floor_image)
        connect_image = render_connectivity(bundle.netlist, placement, layout)
        x = input_from_images(place_image, connect_image, connect_weight)
        start = time.perf_counter()
        if engine is not None:
            forecast01 = engine.forecast(model_id, x[0])
        else:
            forecast01 = model.forecast(x[0])
        forecast_seconds = time.perf_counter() - start
        frames.append(RealtimeFrame(
            temperature_index=index,
            temperature=temperature,
            place_image=place_image,
            forecast=forecast01,
            predicted_congestion=image_congestion_score(forecast01, mask),
            forecast_seconds=forecast_seconds,
        ))

    placer = SimulatedAnnealingPlacer(bundle.netlist, bundle.arch, options)
    placer.place(snapshot_callback=snapshot, snapshot_every=snapshot_every)

    if out_dir is not None:
        out_dir = Path(out_dir)
        for number, frame in enumerate(frames):
            write_png(out_dir / f"frame_{number:03d}_place.png",
                      frame.place_image)
            write_png(out_dir / f"frame_{number:03d}_forecast.png",
                      frame.forecast)
    if gif_path is not None and frames:
        from repro.viz.gif import write_gif

        side_by_side = [
            np.concatenate([frame.place_image, frame.forecast], axis=1)
            for frame in frames
        ]
        write_gif(gif_path, side_by_side)
    return frames
