"""Constrained placement exploration by inference (Section 5.4, Figure 9).

Given a trained forecaster and a pool of candidate placements, select the
placement optimizing a congestion objective *from forecasts alone* — overall
max/min congestion, or minimum congestion restricted to a region of the
floorplan (upper, lower, right in the paper's figure) — then check the choice
against the routed ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flows.datagen import DesignBundle
from repro.gan.metrics import regional_congestion_score
from repro.gan.trainer import Pix2PixTrainer

#: Objectives shown left to right in Figure 9.
FIGURE9_OBJECTIVES: tuple[tuple[str, str, str], ...] = (
    ("overall-max", "overall", "max"),
    ("overall-min", "overall", "min"),
    ("upper-min", "upper", "min"),
    ("lower-min", "lower", "min"),
    ("right-min", "right", "min"),
)


def region_mask(image_size: int, region: str) -> np.ndarray:
    """Boolean pixel mask for a named floorplan region.

    ``upper``/``lower`` split the image at mid-height; ``right`` takes the
    right half; ``overall`` selects everything.
    """
    mask = np.zeros((image_size, image_size), dtype=bool)
    half = image_size // 2
    if region == "overall":
        mask[:, :] = True
    elif region == "upper":
        mask[:half, :] = True
    elif region == "lower":
        mask[half:, :] = True
    elif region == "right":
        mask[:, half:] = True
    elif region == "left":
        mask[:, :half] = True
    else:
        raise ValueError(f"unknown region {region!r}")
    return mask


@dataclass
class ObjectiveOutcome:
    """One Figure 9 column: the placement chosen for one objective."""

    objective: str
    region: str
    direction: str
    chosen_index: int           # index into the candidate pool
    predicted_score: float      # forecast congestion of the chosen placement
    true_score: float           # routed congestion of the chosen placement
    best_true_index: int        # index the oracle would have chosen
    regret: float               # |true(chosen) - true(oracle)|

    @property
    def hit(self) -> bool:
        return self.chosen_index == self.best_true_index


@dataclass
class ExplorationOutcome:
    """All objectives plus rank-quality statistics."""

    design: str
    outcomes: list[ObjectiveOutcome]
    rank_correlation: float     # Spearman rho of predicted vs true overall

    def by_objective(self, name: str) -> ObjectiveOutcome:
        for outcome in self.outcomes:
            if outcome.objective == name:
                return outcome
        raise KeyError(name)


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    from scipy.stats import spearmanr

    if len(a) < 3:
        return float("nan")
    rho, _ = spearmanr(a, b)
    return float(rho)


def train_explorer(scale, bundles: dict[str, DesignBundle], design: str,
                   seed: int = 0, run_root=None, log=None
                   ) -> Pix2PixTrainer:
    """Train the Figure 9 exploration forecaster through the run layer.

    Trains on every bundle's samples for ``2 * scale.epochs`` (the
    exploration flow's historical budget) with the classic shuffle
    order, via a :class:`repro.train.runner.Runner` — pass ``run_root``
    to keep the run directory (losses, exact-resume checkpoints, a
    published checkpoint the serve registry can load).  Returns a
    trainer facade around the trained model for the inference pass.
    """
    from pathlib import Path

    from repro.gan.dataset import Dataset
    from repro.train import Runner, TrainSpec, describe_scale

    if design not in bundles:
        known = ", ".join(sorted(bundles))
        raise ValueError(f"unknown design {design!r}; bundles hold: {known}")
    combined = Dataset()
    for bundle in bundles.values():
        combined.extend(bundle.dataset)
    scale_name, scale_overrides = describe_scale(scale)
    spec = TrainSpec(
        name=f"explore-{design}",
        data="inline",
        scale=scale_name,
        scale_overrides=scale_overrides,
        seed=seed,
        epochs=scale.epochs * 2,
        order="shuffle",
        publish=run_root is not None,
    )
    runner = Runner(
        spec,
        run_dir=(Path(run_root) / spec.name
                 if run_root is not None else None),
        dataset=combined, log=log)
    runner.run()
    return Pix2PixTrainer(runner.model, seed=seed)


def run_exploration(bundle: DesignBundle, trainer: Pix2PixTrainer,
                    objectives=FIGURE9_OBJECTIVES) -> ExplorationOutcome:
    """Score every candidate placement by forecast and apply each objective."""
    mask = bundle.channel_mask
    size = bundle.layout.image_size

    predicted_maps = [trainer.forecast(sample) for sample in bundle.dataset]
    truth_maps = [sample.y_image for sample in bundle.dataset]

    outcomes = []
    overall_pred = None
    overall_true = None
    for objective, region, direction in objectives:
        rmask = region_mask(size, region)
        predicted = np.array([
            regional_congestion_score(pmap, mask, rmask)
            for pmap in predicted_maps])
        truth = np.array([
            regional_congestion_score(tmap, mask, rmask)
            for tmap in truth_maps])
        if region == "overall":
            overall_pred, overall_true = predicted, truth
        pick = np.argmax if direction == "max" else np.argmin
        chosen = int(pick(predicted))
        oracle = int(pick(truth))
        outcomes.append(ObjectiveOutcome(
            objective=objective,
            region=region,
            direction=direction,
            chosen_index=chosen,
            predicted_score=float(predicted[chosen]),
            true_score=float(truth[chosen]),
            best_true_index=oracle,
            regret=float(abs(truth[chosen] - truth[oracle])),
        ))

    if overall_pred is None:
        rmask = region_mask(size, "overall")
        overall_pred = np.array([
            regional_congestion_score(pmap, mask, rmask)
            for pmap in predicted_maps])
        overall_true = np.array([
            regional_congestion_score(tmap, mask, rmask)
            for tmap in truth_maps])
    rho = _spearman(overall_pred, overall_true)
    return ExplorationOutcome(design=bundle.spec.name, outcomes=outcomes,
                              rank_correlation=rho)
