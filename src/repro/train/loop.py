"""The training epoch/step engine and its batch sources.

:class:`TrainLoop` owns what used to be the body of
``Pix2PixTrainer.fit`` / ``fit_stream``: iterate epochs, pull batches
from a :class:`BatchSource`, call the model's ``train_step``, and fold
sample-weighted loss averages into a :class:`TrainHistory`.  The trainer
now delegates here, and :class:`repro.train.runner.Runner` drives the
same loop with persistence hooks attached — one epoch engine, every
consumer bitwise-identical to the old in-place loops.

Batch sources abstract *where samples come from and in what order*:

* :class:`ShuffledDatasetSource` — the classic ``fit`` order: one
  persistent rng reshuffles an in-memory dataset every epoch, batch
  size 1.  Its position is capturable (rng state at epoch start +
  batches consumed), which is what exact resume serializes.
* :class:`LoaderSource` — wraps a :class:`repro.data.loader`
  shard-aware loader; the epoch plan is a pure function of
  ``(seed, epoch)``, so the cursor alone is the state.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

if TYPE_CHECKING:   # import at runtime would cycle through repro.gan
    from repro.gan.dataset import Dataset


@dataclass
class TrainHistory:
    """Per-epoch average losses (the curves of Figure 8)."""

    g_total: list[float] = field(default_factory=list)
    g_gan: list[float] = field(default_factory=list)
    g_l1: list[float] = field(default_factory=list)
    d_total: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.g_total)

    def extend(self, other: "TrainHistory") -> None:
        self.g_total.extend(other.g_total)
        self.g_gan.extend(other.g_gan)
        self.g_l1.extend(other.g_l1)
        self.d_total.extend(other.d_total)
        self.epoch_seconds.extend(other.epoch_seconds)


class StopTraining(Exception):
    """Raised by a step hook to halt the loop after a clean checkpoint."""


class BatchSource:
    """Epochs of ``(x, y)`` batches with a capturable position."""

    #: Number of samples one full epoch yields.
    num_samples: int

    def epoch_batches(self, epoch: int, skip_batches: int = 0
                      ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        raise NotImplementedError

    def order_state(self) -> dict | None:
        """JSON-able sample-order state as of the current epoch's start.

        ``None`` means the order is a pure function of the epoch index
        (nothing beyond the cursor needs to be captured).
        """
        return None

    def restore_order_state(self, state: dict | None) -> None:
        if state is not None:
            raise ValueError(
                f"{type(self).__name__} carries no order state, got {state}")

    def clear_epoch_snapshot(self) -> None:
        """Mark the epoch boundary (stateful sources drop their snapshot)."""


class ShuffledDatasetSource(BatchSource):
    """The legacy ``fit`` order: persistent-rng reshuffle, batch size 1.

    The rng is shared across phases (and across repeated ``fit`` calls on
    one trainer), so sample orders depend on how many epochs ran before —
    exactly the behavior the historical trainer had.  For resume, the rng
    state is snapshotted *before* each epoch's permutation draw; restoring
    it and replaying the epoch reproduces the same permutation.
    """

    def __init__(self, dataset: Dataset, rng: np.random.Generator):
        if not dataset:
            raise ValueError("cannot train on an empty dataset")
        self.dataset = dataset
        self.rng = rng
        self._epoch_start_state: dict | None = None

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    def epoch_batches(self, epoch: int, skip_batches: int = 0
                      ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        # Snapshot before the permutation draw: restoring this state and
        # re-entering the same epoch redraws the identical permutation.
        self._epoch_start_state = self.rng.bit_generator.state
        shuffled = self.dataset.shuffled(self.rng)
        for sample in shuffled.samples[skip_batches:]:
            yield sample.x[None], sample.y[None]

    def order_state(self) -> dict | None:
        """Mid-epoch: the epoch-start snapshot; at a boundary (after
        :meth:`clear_epoch_snapshot`): the live rng state, which is what
        the next epoch's draw starts from either way."""
        state = (self._epoch_start_state if self._epoch_start_state
                 is not None else self.rng.bit_generator.state)
        # bit_generator states hold plain ints; round-trip through JSON
        # here so a checkpoint never carries un-serializable leaves.
        return json.loads(json.dumps(state))

    def restore_order_state(self, state: dict | None) -> None:
        if state is None:
            raise ValueError("ShuffledDatasetSource needs an rng order "
                             "state to resume; the checkpoint has none")
        self.rng.bit_generator.state = state
        self._epoch_start_state = None

    def clear_epoch_snapshot(self) -> None:
        self._epoch_start_state = None


class LoaderSource(BatchSource):
    """A :mod:`repro.data.loader` epoch stream as a batch source.

    The loader's epoch plan is a pure function of ``(seed, epoch)``;
    resuming needs only the ``(epoch, batch)`` cursor, which the loop
    tracks — there is no order state to capture.
    """

    def __init__(self, loader):
        self.loader = loader

    @property
    def num_samples(self) -> int:
        return len(self.loader)

    def epoch_batches(self, epoch: int, skip_batches: int = 0
                      ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if skip_batches:
            return self.loader.epoch(epoch, skip_batches=skip_batches)
        # Zero-skip stays on the historical call signature so foreign
        # loaders (anything with ``epoch(index)``) keep working.
        return self.loader.epoch(epoch)


@dataclass
class EpochStats:
    """One epoch's folded losses (sample-weighted sums and count)."""

    sums: np.ndarray                  # (4,) float64: g_total, g_gan, g_l1, d
    count: int

    @classmethod
    def fresh(cls) -> "EpochStats":
        return cls(sums=np.zeros(4), count=0)

    def fold(self, losses, weight: int) -> None:
        self.sums += weight * np.asarray(
            (losses.g_total, losses.g_gan, losses.g_l1, losses.d_total))
        self.count += weight

    def averages(self) -> np.ndarray:
        return self.sums / self.count


class TrainLoop:
    """Run epochs of adversarial steps over a batch source.

    ``on_step(epoch, step, losses, weight, stats)`` fires after every
    optimizer step with the epoch's running :class:`EpochStats`;
    ``on_epoch(epoch, averages, count, seconds)`` after every epoch
    fold.  Either may raise :class:`StopTraining` to halt cleanly; the
    partially-run epoch's history entry is then *not* emitted (resume
    re-folds it from checkpointed sums).
    """

    def __init__(self, model,
                 on_step: Callable | None = None,
                 on_epoch: Callable | None = None):
        self.model = model
        self.on_step = on_step
        self.on_epoch = on_epoch

    def run(self, source: BatchSource, epochs: int, *,
            start_epoch: int = 0, start_step: int = 0,
            start_stats: EpochStats | None = None,
            log_every: int | None = None,
            log_samples: bool = False,
            empty_error: str = "loader yielded no samples") -> TrainHistory:
        """Train for ``epochs`` epochs; returns per-epoch history.

        ``start_epoch``/``start_step`` resume mid-run: the first epoch
        executed is ``start_epoch``, skipping its first ``start_step``
        batches, with loss accumulation continuing from ``start_stats``
        (the checkpointed partial-epoch sums) so the epoch average is
        bitwise what an uninterrupted run computes.
        """
        history = TrainHistory()
        for epoch in range(start_epoch, epochs):
            start = time.perf_counter()
            resuming = epoch == start_epoch and start_step > 0
            stats = (start_stats if resuming and start_stats is not None
                     else EpochStats.fresh())
            step = start_step if resuming else 0
            for x_batch, y_batch in source.epoch_batches(
                    epoch, skip_batches=step):
                losses = self.model.train_step(x_batch, y_batch)
                weight = x_batch.shape[0]
                stats.fold(losses, weight)
                step += 1
                if self.on_step is not None:
                    self.on_step(epoch, step, losses, weight, stats)
            if stats.count == 0:
                raise ValueError(empty_error)
            averages = stats.averages()
            history.g_total.append(float(averages[0]))
            history.g_gan.append(float(averages[1]))
            history.g_l1.append(float(averages[2]))
            history.d_total.append(float(averages[3]))
            history.epoch_seconds.append(time.perf_counter() - start)
            if self.on_epoch is not None:
                self.on_epoch(epoch, averages, stats.count,
                              history.epoch_seconds[-1])
            if log_every and (epoch + 1) % log_every == 0:
                suffix = f" [{stats.count} samples]" if log_samples else ""
                print(f"  epoch {epoch + 1}/{epochs}: "
                      f"G={averages[0]:.4f} (gan {averages[1]:.4f}, "
                      f"l1 {averages[2]:.4f}) D={averages[3]:.4f}{suffix}")
        return history
