"""Run-directory progress reading and rendering — stdlib only.

``repro train status`` answers "how is my run doing" from the run
directory's JSON artifacts alone: ``spec.json``, ``status.json``, and
the tails of ``losses.jsonl`` / ``evals.jsonl``.  Nothing here (or on
this module's import path) touches numpy or the model stack, so polling
a long run from a shell is instant and works on hosts without the
scientific stack installed — the ``repro.train`` package only loads its
heavy modules lazily.
"""

from __future__ import annotations

import json
from pathlib import Path

# Telemetry artifact name is owned by repro.obs (also stdlib-only);
# importing it keeps the single definition without pulling in numpy.
from repro.obs.render import TELEMETRY_NAME

SPEC_NAME = "spec.json"
STATUS_NAME = "status.json"
LOSSES_NAME = "losses.jsonl"
EVALS_NAME = "evals.jsonl"


def _tail_records(path: Path, wants: dict) -> dict:
    """Last line matching each predicate in ``wants``, one backwards scan.

    The file is read once and scanned from the end, stopping as soon as
    every predicate has matched — a mid-epoch status poll of a long run
    parses only the lines since the last epoch fold, not the whole log.
    """
    found = {name: None for name in wants}
    if not path.exists():
        return found
    remaining = set(wants)
    for line in reversed(path.read_text().splitlines()):
        if not remaining:
            break
        if not line:
            continue
        try:
            document = json.loads(line)
        except json.JSONDecodeError:
            # A live run may be mid-append on its final line; a status
            # poll skips it rather than crashing.
            continue
        for name in list(remaining):
            if wants[name](document):
                found[name] = document
                remaining.discard(name)
    return found


def read_run_status(run_dir: str | Path) -> dict:
    """Everything knowable about a run from its JSON artifacts.

    Raises ``FileNotFoundError`` when ``run_dir`` has no ``spec.json``
    (it is not a run directory).
    """
    run_dir = Path(run_dir)
    spec_path = run_dir / SPEC_NAME
    if not spec_path.exists():
        raise FileNotFoundError(
            f"{run_dir} is not a run directory (no {SPEC_NAME})")
    spec = json.loads(spec_path.read_text())
    status_path = run_dir / STATUS_NAME
    status = (json.loads(status_path.read_text())
              if status_path.exists() else {})
    losses = _tail_records(run_dir / LOSSES_NAME, {
        "step": lambda doc: "event" not in doc,
        "epoch": lambda doc: doc.get("event") == "epoch",
    })
    evals = _tail_records(run_dir / EVALS_NAME,
                          {"eval": lambda doc: True})
    last_step, last_epoch = losses["step"], losses["epoch"]
    last_eval = evals["eval"]
    return {
        "timing": _read_timing(run_dir),
        "run_dir": str(run_dir),
        "name": spec.get("name"),
        "spec": spec,
        "state": status.get("state", "not started"),
        "phases": status.get("phases"),
        "phase": status.get("phase"),
        "epoch": status.get("epoch"),
        "global_step": status.get("global_step", 0),
        "elapsed_seconds": status.get("elapsed_seconds"),
        "best": status.get("best"),
        "last_step": last_step,
        "last_epoch": last_epoch,
        "last_eval": last_eval,
    }


def _read_timing(run_dir: Path) -> dict | None:
    """The latest throughput numbers from ``telemetry.jsonl``.

    Same backwards-scan discipline as the loss tails: the newest epoch
    fold carries steps/sec and mean step ms, the newest step/eval events
    the most recent raw durations.  Returns ``None`` when the run has no
    telemetry (disabled, or an older run directory).
    """
    records = _tail_records(run_dir / TELEMETRY_NAME, {
        "epoch": lambda doc: doc.get("event") == "epoch",
        "step": lambda doc: doc.get("event") == "step",
        "eval": lambda doc: doc.get("event") == "eval",
    })
    if all(record is None for record in records.values()):
        return None
    timing: dict = {}
    epoch = records["epoch"]
    if epoch is not None:
        timing["steps_per_sec"] = epoch.get("steps_per_sec")
        timing["mean_step_ms"] = epoch.get("mean_step_ms")
    if records["step"] is not None:
        timing["last_step_ms"] = records["step"].get("ms")
    if records["eval"] is not None:
        timing["eval_ms"] = records["eval"].get("ms")
    return timing


def _format_losses(record: dict | None) -> str:
    if record is None:
        return "-"
    return (f"G={record['g_total']:.4f} "
            f"(gan {record['g_gan']:.4f}, l1 {record['g_l1']:.4f}) "
            f"D={record['d_total']:.4f}")


def format_run_status(info: dict) -> str:
    """A terminal-friendly multi-line summary of :func:`read_run_status`."""
    lines = [f"run {info['name']} [{info['state']}]  ({info['run_dir']})"]
    phases = info.get("phases") or []
    budget = ", ".join(f"{p['name']}:{p['epochs']}" for p in phases)
    position = (f"phase {info['phase']}, epoch {info['epoch']}"
                if info.get("phase") is not None else "not started")
    lines.append(f"  progress    {position}  "
                 f"(step {info['global_step']}"
                 + (f", epochs {budget}" if budget else "") + ")")
    if info.get("elapsed_seconds") is not None:
        lines.append(f"  elapsed     {info['elapsed_seconds']:.1f}s")
    timing = info.get("timing")
    if timing:
        parts = []
        if timing.get("steps_per_sec") is not None:
            parts.append(f"{timing['steps_per_sec']:.2f} steps/s")
        if timing.get("mean_step_ms") is not None:
            parts.append(f"mean step {timing['mean_step_ms']:.1f} ms")
        elif timing.get("last_step_ms") is not None:
            parts.append(f"last step {timing['last_step_ms']:.1f} ms")
        if timing.get("eval_ms") is not None:
            parts.append(f"eval {timing['eval_ms']:.0f} ms")
        if parts:
            lines.append("  timing      " + ", ".join(parts))
    last_epoch = info.get("last_epoch")
    if last_epoch is not None:
        lines.append(f"  last epoch  {last_epoch['phase']} "
                     f"#{last_epoch['epoch']}: "
                     f"{_format_losses(last_epoch)} "
                     f"[{last_epoch['samples']} samples]")
    last_step = info.get("last_step")
    if last_step is not None:
        lines.append(f"  last step   {last_step['phase']} "
                     f"e{last_step['epoch']} s{last_step['step']}: "
                     f"{_format_losses(last_step)}")
    best = info.get("best")
    if best and best.get("value") is not None:
        lines.append(f"  best        {best['metric']}={best['value']:.6f} "
                     f"at epoch {best['epoch']}")
    last_eval = info.get("last_eval")
    if last_eval is not None:
        shown = sorted(last_eval["metrics"])[:4]
        rendered = ", ".join(f"{name}={last_eval['metrics'][name]:.4f}"
                             for name in shown)
        lines.append(f"  last eval   epoch {last_eval['epoch']}: {rendered}")
    return "\n".join(lines)


def iter_run_dirs(root: str | Path):
    """Run directories directly under ``root`` (those with a spec.json)."""
    root = Path(root)
    if (root / SPEC_NAME).exists():
        yield root
        return
    if not root.is_dir():
        return
    for child in sorted(root.iterdir()):
        if (child / SPEC_NAME).exists():
            yield child
