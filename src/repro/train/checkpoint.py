"""Exact-resume training checkpoints.

A train-state checkpoint captures *everything* a step depends on, so a
run resumed from it is bitwise-identical to one that never stopped:

* generator / discriminator parameters **and** BatchNorm running stats
  (the module state dicts),
* both flat-Adam optimizers' moment buffers and step counts,
* every live rng stream (decoder dropout noise) mid-sequence,
* the cursor — phase, epoch, batches consumed, the sample-order state,
  and the partial-epoch loss sums the epoch average folds from.

Arrays live in one ``.npz`` with the versioned header from
:mod:`repro.nn.serialize`; the cursor travels inside that header, so a
checkpoint file is self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.gan.pix2pix import Pix2Pix
from repro.nn.serialize import (
    CheckpointError,
    load_optimizer_state_dict,
    make_header,
    module_rng_states,
    optimizer_state_dict,
    read_npz,
    restore_module_rng_states,
    validate_state_dict,
    write_npz,
)

TRAIN_STATE_FORMAT = "repro.train-state"
TRAIN_STATE_VERSION = 1

#: Array-name prefixes inside the archive.
_PREFIXES = ("G.", "D.", "optG.", "optD.")


@dataclass
class TrainCursor:
    """Where a run stands, in loop coordinates (all JSON-able)."""

    phase: int = 0                 # index into the runner's phase plan
    epoch: int = 0                 # epoch in progress within the phase
    step: int = 0                  # batches consumed in that epoch
    global_step: int = 0           # optimizer steps since run start
    loss_lines: int = 0            # valid lines in losses.jsonl
    eval_lines: int = 0            # valid lines in evals.jsonl
    loss_count: int = 0            # samples folded into the partial epoch
    order_state: dict | None = None   # sample-order rng state (shuffle mode)
    best_value: float | None = None   # best tracked eval metric so far
    best_epoch: int | None = None
    rng_states: dict = field(default_factory=dict)   # module rng JSON blobs

    def to_meta(self) -> dict:
        return {
            "phase": self.phase, "epoch": self.epoch, "step": self.step,
            "global_step": self.global_step,
            "loss_lines": self.loss_lines, "eval_lines": self.eval_lines,
            "loss_count": self.loss_count, "order_state": self.order_state,
            "best_value": self.best_value, "best_epoch": self.best_epoch,
            "rng_states": self.rng_states,
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "TrainCursor":
        return cls(**{name: meta[name] for name in (
            "phase", "epoch", "step", "global_step", "loss_lines",
            "eval_lines", "loss_count", "order_state", "best_value",
            "best_epoch", "rng_states")})


def save_train_state(path: str | Path, model: Pix2Pix,
                     cursor: TrainCursor, loss_sums: np.ndarray,
                     spec_sha: str | None = None) -> None:
    """Write one exact-resume checkpoint (atomic)."""
    arrays: dict[str, np.ndarray] = {}
    for prefix, state in (
            ("G.", model.generator.state_dict()),
            ("D.", model.discriminator.state_dict()),
            ("optG.", optimizer_state_dict(model.opt_g)),
            ("optD.", optimizer_state_dict(model.opt_d))):
        for name, value in state.items():
            arrays[prefix + name] = value
    arrays["loss_sums"] = np.asarray(loss_sums, dtype=np.float64)
    cursor.rng_states = {
        **{f"G.{k}": v
           for k, v in module_rng_states(model.generator).items()},
        **{f"D.{k}": v
           for k, v in module_rng_states(model.discriminator).items()},
    }
    header = make_header(TRAIN_STATE_FORMAT, TRAIN_STATE_VERSION,
                         cursor=cursor.to_meta(), spec_sha=spec_sha)
    write_npz(path, arrays, header)


def load_train_state(path: str | Path, model: Pix2Pix,
                     spec_sha: str | None = None
                     ) -> tuple[TrainCursor, np.ndarray]:
    """Restore a checkpoint into ``model``; returns (cursor, loss sums).

    ``model`` must be freshly built from the same spec (same config,
    same seed); weight/optimizer/rng mismatches raise with the offending
    keys named.  When both sides carry a spec hash they must agree —
    resuming a run directory with an edited ``spec.json`` is an error,
    not a silent divergence.
    """
    arrays, header = read_npz(path, TRAIN_STATE_FORMAT, TRAIN_STATE_VERSION)
    saved_sha = header.get("spec_sha")
    if spec_sha and saved_sha and spec_sha != saved_sha:
        raise CheckpointError(
            f"{path} was written under a different spec "
            f"({saved_sha[:12]} vs {spec_sha[:12]}); refusing to resume "
            f"a run whose spec.json changed")
    split: dict[str, dict[str, np.ndarray]] = {p: {} for p in _PREFIXES}
    for name, value in arrays.items():
        for prefix in _PREFIXES:
            if name.startswith(prefix):
                split[prefix][name[len(prefix):]] = value
                break
    validate_state_dict(model.generator, split["G."],
                        context=f"generator from {path}")
    validate_state_dict(model.discriminator, split["D."],
                        context=f"discriminator from {path}")
    model.generator.load_state_dict(split["G."])
    model.discriminator.load_state_dict(split["D."])
    load_optimizer_state_dict(model.opt_g, split["optG."])
    load_optimizer_state_dict(model.opt_d, split["optD."])

    cursor = TrainCursor.from_meta(header["cursor"])
    rng_states = cursor.rng_states
    restore_module_rng_states(
        model.generator,
        {k[2:]: v for k, v in rng_states.items() if k.startswith("G.")})
    restore_module_rng_states(
        model.discriminator,
        {k[2:]: v for k, v in rng_states.items() if k.startswith("D.")})
    return cursor, arrays["loss_sums"]
