"""repro.train — run orchestration for the training lifecycle.

* :mod:`repro.train.spec`   — :class:`TrainSpec`, the JSON-round-trip run
  manifest (scale + dataset ref + model knobs + phases + cadences).
* :mod:`repro.train.loop`   — the epoch/step engine
  (:class:`TrainLoop`) and its batch sources; ``Pix2PixTrainer``
  delegates here.
* :mod:`repro.train.runner` — :class:`Runner`: run directories, exact
  resume, eval hooks, checkpoint publishing.
* :mod:`repro.train.checkpoint` — full train-state capture (weights +
  Adam moments + BN stats + rng streams + cursor).
* :mod:`repro.train.sweep`  — fan specs across worker processes with
  deterministic per-run seeds.
* :mod:`repro.train.status` — stdlib-only run-directory progress
  reading (``repro train status`` imports nothing numpy-heavy).

Heavy submodules load lazily: ``import repro.train.status`` (or the CLI
status command) pulls in no numpy.
"""

from __future__ import annotations

_LAZY = {
    "TrainSpec": ("repro.train.spec", "TrainSpec"),
    "describe_scale": ("repro.train.spec", "describe_scale"),
    "FinetuneSpec": ("repro.train.spec", "FinetuneSpec"),
    "EvalSpec": ("repro.train.spec", "EvalSpec"),
    "TrainLoop": ("repro.train.loop", "TrainLoop"),
    "TrainHistory": ("repro.train.loop", "TrainHistory"),
    "BatchSource": ("repro.train.loop", "BatchSource"),
    "LoaderSource": ("repro.train.loop", "LoaderSource"),
    "ShuffledDatasetSource": ("repro.train.loop", "ShuffledDatasetSource"),
    "StopTraining": ("repro.train.loop", "StopTraining"),
    "Runner": ("repro.train.runner", "Runner"),
    "RunResult": ("repro.train.runner", "RunResult"),
    "TrainCursor": ("repro.train.checkpoint", "TrainCursor"),
    "save_train_state": ("repro.train.checkpoint", "save_train_state"),
    "load_train_state": ("repro.train.checkpoint", "load_train_state"),
    "run_sweep": ("repro.train.sweep", "run_sweep"),
    "prepare_specs": ("repro.train.sweep", "prepare_specs"),
    "load_sweep_file": ("repro.train.sweep", "load_sweep_file"),
    "read_run_status": ("repro.train.status", "read_run_status"),
    "format_run_status": ("repro.train.status", "format_run_status"),
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.train' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
