"""Run orchestration: specs in, self-describing run directories out.

A :class:`Runner` executes a :class:`~repro.train.spec.TrainSpec` as a
sequence of phases (scratch training, then the optional strategy-2
fine-tune), pulling batches through :class:`~repro.train.loop.TrainLoop`
and persisting the full lifecycle into a **run directory**:

.. code-block:: text

    <run>/
      spec.json          # the manifest this run re-materializes from
      status.json        # mutable progress (epoch, losses, best, timing)
      losses.jsonl       # one line per optimizer step + per epoch fold
      evals.jsonl        # eval-hook metric passes
      telemetry.jsonl    # timing events (steps, epochs, evals, ckpts)
      trace.jsonl        # spans, only when tracing is enabled
      checkpoints/       # exact-resume train states + latest.json
      export/            # finished checkpoints in the serve registry
                         # format (Pix2Pix.save .npz)

Checkpoints capture weights, BatchNorm running stats, flat-Adam moments
and step counts, dropout rng streams, the sample-order state, and the
loader cursor — so ``Runner.resume(run_dir).run()`` continues a killed
run **bitwise-identically**: final weights and ``losses.jsonl`` match an
uninterrupted run byte for byte.  Timing and other non-deterministic
facts live only in ``status.json`` and ``telemetry.jsonl``, never in the
compared artifacts; telemetry is append-only and observational (it is
neither truncated on resume nor consulted by any training decision), so
running with it on or off produces byte-identical model artifacts.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.gan.dataset import Dataset, from_unit_range
from repro.gan.pix2pix import Pix2Pix, Pix2PixConfig
from repro.train.checkpoint import (
    TrainCursor,
    load_train_state,
    save_train_state,
)
from repro.train.loop import (
    BatchSource,
    EpochStats,
    LoaderSource,
    ShuffledDatasetSource,
    StopTraining,
    TrainHistory,
    TrainLoop,
)
from repro.train.spec import TrainSpec

from repro.obs.trace import Tracer, get_tracer, set_tracer

# Artifact names shared with the stdlib-only status reader live there —
# one definition, and this import direction keeps status numpy-free.
from repro.train.status import (
    EVALS_NAME,
    LOSSES_NAME,
    SPEC_NAME,
    STATUS_NAME,
    TELEMETRY_NAME,
)

CHECKPOINT_DIR = "checkpoints"
EXPORT_DIR = "export"
LATEST_NAME = "latest.json"


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


def _json_line(document: dict) -> str:
    """One deterministic JSONL line (sorted keys, shortest-repr floats)."""
    return json.dumps(document, sort_keys=True) + "\n"


@dataclass
class PhasePlan:
    """One phase of a run: a source, an epoch budget, an lr damping."""

    name: str
    source: BatchSource
    epochs: int
    lr_scale: float = 1.0


@dataclass
class RunResult:
    """What one ``Runner.run()`` invocation did."""

    status: str                        # "completed" | "interrupted"
    run_dir: Path | None
    global_step: int
    histories: dict[str, TrainHistory] = field(default_factory=dict)
    evals: list[dict] = field(default_factory=list)
    best_value: float | None = None
    best_epoch: int | None = None
    exported: list[Path] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return self.status == "completed"


class Runner:
    """Execute (and resume) one training run."""

    def __init__(self, spec: TrainSpec, run_dir: str | Path | None = None, *,
                 dataset: Dataset | None = None,
                 finetune_dataset: Dataset | None = None,
                 eval_dataset: Dataset | None = None,
                 log=None, telemetry: bool = True, trace: bool = False,
                 tracer: Tracer | None = None, metrics=None,
                 _fresh: bool = True):
        self.spec = spec
        self.scale = spec.resolve_scale()
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.log = log
        self._store = None
        # Telemetry: timing events into <run>/telemetry.jsonl.  Purely
        # observational — nothing the training path reads back.
        self._telemetry = telemetry and self.run_dir is not None
        # Fleet metrics: a repro.obs.MetricsRegistry to count progress
        # into (sweep workers publish it cross-process).  Observational
        # only — nothing the training path reads back.
        self.metrics = metrics
        if metrics is not None:
            self._m_steps = metrics.counter(
                "train_steps_total", "Optimizer steps taken.")
            self._m_examples = metrics.counter(
                "train_examples_total", "Training examples consumed.")
            self._m_epochs = metrics.counter(
                "train_epochs_total", "Epochs folded.")
            self._m_evals = metrics.counter(
                "train_evals_total", "Eval passes run.")
            self._m_steps_per_sec = metrics.gauge(
                "train_steps_per_sec",
                "Steps per second over the last folded epoch.",
                agg="sum")
        self._step_started: float | None = None
        self._epoch_steps = 0
        self._epoch_step_ms = 0.0
        train_data, finetune_data, eval_data = self._resolve_datasets(
            dataset, finetune_dataset, eval_dataset)
        self.eval_dataset = eval_data
        self.model = Pix2Pix(self._model_config(train_data))
        self._base_lr = self.model.config.learning_rate
        self.phases = self._build_phases(train_data, finetune_data)
        self.cursor = TrainCursor()
        self._loss_sums = np.zeros(4)
        self._evals: list[dict] = []
        self._reference = None
        self._elapsed = 0.0
        self._run_started = 0.0
        self._resumed = False
        self._handles: dict[str, object] = {}
        self._spec_sha_cached: str | None = None
        if self.run_dir is not None:
            self._init_run_dir(fresh=_fresh)
        # Spans: an explicit tracer wins; ``trace=True`` opens
        # <run>/trace.jsonl (after _init_run_dir so a restart's unlink
        # doesn't orphan the handle); otherwise the process default,
        # which is a no-op unless REPRO_TRACE is set.
        if tracer is not None:
            self.tracer = tracer
        elif trace and self.run_dir is not None:
            self.tracer = Tracer(self.run_dir / "trace.jsonl",
                                 flush_every=64)
        else:
            self.tracer = get_tracer()

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, spec: TrainSpec, root: str | Path, **kwargs) -> "Runner":
        """Start a fresh run at ``<root>/<spec.name>``.

        Refuses a directory that already holds a run manifest — resume
        those with :meth:`resume` instead of silently restarting them.
        """
        run_dir = Path(root) / spec.name
        if (run_dir / SPEC_NAME).exists():
            raise FileExistsError(
                f"{run_dir} already holds a run (spec.json exists); "
                f"use resume, or pick a different name")
        return cls(spec, run_dir, **kwargs)

    @classmethod
    def resume(cls, run_dir: str | Path, **kwargs) -> "Runner":
        """Reopen a run directory and restore its latest checkpoint."""
        run_dir = Path(run_dir)
        spec_path = run_dir / SPEC_NAME
        if not spec_path.exists():
            raise FileNotFoundError(f"{run_dir} is not a run directory "
                                    f"(no {SPEC_NAME})")
        spec = TrainSpec.load(spec_path)
        runner = cls(spec, run_dir, _fresh=False, **kwargs)
        runner._restore_latest()
        return runner

    def _spec_sha(self) -> str:
        if self._spec_sha_cached is None:
            self._spec_sha_cached = hashlib.sha256(
                self.spec.to_json().encode()).hexdigest()
        return self._spec_sha_cached

    def _model_config(self, train_data) -> Pix2PixConfig:
        if train_data is not None:
            image_size = int(train_data[0].x.shape[-1])
        else:
            image_size = int(self._store.image_size)
        return Pix2PixConfig.from_scale(
            self.scale, image_size=image_size, seed=self.spec.seed,
            **self.spec.model)

    def _resolve_datasets(self, dataset, finetune_dataset, eval_dataset):
        """(train, finetune, eval) datasets per the spec's data ref.

        A ``store:`` run whose spec needs no in-memory *training* split
        (stream order, no holdout, no fine-tune) stays fully streaming:
        the train dataset is ``None`` and batches come straight off the
        :class:`StreamingLoader`.  An eval hook never changes that —
        the training trajectory must be invariant under adding an
        observation-only hook — and never changes peak memory either:
        with no ``eval_dataset`` the hook streams the store's shards
        through :func:`repro.data.loader.iter_eval_batches`.
        """
        spec = self.spec
        if spec.data_kind == "inline":
            if dataset is None:
                raise ValueError("spec.data is 'inline': pass the training "
                                 "dataset to the Runner")
            full = dataset
        elif spec.data_kind == "archive":
            full = Dataset.load(spec.data_path)
        else:   # store
            from repro.data.store import ShardedStore

            self._store = ShardedStore.open(spec.data_path)
            needs_memory_train = (
                spec.order == "shuffle"
                or spec.holdout_design is not None
                or spec.finetune is not None)
            if not needs_memory_train:
                # eval_dataset None: _eval_pass streams off the store.
                return None, None, eval_dataset
            full = self._store.to_dataset()

        holdout = None
        if spec.holdout_design is not None:
            train, holdout = full.leave_one_out(spec.holdout_design)
        else:
            train = full
        if not train:
            raise ValueError("training split selected no samples")

        finetune = finetune_dataset
        eval_data = eval_dataset
        if spec.finetune is not None and finetune is None:
            design = spec.finetune_design()
            pool = (holdout if design == spec.holdout_design
                    and holdout is not None else full.of_design(design))
            if len(pool) < spec.finetune.pairs:
                raise ValueError(
                    f"finetune needs {spec.finetune.pairs} pairs of "
                    f"{design!r}, the dataset has {len(pool)}")
            finetune = pool[:spec.finetune.pairs]
            if eval_data is None:
                rest = pool[spec.finetune.pairs:]
                eval_data = rest if len(rest) else pool
        if eval_data is None:
            eval_data = holdout if holdout is not None else train
        return train, finetune, eval_data

    def _build_phases(self, train_data, finetune_data) -> list[PhasePlan]:
        spec = self.spec
        if spec.order == "shuffle":
            # One persistent rng shared by every phase, exactly like the
            # historical trainer sharing its rng across fit + fine_tune.
            order_rng = np.random.default_rng(spec.seed)
            train_source: BatchSource = ShuffledDatasetSource(
                train_data, order_rng)

            def finetune_source(ds: Dataset) -> BatchSource:
                return ShuffledDatasetSource(ds, order_rng)
        else:
            from repro.data.loader import MemoryLoader, StreamingLoader

            if train_data is None:
                train_source = LoaderSource(StreamingLoader(
                    self._store, batch_size=spec.batch_size,
                    seed=spec.seed, shuffle=True, augment=spec.augment))
            else:
                train_source = LoaderSource(MemoryLoader(
                    train_data, shard_size=spec.shard_size,
                    batch_size=spec.batch_size, seed=spec.seed,
                    shuffle=True, augment=spec.augment))

            def finetune_source(ds: Dataset) -> BatchSource:
                return LoaderSource(MemoryLoader(
                    ds, shard_size=spec.shard_size,
                    batch_size=spec.batch_size, seed=spec.seed,
                    shuffle=True, augment=spec.augment))
        phases = [PhasePlan("train", train_source, spec.total_epochs)]
        if spec.finetune is not None:
            phases.append(PhasePlan("finetune",
                                    finetune_source(finetune_data),
                                    spec.finetune.epochs,
                                    lr_scale=spec.finetune.lr_scale))
        return phases

    # -- run directory -------------------------------------------------------

    def _path(self, name: str) -> Path:
        assert self.run_dir is not None
        return self.run_dir / name

    def _init_run_dir(self, fresh: bool = True) -> None:
        self.run_dir.mkdir(parents=True, exist_ok=True)
        (self.run_dir / CHECKPOINT_DIR).mkdir(exist_ok=True)
        (self.run_dir / EXPORT_DIR).mkdir(exist_ok=True)
        spec_path = self._path(SPEC_NAME)
        if fresh:
            # A fresh Runner over an existing directory *restarts* the
            # run: stale logs, checkpoints, and exports from the prior
            # occupant would otherwise interleave with (or outlive) the
            # new run's artifacts.  Resuming goes through resume(),
            # which preserves everything and restores the cursor.
            self._truncate_jsonl(LOSSES_NAME, 0)
            self._truncate_jsonl(EVALS_NAME, 0)
            # Observational logs restart with the run too — a restarted
            # run's timeline must not interleave with its predecessor's.
            for stale_log in (TELEMETRY_NAME, "trace.jsonl"):
                stale_path = self._path(stale_log)
                if stale_path.exists():
                    stale_path.unlink()
            for directory in (CHECKPOINT_DIR, EXPORT_DIR):
                for stale in (self.run_dir / directory).iterdir():
                    stale.unlink()
            status_path = self._path(STATUS_NAME)
            if status_path.exists():
                status_path.unlink()
            _atomic_write_text(spec_path, self.spec.to_json())
        elif not spec_path.exists():
            _atomic_write_text(spec_path, self.spec.to_json())

    def _restore_latest(self) -> None:
        latest_path = self._path(CHECKPOINT_DIR) / LATEST_NAME
        if not latest_path.exists():
            # Nothing checkpointed yet: rerun from scratch, dropping any
            # partial logs the dead run left behind.
            self._truncate_jsonl(LOSSES_NAME, 0)
            self._truncate_jsonl(EVALS_NAME, 0)
            return
        latest = json.loads(latest_path.read_text())
        ckpt = self._path(CHECKPOINT_DIR) / latest["file"]
        self.cursor, self._loss_sums = load_train_state(
            ckpt, self.model, spec_sha=self._spec_sha())
        self._truncate_jsonl(LOSSES_NAME, self.cursor.loss_lines)
        self._truncate_jsonl(EVALS_NAME, self.cursor.eval_lines)
        self._evals = self._read_jsonl(EVALS_NAME)
        self._elapsed = float(self._read_status().get("elapsed_seconds",
                                                      0.0))
        if self.cursor.order_state is not None and \
                self.cursor.phase < len(self.phases):
            self.phases[self.cursor.phase].source.restore_order_state(
                self.cursor.order_state)
        self._resumed = True

    def _truncate_jsonl(self, name: str, lines: int) -> None:
        path = self._path(name)
        if not path.exists():
            if lines:
                raise FileNotFoundError(
                    f"{path} is missing but the checkpoint expects "
                    f"{lines} lines")
            return
        kept = path.read_text().splitlines(keepends=True)[:lines]
        _atomic_write_text(path, "".join(kept))

    def _read_jsonl(self, name: str) -> list[dict]:
        path = self._path(name)
        if not path.exists():
            return []
        return [json.loads(line)
                for line in path.read_text().splitlines() if line]

    def _read_status(self) -> dict:
        path = self._path(STATUS_NAME)
        if not path.exists():
            return {}
        return json.loads(path.read_text())

    def _elapsed_now(self) -> float:
        return self._elapsed + (time.perf_counter() - self._run_started)

    def _write_status(self, state: str, phase: PhasePlan | None = None,
                      epoch: int | None = None,
                      averages=None, count: int | None = None) -> None:
        if self.run_dir is None:
            return
        document = {
            "name": self.spec.name,
            "state": state,
            "phases": [{"name": p.name, "epochs": p.epochs}
                       for p in self.phases],
            "phase": (phase.name if phase is not None else None),
            "epoch": epoch,
            "global_step": self.cursor.global_step,
            "elapsed_seconds": round(self._elapsed_now(), 3),
            "best": ({"metric": self.spec.eval.track,
                      "value": self.cursor.best_value,
                      "epoch": self.cursor.best_epoch}
                     if self.spec.eval is not None else None),
        }
        if averages is not None:
            document["last_losses"] = {
                "g_total": float(averages[0]), "g_gan": float(averages[1]),
                "g_l1": float(averages[2]), "d_total": float(averages[3]),
                "samples": count,
            }
        else:
            document["last_losses"] = self._read_status().get("last_losses")
        _atomic_write_text(self._path(STATUS_NAME),
                           json.dumps(document, indent=1, sort_keys=True)
                           + "\n")

    # -- logging -------------------------------------------------------------

    def _append_line(self, name: str, document: dict,
                     flush: bool = True) -> None:
        """Append one line, through a handle held open across the run.

        The handle is opened lazily on first append (after any resume
        truncation) and flushed per line, so a killed process loses at
        most the unflushed tail — which resume truncates to the last
        checkpoint's line count anyway.  Telemetry passes ``flush=False``
        on per-step events (losing a tail of timing lines is harmless)
        and flushes on epoch folds.
        """
        if self.run_dir is None:
            return
        handle = self._handles.get(name)
        if handle is None:
            handle = open(self._path(name), "a")
            self._handles[name] = handle
        handle.write(_json_line(document))
        if flush:
            handle.flush()

    def _note(self, document: dict, flush: bool = False) -> None:
        """One telemetry event (no-op when telemetry is disabled)."""
        if self._telemetry:
            self._append_line(TELEMETRY_NAME, document, flush=flush)

    def _close_handles(self) -> None:
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()

    # -- checkpoints ---------------------------------------------------------

    def _checkpoint(self) -> Path | None:
        if self.run_dir is None:
            return None
        started = time.perf_counter()
        directory = self._path(CHECKPOINT_DIR)
        path = directory / f"step_{self.cursor.global_step:08d}.npz"
        with self.tracer.span("train.checkpoint",
                              step=self.cursor.global_step):
            save_train_state(path, self.model, self.cursor, self._loss_sums,
                             spec_sha=self._spec_sha())
            _atomic_write_text(
                directory / LATEST_NAME,
                json.dumps({"file": path.name,
                            "global_step": self.cursor.global_step}) + "\n")
            self._prune_checkpoints(directory, keep=path.name)
        self._note({"event": "checkpoint",
                    "global_step": self.cursor.global_step,
                    "ms": (time.perf_counter() - started) * 1e3},
                   flush=True)
        return path

    def _prune_checkpoints(self, directory: Path, keep: str) -> None:
        files = sorted(directory.glob("step_*.npz"))
        excess = len(files) - self.spec.keep_checkpoints
        for path in files[:max(0, excess)]:
            if path.name != keep:
                path.unlink()

    # -- eval hook -----------------------------------------------------------

    def _eval_batches(self, batch_size: int):
        """Eval-order ``(x, y)`` batches: the eval dataset, or — for a
        fully streaming store run — the store itself, shard by shard."""
        if self.eval_dataset is not None:
            samples = list(self.eval_dataset)
            for start in range(0, len(samples), batch_size):
                chunk = samples[start:start + batch_size]
                yield (np.stack([sample.x for sample in chunk]),
                       np.stack([sample.y for sample in chunk]))
        else:
            from repro.data.loader import iter_eval_batches

            for x, y, _ in iter_eval_batches(self._store,
                                             batch_size=batch_size):
                yield x, y

    def _eval_pass(self, phase: PhasePlan, epoch: int) -> dict:
        from repro.eval.metrics import (
            aggregate,
            compute_per_sample,
            metric_suite,
        )

        from repro.obs.drift import ReferenceProfile, hotspot_scores

        spec_eval = self.spec.eval
        suite = metric_suite()
        count = 0
        parts: dict[str, list[np.ndarray]] = {name: [] for name in suite}
        scores: list[float] = []
        for x, y in self._eval_batches(spec_eval.batch_size):
            images = self.model.forecast(x)
            scores.extend(hotspot_scores(images))
            pred = np.moveaxis(images, -1, 1)
            target = from_unit_range(y)
            for name, values in compute_per_sample(pred, target,
                                                   suite).items():
                parts[name].append(values)
            count += x.shape[0]
        metrics = aggregate({name: np.concatenate(chunks)
                             for name, chunks in parts.items()})
        record = {"phase": phase.name, "epoch": epoch,
                  "num_samples": count, "metrics": metrics}
        # The drift reference: the distribution of hotspot scores this
        # model produces on held-out data.  Serve-side monitors compare
        # live traffic against it (repro.obs.drift).  Deterministic —
        # derived from the same forecasts the metrics above scored.
        self._reference = ReferenceProfile.from_scores(
            scores, meta={"name": self.spec.name, "phase": phase.name,
                          "epoch": epoch, "num_samples": count})
        if self.run_dir is not None:
            self._reference.save(self._path("reference.json"))
        if self.metrics is not None:
            self._m_evals.inc()
        tracked = metrics.get(spec_eval.track)
        if tracked is not None:
            better = (self.cursor.best_value is None
                      or (tracked < self.cursor.best_value
                          if spec_eval.mode == "min"
                          else tracked > self.cursor.best_value))
            if better:
                self.cursor.best_value = tracked
                self.cursor.best_epoch = epoch
                record["best"] = True
                if self.run_dir is not None and self.spec.publish:
                    self.model.save(self._path(EXPORT_DIR)
                                    / f"{self.spec.name}-best.npz")
                    self._reference.save(
                        self._path(EXPORT_DIR)
                        / f"{self.spec.name}-best-reference.json")
        return record

    # -- the run -------------------------------------------------------------

    def run(self, stop_after_steps: int | None = None,
            log_every: int | None = None, on_phase=None) -> RunResult:
        """Execute remaining phases; returns what this invocation did.

        ``stop_after_steps`` halts the run once ``global_step`` reaches
        that (absolute) count: the runner writes an exact-resume
        checkpoint at that step and returns ``status="interrupted"`` —
        the programmatic stand-in for a mid-run kill, used by the resume
        tests and the CI train-smoke job.  Histories cover only epochs
        completed by *this* invocation.

        ``on_phase(name, model)`` fires after each phase this invocation
        completes — the strategy experiments measure Acc.1 there,
        between scratch training and the fine-tune phase (inference
        only: a hook must not mutate training state).
        """
        if not self.tracer.enabled:
            return self._run(stop_after_steps, log_every, on_phase)
        # While this run is active, its tracer doubles as the process
        # default, so subsystems that trace via get_tracer() — the data
        # loader and store, the eval runner — land their spans in the
        # same trace.jsonl as the train.* spans.
        previous = set_tracer(self.tracer)
        try:
            return self._run(stop_after_steps, log_every, on_phase)
        finally:
            set_tracer(previous)

    def _run(self, stop_after_steps: int | None,
             log_every: int | None, on_phase) -> RunResult:
        if self.spec.threads != 1:
            # Widen the gemm pool for the conv hot paths; any width
            # computes bitwise the same run (see repro.nn.parallel).
            from repro.nn import set_num_threads

            set_num_threads(self.spec.threads)
        result = RunResult(status="completed", run_dir=self.run_dir,
                           global_step=self.cursor.global_step)
        if (stop_after_steps is not None
                and self.cursor.global_step >= stop_after_steps):
            result.status = "interrupted"
            return self._finish(result, None)
        self._run_started = time.perf_counter()
        active: PhasePlan | None = None
        # An in-process continuation (run() again after StopTraining on
        # this same Runner) must rewind the sample-order rng to the state
        # the cursor was checkpointed with, exactly like a disk resume —
        # the live rng has already consumed the interrupted epoch's draw.
        initial_phase = self.cursor.phase
        initial_order_state = self.cursor.order_state
        try:
            for index in range(self.cursor.phase, len(self.phases)):
                phase = self.phases[index]
                active = phase
                self.cursor.phase = index
                if index == initial_phase and initial_order_state is not None:
                    phase.source.restore_order_state(initial_order_state)
                self.model.opt_g.lr = self._base_lr * phase.lr_scale
                self.model.opt_d.lr = self._base_lr * phase.lr_scale
                start_epoch = self.cursor.epoch
                start_step = self.cursor.step
                if start_epoch >= phase.epochs:
                    self._advance_phase()
                    continue
                if self.log is not None:
                    self.log(f"{self.spec.name}: phase {phase.name} "
                             f"({phase.epochs} epoch(s), "
                             f"{phase.source.num_samples} samples)")
                self._write_status("running", phase, start_epoch)
                self._step_started = time.perf_counter()
                self._epoch_steps = 0
                self._epoch_step_ms = 0.0
                loop = TrainLoop(
                    self.model,
                    on_step=self._make_step_hook(phase, stop_after_steps),
                    on_epoch=self._make_epoch_hook(phase))
                history = loop.run(
                    phase.source, phase.epochs,
                    start_epoch=start_epoch, start_step=start_step,
                    start_stats=EpochStats(sums=self._loss_sums,
                                           count=self.cursor.loss_count),
                    log_every=log_every, log_samples=True)
                result.histories[phase.name] = history
                self._advance_phase()
                if on_phase is not None:
                    on_phase(phase.name, self.model)
        except StopTraining:
            result.status = "interrupted"
            self._elapsed = self._elapsed_now()
            self._write_status("interrupted", active, self.cursor.epoch)
            return self._finish(result, active)

        self._elapsed = self._elapsed_now()
        # Leave the optimizers at the base rate, exactly as the
        # trainer's fine_tune always restored it.
        self.model.opt_g.lr = self._base_lr
        self.model.opt_d.lr = self._base_lr
        self._checkpoint()
        if self.spec.publish and self.run_dir is not None:
            export = self._path(EXPORT_DIR) / f"{self.spec.name}.npz"
            self.model.save(export)
            result.exported.append(export)
            if self._reference is not None:
                # Sits next to the .npz so `repro serve` can auto-load
                # the drift reference for the model it registers.
                self._reference.save(self._path(EXPORT_DIR)
                                     / f"{self.spec.name}-reference.json")
            best = self._path(EXPORT_DIR) / f"{self.spec.name}-best.npz"
            if best.exists():
                result.exported.append(best)
        self._write_status("completed", active,
                           active.epochs if active is not None else None)
        return self._finish(result, active)

    def _finish(self, result: RunResult,
                active: PhasePlan | None) -> RunResult:
        self._close_handles()
        self.tracer.flush()
        result.global_step = self.cursor.global_step
        result.evals = list(self._evals)
        result.best_value = self.cursor.best_value
        result.best_epoch = self.cursor.best_epoch
        return result

    def _advance_phase(self) -> None:
        self.cursor.phase += 1
        self.cursor.epoch = 0
        self.cursor.step = 0
        self.cursor.loss_count = 0
        self._loss_sums = np.zeros(4)

    def _make_step_hook(self, phase: PhasePlan,
                        stop_after_steps: int | None):
        spec = self.spec

        def on_step(epoch: int, step: int, losses, weight: int,
                    stats: EpochStats) -> None:
            cursor = self.cursor
            cursor.epoch = epoch
            cursor.step = step
            cursor.global_step += 1
            cursor.loss_count = stats.count
            self._loss_sums = stats.sums
            # Step wall time: batch fetch + train_step, measured as the
            # interval since the previous hook fired (or the epoch
            # boundary) on the same monotonic clock the loop uses.
            now = time.perf_counter()
            step_start = self._step_started
            if step_start is not None:
                step_ms = (now - step_start) * 1e3
                self._epoch_steps += 1
                self._epoch_step_ms += step_ms
                self._note({"event": "step", "phase": phase.name,
                            "epoch": epoch, "step": step, "ms": step_ms})
                if self.tracer.enabled:
                    start_ns = int(step_start * 1e9)
                    self.tracer.complete(
                        "train.step", start_ns,
                        int(now * 1e9) - start_ns,
                        phase=phase.name, epoch=epoch, step=step)
            self._step_started = now
            if self.metrics is not None:
                self._m_steps.inc()
                self._m_examples.inc(weight)
            self._append_line(LOSSES_NAME, {
                "phase": phase.name, "epoch": epoch, "step": step,
                "samples": weight,
                "g_total": float(losses.g_total),
                "g_gan": float(losses.g_gan),
                "g_l1": float(losses.g_l1),
                "d_total": float(losses.d_total),
                "d_real": float(losses.d_real),
                "d_fake": float(losses.d_fake),
            })
            cursor.loss_lines += 1
            stopping = (stop_after_steps is not None
                        and cursor.global_step >= stop_after_steps)
            if stopping or (spec.checkpoint_every_steps
                            and cursor.global_step
                            % spec.checkpoint_every_steps == 0):
                cursor.order_state = phase.source.order_state()
                self._checkpoint()
            if stopping:
                raise StopTraining
        return on_step

    def _make_epoch_hook(self, phase: PhasePlan):
        spec = self.spec

        def on_epoch(epoch: int, averages, count: int,
                     seconds: float) -> None:
            cursor = self.cursor
            self._append_line(LOSSES_NAME, {
                "phase": phase.name, "epoch": epoch, "event": "epoch",
                "samples": count,
                "g_total": float(averages[0]), "g_gan": float(averages[1]),
                "g_l1": float(averages[2]), "d_total": float(averages[3]),
            })
            cursor.loss_lines += 1
            epoch_steps = self._epoch_steps
            self._note({
                "event": "epoch", "phase": phase.name, "epoch": epoch,
                "steps": epoch_steps, "samples": count, "seconds": seconds,
                "steps_per_sec": (epoch_steps / seconds if seconds > 0
                                  else None),
                "mean_step_ms": (self._epoch_step_ms / epoch_steps
                                 if epoch_steps else None),
            }, flush=True)
            if self.tracer.enabled:
                dur_ns = int(seconds * 1e9)
                self.tracer.complete(
                    "train.epoch", time.perf_counter_ns() - dur_ns, dur_ns,
                    phase=phase.name, epoch=epoch, steps=epoch_steps)
            if self.metrics is not None:
                self._m_epochs.inc()
                self._m_steps_per_sec.set(
                    epoch_steps / seconds if seconds > 0 else 0.0)
            self._epoch_steps = 0
            self._epoch_step_ms = 0.0
            # The epoch is folded: position the cursor at the next
            # epoch's start before any eval/checkpoint captures it.
            cursor.epoch = epoch + 1
            cursor.step = 0
            cursor.loss_count = 0
            self._loss_sums = np.zeros(4)
            phase.source.clear_epoch_snapshot()
            if (spec.eval is not None
                    and (epoch + 1) % spec.eval.every_epochs == 0):
                eval_started = time.perf_counter()
                with self.tracer.span("train.eval", phase=phase.name,
                                      epoch=epoch):
                    record = self._eval_pass(phase, epoch)
                self._evals.append(record)
                self._append_line(EVALS_NAME, record)
                cursor.eval_lines += 1
                self._note({"event": "eval", "phase": phase.name,
                            "epoch": epoch,
                            "num_samples": record["num_samples"],
                            "ms": (time.perf_counter() - eval_started)
                            * 1e3}, flush=True)
            # The final phase's last epoch is covered by the run-end
            # checkpoint; forcing one here would write the state twice.
            last_epoch = (epoch + 1 == phase.epochs
                          and phase is not self.phases[-1])
            if last_epoch or (epoch + 1) % spec.checkpoint_every_epochs == 0:
                cursor.order_state = phase.source.order_state()
                self._checkpoint()
            self._write_status("running", phase, epoch + 1, averages, count)
            # Next epoch's first step is measured from here — epoch-end
            # bookkeeping (eval, checkpoint, status) is its own timing.
            self._step_started = time.perf_counter()
        return on_epoch
