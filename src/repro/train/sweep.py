"""Sweep driver: fan N train specs across worker processes.

A sweep is a list of :class:`~repro.train.spec.TrainSpec` documents run
under one root directory, one run directory each.  Seeds are
deterministic: a spec that does not pin ``seed`` explicitly gets one
derived from ``(base_seed, run index)`` through ``SeedSequence``, so the
same sweep file always produces the same per-run seeds — and therefore
the same runs — regardless of worker count or completion order.

The sweep file is JSON: either a plain list of spec documents, or
``{"base": {...}, "runs": [{...}, ...]}`` where each run entry overlays
the base document (handy for grids that vary one or two knobs).

Each worker publishes a live telemetry snapshot (steps, examples,
epochs, eval passes) into ``<root>/telemetry/<role>-<run>.json`` via
:class:`repro.obs.publish.TelemetryPublisher` — ``repro obs top <root>``
watches a running sweep through those files, and the final merged
totals are summarized into ``<root>/sweep.json`` under ``"telemetry"``.
Publishing is observational: run artifacts are byte-identical with it
on or off.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.obs.aggregate import aggregate_dir
from repro.obs.metrics import MetricsRegistry
from repro.obs.publish import TELEMETRY_DIR, TelemetryPublisher
from repro.obs.timeseries import flatten_export
from repro.train.runner import Runner
from repro.train.spec import TrainSpec

SUMMARY_NAME = "sweep.json"


def derive_seed(base_seed: int, index: int) -> int:
    """The deterministic seed for run ``index`` of a sweep."""
    return int(np.random.SeedSequence((base_seed, index))
               .generate_state(1)[0])


def load_sweep_file(path: str | Path) -> list[dict]:
    """Spec documents from a sweep file (list, or base + runs overlays)."""
    document = json.loads(Path(path).read_text())
    if isinstance(document, list):
        entries = document
    elif isinstance(document, dict) and "runs" in document:
        base = document.get("base", {})
        entries = [{**base, **run} for run in document["runs"]]
    else:
        raise ValueError(
            f"{path}: expected a JSON list of specs or an object with "
            f"'runs' (and optional 'base')")
    if not entries:
        raise ValueError(f"{path}: sweep has no runs")
    return entries


def prepare_specs(entries: list[dict], base_seed: int = 0
                  ) -> list[TrainSpec]:
    """Validate spec documents and assign deterministic seeds.

    Entries that carry an explicit ``seed`` keep it; the rest get
    :func:`derive_seed`.  Duplicate run names are an error — every run
    needs its own directory.
    """
    specs = []
    for index, entry in enumerate(entries):
        entry = dict(entry)
        if "seed" not in entry:
            entry["seed"] = derive_seed(base_seed, index)
        specs.append(TrainSpec.from_dict(entry))
    names = [spec.name for spec in specs]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ValueError(f"duplicate run name(s) in sweep: "
                         f"{', '.join(duplicates)}")
    return specs


def _run_one(root: str, spec_dict: dict) -> dict:
    """Worker body: execute one spec; always returns a summary row."""
    import json as json_module

    spec = TrainSpec.from_dict(spec_dict)
    run_dir = Path(root) / spec.name
    try:
        if (run_dir / "spec.json").exists():
            # Re-running a sweep must not clobber finished work with
            # failure rows: report the existing run's recorded state
            # and leave its directory untouched (resume it explicitly
            # with `repro train resume` if it was interrupted).
            status_path = run_dir / "status.json"
            state = "unknown"
            if status_path.exists():
                state = json_module.loads(
                    status_path.read_text()).get("state", "unknown")
            return {
                "name": spec.name,
                "seed": spec.seed,
                "run_dir": str(run_dir),
                "status": "skipped",
                "existing_state": state,
            }
        metrics = MetricsRegistry()
        runner = Runner.create(spec, root, metrics=metrics)
        # Live fleet telemetry: this worker's registry lands in
        # <root>/telemetry/sweep-<name>.json every interval; stop()
        # leaves one final exact snapshot, so completed runs keep their
        # totals visible to `repro obs agg` after the sweep ends.
        publisher = TelemetryPublisher(
            metrics, Path(root) / TELEMETRY_DIR, role="sweep",
            worker=spec.name, interval=1.0)
        with publisher:
            result = runner.run()
        history = result.histories.get(
            "finetune", result.histories.get("train"))
        return {
            "name": spec.name,
            "seed": spec.seed,
            "run_dir": str(Path(root) / spec.name),
            "status": result.status,
            "global_step": result.global_step,
            "final_g_total": (history.g_total[-1]
                              if history and history.g_total else None),
            "best_value": result.best_value,
            "best_epoch": result.best_epoch,
        }
    except Exception as error:   # one failed run must not sink the sweep
        return {
            "name": spec.name,
            "seed": spec.seed,
            "run_dir": str(run_dir),
            "status": "failed",
            "error": f"{type(error).__name__}: {error}",
        }


#: Spool directory for a sweep's fleet jobs, under the sweep root.
JOBS_DIR = "jobs"


def _run_parallel(root: Path, spec_dicts: list[dict],
                  workers: int) -> list[dict]:
    """Fan the specs across a fleet worker pool; rows in submit order.

    Each spec becomes a ``train`` job in a file-backed spool under
    ``<root>/jobs``; N pool workers claim and execute them.  The spool
    doubles as the sweep's flight recorder — ``repro fleet status
    <root>/jobs`` shows progress, and ``repro obs top <root>`` sees the
    pool workers' telemetry alongside the runs'.
    """
    import shutil

    from repro.fleet.jobs import DONE, JobStore
    from repro.fleet.pool import WorkerPool

    spool = root / JOBS_DIR
    if spool.exists():
        # Stale spools hold finished job ids from earlier invocations;
        # run state lives in the run directories (and _run_one's skip
        # logic), so the spool itself is safe to rebuild.
        shutil.rmtree(spool)
    store = JobStore(spool)
    for document in spec_dicts:
        store.submit("train", {"root": str(root), "spec": document})
    WorkerPool(spool, workers=workers).run_until_drained()
    rows = []
    for job in store.jobs():          # sorted by submit order
        if job.state == DONE:
            rows.append(job.result)
        else:   # executor crashed outside _run_one's own try/except
            rows.append({
                "name": job.payload.get("spec", {}).get("name", job.job_id),
                "seed": job.payload.get("spec", {}).get("seed"),
                "run_dir": str(root / job.payload.get("spec", {})
                               .get("name", job.job_id)),
                "status": "failed",
                "error": (job.error or "job did not finish").strip()
                         .splitlines()[-1],
            })
    return rows


def run_sweep(specs: list[TrainSpec], root: str | Path,
              workers: int = 0, log=None) -> list[dict]:
    """Execute every spec under ``root``; returns per-run summary rows.

    ``workers <= 1`` runs serially in-process; more workers fan the
    specs through the fleet job spool (:func:`_run_parallel`).  Runs are
    independent (each owns its directory and derives nothing from the
    others), so the artifacts are identical for any worker count; only
    the summary order is normalized (sweep-file order).  The summary is
    also written to ``<root>/sweep.json``.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    spec_dicts = [spec.to_dict() for spec in specs]
    if workers and workers > 1:
        rows = _run_parallel(root, spec_dicts, workers)
    else:
        rows = [_run_one(str(root), document) for document in spec_dicts]
    if log is not None:
        for row in rows:   # one line per run, in sweep-file order
            if row["status"] == "failed":
                suffix = f"error: {row['error']}"
            elif row["status"] == "skipped":
                suffix = (f"already exists "
                          f"({row['existing_state']}); resume or remove")
            else:
                suffix = f"step {row['global_step']}"
            log(f"  {row['name']:<24} {row['status']:<12} {suffix}")
    summary_path = root / SUMMARY_NAME
    summary_path.write_text(
        json.dumps({"runs": rows, "telemetry": summarize_telemetry(root)},
                   indent=1, sort_keys=True) + "\n")
    return rows


def summarize_telemetry(root: str | Path) -> dict:
    """Merged worker-telemetry totals for a sweep root.

    Aggregates whatever snapshots the workers published (exact merge,
    see :mod:`repro.obs.aggregate`) into flat fleet totals plus the
    per-worker step counts — the sweep.json footprint of the fleet.
    Returns an empty document when no worker published.
    """
    fleet = aggregate_dir(root)
    if not fleet.snapshots:
        return {"workers": [], "totals": {}, "per_worker_steps": {}}
    totals = {
        name: value for name, value in flatten_export(fleet.merged).items()
        if not name.startswith("train_steps_per_sec")}
    per_worker = {}
    for doc in fleet.snapshots:
        flat = flatten_export(doc["families"])
        steps = flat.get("train_steps_total")
        if steps is not None:
            per_worker[doc.get("worker", "?")] = int(steps)
    return {"workers": fleet.workers, "totals": totals,
            "per_worker_steps": per_worker}
