"""Typed training-run manifests with JSON round-trip.

A :class:`TrainSpec` is everything a :class:`~repro.train.runner.Runner`
needs to execute (and re-execute) a run: the experiment scale, the
dataset reference, model/loss knobs, the sample-order policy, the
strategy-2 fine-tuning phase, eval-hook cadence, and checkpoint cadence.
Specs serialize to plain JSON — the run directory's ``spec.json`` is the
authoritative manifest a resume reconstructs the run from — and unknown
keys fail loudly so a typo'd spec never silently trains the wrong thing.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import ExperimentScale, custom_scale, get_scale

#: Sample-order policies.  ``stream`` uses the shard-aware loader plan
#: (pure function of seed+epoch); ``shuffle`` is the classic trainer
#: order (one persistent rng reshuffling every epoch, batch size 1).
ORDER_MODES = ("stream", "shuffle")


def describe_scale(scale: ExperimentScale) -> tuple[str, dict]:
    """``(preset name, overrides)`` capturing a scale object in spec form.

    Flows receive :class:`ExperimentScale` objects (often
    ``custom_scale`` derivatives); a spec stores the base preset's name
    plus whichever fields differ, so the JSON manifest re-materializes
    the exact scale.  Raises ``KeyError`` for a scale whose ``name`` is
    not a registered preset.
    """
    base = get_scale(scale.name)
    overrides = {
        f.name: getattr(scale, f.name)
        for f in dataclasses.fields(scale)
        if f.name != "name" and getattr(scale, f.name) != getattr(base,
                                                                  f.name)}
    return scale.name, overrides


def _dict_from(cls, data: dict, context: str):
    """Build a dataclass from a JSON dict, rejecting unknown keys."""
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown {context} field(s): {', '.join(unknown)} "
                         f"(known: {', '.join(sorted(known))})")
    try:
        return cls(**data)
    except TypeError as error:   # a missing required field, e.g. name
        raise ValueError(f"bad {context}: {error}") from None


@dataclass(frozen=True)
class FinetuneSpec:
    """Strategy-2 transfer phase: a few pairs of one design, damped lr."""

    epochs: int = 1
    pairs: int = 2                 # pairs taken from the finetune design
    design: str | None = None      # defaults to the run's holdout design
    lr_scale: float = 0.2          # same damping fit_tune has always used

    def validate(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"finetune epochs must be >= 1, "
                             f"got {self.epochs}")
        if self.pairs < 1:
            raise ValueError(f"finetune pairs must be >= 1, "
                             f"got {self.pairs}")
        if self.lr_scale <= 0:
            raise ValueError(f"finetune lr_scale must be positive, "
                             f"got {self.lr_scale}")


@dataclass(frozen=True)
class EvalSpec:
    """Eval-hook cadence: a metric pass every N epochs.

    The pass runs over the run's eval dataset — the held-out design when
    ``holdout_design`` is set (minus the strategy-2 pairs when
    fine-tuning), an explicit ``eval_dataset`` handed to the Runner, or,
    failing both, the training samples themselves (in-sample tracking;
    store-backed runs stream it one shard at a time).
    """

    every_epochs: int = 1
    batch_size: int = 16
    track: str = "nrms"            # best-checkpoint selection metric
    mode: str = "min"              # "min": lower tracked metric is better

    def validate(self) -> None:
        if self.every_epochs < 1:
            raise ValueError(f"eval every_epochs must be >= 1, "
                             f"got {self.every_epochs}")
        if self.batch_size < 1:
            raise ValueError(f"eval batch_size must be >= 1, "
                             f"got {self.batch_size}")
        if self.mode not in ("min", "max"):
            raise ValueError(f"eval mode must be 'min' or 'max', "
                             f"got {self.mode!r}")


@dataclass(frozen=True)
class TrainSpec:
    """One training run, fully described.

    ``data`` names the dataset: ``store:<dir>`` (sharded store),
    ``archive:<file>`` (legacy single-``.npz`` dataset), or ``inline``
    (datasets handed to the Runner in memory — flows use this; such specs
    round-trip but cannot be re-materialized from JSON alone).

    ``holdout_design`` excludes one design from the training set (the
    paper's strategy-1 leave-one-design-out split); the held-out samples
    become the eval-hook dataset and, when ``finetune`` is set, supply
    the strategy-2 pairs.
    """

    name: str
    data: str = "inline"
    scale: str = "default"
    seed: int = 0
    epochs: int | None = None          # None: the scale preset's epochs
    batch_size: int = 1
    order: str = "stream"
    augment: bool = False
    shard_size: int | None = None      # virtual shards for non-store data
    holdout_design: str | None = None
    model: dict = field(default_factory=dict)       # Pix2PixConfig overrides
    scale_overrides: dict = field(default_factory=dict)
    finetune: FinetuneSpec | None = None
    eval: EvalSpec | None = None
    checkpoint_every_steps: int = 0    # 0: checkpoint at epoch ends only
    checkpoint_every_epochs: int = 1
    keep_checkpoints: int = 3
    publish: bool = True               # export final model in serve format
    threads: int = 1                   # gemm pool width (1 = serial legacy
                                       # path; any N is bitwise identical)

    def __post_init__(self):
        if not self.name or "/" in self.name or self.name.startswith("."):
            raise ValueError(f"bad run name {self.name!r}: must be a "
                             f"non-empty plain directory name")
        if self.order not in ORDER_MODES:
            raise ValueError(f"order must be one of {ORDER_MODES}, "
                             f"got {self.order!r}")
        if self.order == "shuffle" and self.batch_size != 1:
            raise ValueError("order='shuffle' is the batch-size-1 legacy "
                             f"plan; got batch_size={self.batch_size}")
        if self.order == "shuffle" and self.augment:
            raise ValueError("order='shuffle' (the legacy plan) has no "
                             "augmentation path; use order='stream'")
        if self.order == "shuffle" and self.shard_size is not None:
            raise ValueError("shard_size only applies to order='stream'")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, "
                             f"got {self.batch_size}")
        if self.epochs is not None and self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.checkpoint_every_steps < 0:
            raise ValueError("checkpoint_every_steps must be >= 0")
        if self.checkpoint_every_epochs < 1:
            raise ValueError("checkpoint_every_epochs must be >= 1")
        if self.keep_checkpoints < 1:
            raise ValueError("keep_checkpoints must be >= 1")
        if not isinstance(self.threads, int) or isinstance(self.threads, bool) \
                or self.threads < 1:
            raise ValueError(f"threads must be an int >= 1, "
                             f"got {self.threads!r}")
        kind = self.data.partition(":")[0]
        if kind not in ("inline", "store", "archive"):
            raise ValueError(f"bad data ref {self.data!r}: expected "
                             f"'inline', 'store:<dir>', or "
                             f"'archive:<file>'")
        if self.finetune is not None:
            self.finetune.validate()
            if self.finetune.design is None and self.holdout_design is None:
                raise ValueError("finetune needs a design: set "
                                 "finetune.design or holdout_design")
        if self.eval is not None:
            self.eval.validate()
        try:
            get_scale(self.scale)
        except KeyError:
            raise ValueError(f"unknown scale preset {self.scale!r} "
                             f"(smoke/default/paper)") from None

    # -- resolution ----------------------------------------------------------

    def resolve_scale(self) -> ExperimentScale:
        scale = get_scale(self.scale)
        if self.scale_overrides:
            scale = custom_scale(scale, **self.scale_overrides)
        return scale

    @property
    def total_epochs(self) -> int:
        return (self.epochs if self.epochs is not None
                else self.resolve_scale().epochs)

    @property
    def data_kind(self) -> str:
        return self.data.partition(":")[0]

    @property
    def data_path(self) -> str | None:
        kind, _, path = self.data.partition(":")
        return path if kind in ("store", "archive") else None

    def finetune_design(self) -> str | None:
        if self.finetune is None:
            return None
        return (self.finetune.design if self.finetune.design is not None
                else self.holdout_design)

    # -- JSON round-trip -----------------------------------------------------

    def to_dict(self) -> dict:
        doc = dataclasses.asdict(self)
        doc["finetune"] = (dataclasses.asdict(self.finetune)
                           if self.finetune is not None else None)
        doc["eval"] = (dataclasses.asdict(self.eval)
                       if self.eval is not None else None)
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "TrainSpec":
        data = dict(data)
        finetune = data.pop("finetune", None)
        evaluation = data.pop("eval", None)
        spec = _dict_from(cls, data, "train spec")
        if finetune is not None:
            finetune = _dict_from(FinetuneSpec, finetune, "finetune spec")
        if evaluation is not None:
            evaluation = _dict_from(EvalSpec, evaluation, "eval spec")
        return dataclasses.replace(spec, finetune=finetune,
                                   eval=evaluation)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "TrainSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str | Path) -> "TrainSpec":
        return cls.from_json(Path(path).read_text())

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())
