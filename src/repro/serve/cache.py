"""Content-addressed LRU cache for forecast results.

A placement loop queries the forecaster with inputs that often barely move
between iterations (annealer snapshots, exploration candidates revisited by
different objectives).  The cache keys each request by the model that would
serve it and a digest of the exact input bytes, so a repeated query skips
the generator forward entirely.  Forecasts are deterministic
(``sample_noise=False``), which is what makes caching them sound.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np


def input_digest(x: np.ndarray) -> str:
    """Content hash of an input array (dtype, shape, and raw bytes)."""
    x = np.ascontiguousarray(x)
    hasher = hashlib.sha256()
    hasher.update(str(x.dtype).encode())
    hasher.update(str(x.shape).encode())
    hasher.update(x.tobytes())
    return hasher.hexdigest()


class ForecastCache:
    """Thread-safe LRU of ``(model_id, input digest) -> forecast image``.

    Cached arrays are marked read-only before being stored and are returned
    as-is; callers that need to mutate a result must copy it first.
    ``capacity=0`` disables caching (every ``get`` misses, ``put`` drops).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[str, str], np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, model_id: str, digest: str) -> np.ndarray | None:
        """The cached forecast for this key, or ``None`` (counts a miss)."""
        key = (model_id, digest)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, model_id: str, digest: str, forecast: np.ndarray) -> None:
        """Insert (or refresh) a forecast, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        # Copy: never alias caller memory (a view would pin its whole base
        # array and freeze the caller's copy too).
        forecast = np.array(forecast, copy=True)
        forecast.flags.writeable = False
        key = (model_id, digest)
        with self._lock:
            self._entries[key] = forecast
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        # Both counters under the lock: an unlocked read could pair a
        # fresh hit count with a stale total and report a rate > 1.
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counters snapshot for ``/metrics`` (one consistent read)."""
        with self._lock:
            hits, misses = self.hits, self.misses
            total = hits + misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": hits,
                "misses": misses,
                "evictions": self.evictions,
                "hit_rate": hits / total if total else 0.0,
            }
