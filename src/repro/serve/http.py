"""Stdlib JSON HTTP API over the batching engine.

Endpoints:

* ``GET /healthz``      — liveness: status, version, registered model count.
* ``GET /v1/models``    — model metadata from the registry.
* ``GET /metrics``      — engine, cache, and HTTP counters.  Served as
  Prometheus text exposition by default; clients sending
  ``Accept: application/json`` get the legacy JSON shape
  (``{"engine": ..., "http": ...}``) unchanged.
* ``GET /telemetry``    — the registry's merge-ready ``export()`` plus
  worker identity; what ``repro obs top <url>`` polls.
* ``GET /alerts``       — firing alerts, full rule status, and drift
  monitor signals.  Rules are (re)evaluated against the live registry
  on every poll, so the endpoint works with or without a background
  publisher.
* ``GET /fleet/status`` — per-worker queue depths and routing counters
  when the server fronts a :class:`~repro.fleet.router.FleetRouter`
  (404 on a single-engine server).
* ``POST /v1/forecast`` — run one forecast.  Body is JSON with ``model``
  plus either ``input`` (a nested ``(C, H, W)`` list in [-1, 1]) or
  ``place_image`` (``(H, W, 3)`` in [0, 1]) with ``connect_image``
  (``(H, W)`` in [0, 1]) and optional ``connect_weight``; the response
  carries the forecast image as nested ``(H, W, 3)`` lists in [0, 1].

With ``obs_dir`` set, the server also runs a
:class:`~repro.obs.publish.TelemetryPublisher` — its registry snapshot
lands in ``<obs_dir>/telemetry/`` every ``publish_interval`` seconds
(alert rules are evaluated on the same cadence, appending transitions
to ``<obs_dir>/alerts.jsonl``), so a fleet of serve processes sharing
one ``obs_dir`` aggregates under ``repro obs agg``/``top``.

A ``ThreadingHTTPServer`` handles each connection on its own thread; all
inference still funnels through the engine's single worker, so concurrent
HTTP clients are exactly what fills its micro-batches.
"""

from __future__ import annotations

import concurrent.futures
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

from repro import __version__
from repro.gan.dataset import make_input_stack
from repro.obs.alerts import ALERTS_NAME, AlertManager, load_rules
from repro.obs.publish import TELEMETRY_DIR, TelemetryPublisher
from repro.obs.timeseries import flatten_export
from repro.serve.engine import BatchingEngine

#: Reject request bodies larger than this (64 MB covers a 1024px input).
MAX_BODY_BYTES = 64 << 20

#: Prometheus text exposition content type (the format /metrics defaults to).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ApiError(Exception):
    """An error with an HTTP status, rendered as a JSON body."""

    def __init__(self, status: int, message: str,
                 headers: dict | None = None):
        super().__init__(message)
        self.status = status
        self.headers = dict(headers) if headers else {}


def _parse_forecast_body(body: dict) -> tuple[str, np.ndarray]:
    """Extract (model_id, input array) from a ``/v1/forecast`` payload."""
    if not isinstance(body, dict):
        raise ApiError(400, "request body must be a JSON object")
    model_id = body.get("model")
    if not isinstance(model_id, str):
        raise ApiError(400, "missing or non-string 'model'")
    has_input = "input" in body
    has_images = "place_image" in body
    if has_input == has_images:
        raise ApiError(
            400, "provide exactly one of 'input' or "
                 "'place_image' + 'connect_image'")
    try:
        if has_input:
            x = np.asarray(body["input"], dtype=np.float32)
            if x.ndim != 3:
                raise ApiError(
                    400, f"'input' must be (C, H, W), got shape {x.shape}")
        else:
            if "connect_image" not in body:
                raise ApiError(400, "'place_image' requires 'connect_image'")
            place = np.asarray(body["place_image"], dtype=np.float32)
            connect = np.asarray(body["connect_image"], dtype=np.float32)
            weight = float(body.get("connect_weight", 0.1))
            x = make_input_stack(place, connect, weight)
    except ApiError:
        raise
    except (TypeError, ValueError) as error:
        raise ApiError(400, f"bad forecast payload: {error}") from None
    return model_id, x


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # The wrapper stashes itself on the stdlib server object.
    @property
    def api(self) -> "ForecastServer":
        return self.server.api  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.api.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict,
                   headers: dict | None = None) -> None:
        data = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        if status >= 400:
            # Error paths may not have drained the request body; dropping
            # the keep-alive connection keeps leftover bytes from being
            # parsed as the next request.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(data)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _count(self, route: str) -> None:
        self.api.route_counter.labels(route=route).inc()

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        try:
            if self.path == "/healthz":
                self._count("/healthz")
                self._send_json(200, {
                    "status": "ok",
                    "version": __version__,
                    "models": self.api.engine.registry.model_ids,
                    "uptime_seconds": time.time() - self.api.started_at,
                })
            elif self.path == "/v1/models":
                self._count("/v1/models")
                self._send_json(200, {
                    "models": [info.as_dict()
                               for info in self.api.engine.registry.list()],
                })
            elif self.path == "/telemetry":
                self._count("/telemetry")
                self._send_json(200, {
                    "role": "serve",
                    "worker": self.api.worker_id,
                    "families": self.api.engine.metrics.export(),
                })
            elif self.path == "/alerts":
                self._count("/alerts")
                self._send_json(200, self.api.alerts_payload())
            elif self.path == "/fleet/status":
                # Only meaningful when the "engine" is a FleetRouter
                # (anything exposing fleet_status()); single engines 404.
                if not hasattr(self.api.engine, "fleet_status"):
                    raise ApiError(404, "not a fleet front "
                                        "(single-engine server)")
                self._count("/fleet/status")
                self._send_json(200, self.api.engine.fleet_status())
            elif self.path == "/metrics":
                self._count("/metrics")
                # Content negotiation: Prometheus text by default, the
                # legacy JSON shape for clients that ask for JSON.
                if "application/json" in self.headers.get("Accept", ""):
                    self._send_json(200, {
                        "engine": self.api.engine.stats(),
                        "http": self.api.http_stats(),
                    })
                else:
                    self._send_text(
                        200, self.api.engine.metrics.render_prometheus(),
                        PROMETHEUS_CONTENT_TYPE)
            else:
                raise ApiError(404, f"no such route: {self.path}")
        except ApiError as error:
            self._send_json(error.status, {"error": str(error)},
                            headers=error.headers)

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        try:
            if self.path != "/v1/forecast":
                raise ApiError(404, f"no such route: {self.path}")
            self._count("/v1/forecast")
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0:
                raise ApiError(400, "missing request body")
            if length > MAX_BODY_BYTES:
                raise ApiError(413, "request body too large")
            try:
                body = json.loads(self.rfile.read(length))
            except json.JSONDecodeError as error:
                raise ApiError(400, f"invalid JSON: {error}") from None
            model_id, x = _parse_forecast_body(body)
            engine = self.api.engine
            try:
                with engine.tracer.span("http.request",
                                        route="/v1/forecast",
                                        model=model_id):
                    result = engine.forecast_result(
                        model_id, x, timeout=self.api.forecast_timeout)
            except KeyError as error:
                raise ApiError(404, str(error.args[0])) from None
            except ValueError as error:
                raise ApiError(400, str(error)) from None
            except concurrent.futures.TimeoutError:
                raise ApiError(
                    504, f"forecast did not complete within "
                         f"{self.api.forecast_timeout}s") from None
            except RuntimeError as error:
                # Engine stopped mid-request, or the fleet rejected the
                # request (FleetBusyError carries a Retry-After hint so
                # well-behaved clients back off instead of hammering).
                retry_after = getattr(error, "retry_after", None)
                headers = ({"Retry-After": f"{retry_after:.3f}"}
                           if retry_after is not None else None)
                raise ApiError(503, str(error), headers=headers) from None
            self._send_json(200, {
                "model": result.model_id,
                "shape": list(result.image.shape),
                "forecast": result.image.tolist(),
                "cached": result.cached,
                "latency_ms": result.latency_seconds * 1e3,
            })
        except ApiError as error:
            self._send_json(error.status, {"error": str(error)},
                            headers=error.headers)


class ForecastServer:
    """Owns a ``ThreadingHTTPServer`` bound to the engine.

    ``port=0`` binds an ephemeral port; read the bound one from ``.port``
    after :meth:`start`.  Use as a context manager in tests and examples.
    """

    def __init__(self, engine: BatchingEngine, host: str = "127.0.0.1",
                 port: int = 8000, forecast_timeout: float = 60.0,
                 verbose: bool = False,
                 obs_dir: str | Path | None = None,
                 alert_rules=None,
                 publish_interval: float = 2.0):
        self.engine = engine
        self.host = host
        self.port = port
        self.forecast_timeout = forecast_timeout
        self.verbose = verbose
        self.started_at = time.time()
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        #: Per-route request counts, as a labeled family in the engine's
        #: registry — rendered in Prometheus text as
        #: ``http_requests_total{route="..."}``.
        self.route_counter = engine.metrics.counter(
            "http_requests_total", "HTTP requests by route.",
            labelnames=("route",))
        # -- fleet observability ------------------------------------------
        self.obs_dir = Path(obs_dir) if obs_dir is not None else None
        self.publish_interval = publish_interval
        self.worker_id = "0"     # refined to host:port at start()
        self.publisher: TelemetryPublisher | None = None
        if alert_rules is None:
            rules = []
        elif isinstance(alert_rules, (str, Path)):
            rules = load_rules(alert_rules)
        else:
            rules = list(alert_rules)
        log_path = (self.obs_dir / ALERTS_NAME
                    if self.obs_dir is not None and rules else None)
        self.alerts = AlertManager(rules, log_path=log_path,
                                   metrics=engine.metrics) if rules \
            else None

    def evaluate_alerts(self) -> list:
        """Run the alert rules against the live registry once."""
        if self.alerts is None:
            return []
        return self.alerts.evaluate(
            flatten_export(self.engine.metrics.export()))

    def alerts_payload(self) -> dict:
        """The ``GET /alerts`` body (evaluates rules on the way)."""
        self.evaluate_alerts()
        payload = {
            "active": self.alerts.active() if self.alerts else [],
            "rules": self.alerts.status() if self.alerts else {},
        }
        drift = self.engine.drift
        if drift is not None:
            payload["drift"] = drift.status()
        return payload

    def http_stats(self) -> dict:
        """Legacy ``{"requests_by_route": ...}`` shape off the registry."""
        return {"requests_by_route": {
            labels[0]: int(counter.value)
            for labels, counter in self.route_counter.items()}}

    def start(self) -> "ForecastServer":
        if self._httpd is not None:
            raise RuntimeError("server is already running")
        if not self.engine.running:
            self.engine.start()
        self._httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        self._httpd.api = self  # type: ignore[attr-defined]
        self.port = self._httpd.server_address[1]
        self.started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="forecast-http",
            daemon=True)
        self._thread.start()
        self.worker_id = f"{self.host}-{self.port}"
        if self.obs_dir is not None:
            self.publisher = TelemetryPublisher(
                self.engine.metrics, self.obs_dir / TELEMETRY_DIR,
                role="serve", worker=self.worker_id,
                interval=self.publish_interval,
                on_publish=lambda _doc: self.evaluate_alerts())
            self.publisher.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting connections, then stop the engine.

        Raises ``RuntimeError`` (like :meth:`BatchingEngine.stop`) if the
        serving thread is still alive after ``timeout`` — a wedged
        handler would otherwise silently leak a thread bound to the
        port, and the next bind on it would fail mysteriously.
        """
        if self.publisher is not None:
            self.publisher.stop()   # leaves the final exact snapshot
            self.publisher = None
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise RuntimeError(
                    f"HTTP serving thread did not stop within {timeout}s "
                    f"(a handler is wedged; port {self.port} is still "
                    f"held)")
            self._thread = None
        self.engine.stop()

    def __enter__(self) -> "ForecastServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"
