"""Model registry: discover, validate, and warm-load forecaster checkpoints.

The registry is the serving subsystem's source of truth for which models
exist: it scans a checkpoint directory for ``.npz`` files written by
:meth:`repro.gan.Pix2Pix.save`, loads each into a ready :class:`Pix2Pix`
instance up front (so the first request pays no load latency), and exposes
the metadata a client needs to pick a model — image size, channel counts,
parameter count, and a content checksum of the checkpoint file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.gan.pix2pix import Pix2Pix


@dataclass(frozen=True)
class ModelInfo:
    """Metadata for one registered forecaster."""

    model_id: str
    image_size: int
    input_channels: int
    output_channels: int
    base_filters: int
    skip_mode: str
    num_parameters: int
    path: str | None = None       # None for in-memory registrations
    checksum: str | None = None   # sha256 of the checkpoint file
    size_bytes: int | None = None

    def as_dict(self) -> dict:
        """JSON-ready representation for ``GET /v1/models``."""
        return dataclasses.asdict(self)


def _file_checksum(path: Path) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _model_info(model_id: str, model: Pix2Pix,
                path: Path | None = None) -> ModelInfo:
    """The registry metadata for one model (and its file, if on disk)."""
    cfg = model.config
    checksum = size_bytes = None
    if path is not None:
        checksum = _file_checksum(path)
        size_bytes = path.stat().st_size
    return ModelInfo(
        model_id=model_id,
        image_size=cfg.image_size,
        input_channels=cfg.input_channels,
        output_channels=cfg.output_channels,
        base_filters=cfg.base_filters,
        skip_mode=cfg.skip_mode,
        num_parameters=model.generator.num_parameters(),
        path=str(path) if path is not None else None,
        checksum=checksum,
        size_bytes=size_bytes,
    )


def load_checkpoint(path: str | Path, model_id: str | None = None
                    ) -> tuple[Pix2Pix, ModelInfo]:
    """Load one ``.npz`` checkpoint into a warm model plus its metadata.

    The single source of truth for checkpoint identity (id, file
    checksum, shape metadata) shared by the serving registry and the
    evaluation runner, so a report's ``model.checksum`` matches what
    ``GET /v1/models`` advertises for the same file.
    """
    path = Path(path)
    model_id = model_id if model_id is not None else path.stem
    model = Pix2Pix.load(path)   # raises ValueError on a bad checkpoint
    return model, _model_info(model_id, model, path)


class ModelRegistry:
    """Keyed collection of warm :class:`Pix2Pix` models plus their metadata."""

    def __init__(self):
        self._models: dict[str, Pix2Pix] = {}
        self._info: dict[str, ModelInfo] = {}
        # Registrations can arrive while HTTP handler threads list models.
        self._lock = threading.Lock()

    # -- registration ------------------------------------------------------

    @classmethod
    def from_directory(cls, directory: str | Path,
                       pattern: str = "*.npz", log=None) -> "ModelRegistry":
        """Warm-load every checkpoint matching ``pattern`` under ``directory``.

        The model id is the file stem (``ode.npz`` serves as ``ode``).
        Raises ``FileNotFoundError`` for a missing directory and
        ``ValueError`` when no checkpoint loads.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise FileNotFoundError(f"checkpoint directory {directory} "
                                    f"does not exist")
        registry = cls()
        for path in sorted(directory.glob(pattern)):
            info = registry.register_file(path)
            if log is not None:
                log(f"loaded {info.model_id}: {info.image_size}px, "
                    f"{info.num_parameters} params, "
                    f"checksum {info.checksum[:12]}")
        if not registry:
            raise ValueError(
                f"no checkpoints matching {pattern!r} in {directory}")
        return registry

    def register_file(self, path: str | Path,
                      model_id: str | None = None) -> ModelInfo:
        """Load one checkpoint file; the id defaults to the file stem."""
        model, info = load_checkpoint(path, model_id)
        return self._insert(model, info)

    def register(self, model_id: str, model: Pix2Pix,
                 path: str | Path | None = None) -> ModelInfo:
        """Register an already-constructed model (e.g. fresh from training)."""
        info = _model_info(model_id, model,
                           Path(path) if path is not None else None)
        return self._insert(model, info)

    def _insert(self, model: Pix2Pix, info: ModelInfo) -> ModelInfo:
        model_id = info.model_id
        with self._lock:
            if model_id in self._models:
                raise ValueError(f"model id {model_id!r} already registered")
            self._models[model_id] = model
            self._info[model_id] = info
        return info

    # -- lookup ------------------------------------------------------------

    def get(self, model_id: str) -> Pix2Pix:
        with self._lock:
            try:
                return self._models[model_id]
            except KeyError:
                known = ", ".join(sorted(self._models)) or "<none>"
                raise KeyError(f"unknown model {model_id!r}; "
                               f"registered: {known}") from None

    def info(self, model_id: str) -> ModelInfo:
        self.get(model_id)   # normalize the error message
        with self._lock:
            return self._info[model_id]

    def id_of(self, model: Pix2Pix) -> str | None:
        """The id a model instance is registered under, if any."""
        with self._lock:
            for model_id, registered in self._models.items():
                if registered is model:
                    return model_id
        return None

    def list(self) -> list[ModelInfo]:
        with self._lock:
            return [self._info[model_id] for model_id in sorted(self._info)]

    @property
    def model_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    def __contains__(self, model_id: str) -> bool:
        with self._lock:
            return model_id in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)
