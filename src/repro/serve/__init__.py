"""Forecast serving subsystem: the paper's speedup, made queryable.

The cGAN's pitch is forecasting congestion in milliseconds instead of the
hours routing takes — which only pays off when forecasts are servable on
demand, e.g. from inside a placement loop or a design-space sweep.  This
package turns trained checkpoints into a long-lived concurrent service:

* :mod:`repro.serve.registry` — discover and warm-load ``.npz`` checkpoints
  into ready :class:`~repro.gan.Pix2Pix` models, with metadata.
* :mod:`repro.serve.engine`   — micro-batching inference engine: one worker
  thread stacks queued requests into a single batched forward (bitwise
  equal to per-request inference), with a content-addressed LRU cache.
* :mod:`repro.serve.cache`    — the forecast cache.
* :mod:`repro.serve.http`     — stdlib ``ThreadingHTTPServer`` JSON API
  (``/v1/forecast``, ``/v1/models``, ``/healthz``, ``/metrics``).
* :mod:`repro.serve.client`   — matching stdlib HTTP client.

Quickstart::

    from repro.serve import BatchingEngine, ForecastCache, ModelRegistry

    registry = ModelRegistry.from_directory("checkpoints/")
    with BatchingEngine(registry, max_batch=8,
                        cache=ForecastCache(256)) as engine:
        image = engine.forecast("diffeq1", x)   # (H, W, 3) in [0, 1]

or over HTTP: ``python -m repro serve --checkpoints checkpoints/``.
"""

from repro.serve.cache import ForecastCache, input_digest
from repro.serve.client import ClientError, ForecastClient, ForecastResponse
from repro.serve.engine import BatchingEngine, ForecastResult
from repro.serve.http import ForecastServer
from repro.serve.registry import ModelInfo, ModelRegistry, load_checkpoint

__all__ = [
    "BatchingEngine",
    "ClientError",
    "ForecastCache",
    "ForecastClient",
    "ForecastResponse",
    "ForecastResult",
    "ForecastServer",
    "ModelInfo",
    "ModelRegistry",
    "input_digest",
    "load_checkpoint",
]
