"""Small stdlib client for the forecast HTTP API.

Used by the tests, the serving example, and the benchmark; also a reference
for what a placement tool would embed to query the service.

The client cooperates with fleet backpressure: a 503 whose body came
from a saturated :class:`~repro.fleet.router.FleetRouter` carries a
``Retry-After`` header, and with ``retries > 0`` the client sleeps that
long (or a jittered exponential fallback) and resends — forecasts are
idempotent, so retrying a rejected or crashed request is always safe.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

import numpy as np

#: Error statuses worth retrying: backpressure and gateway hiccups, not
#: client mistakes (4xx) and not server-side timeouts already spent.
RETRYABLE_STATUSES = (503,)


class ClientError(Exception):
    """Server returned an error status; carries the decoded JSON message."""

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


@dataclass
class ForecastResponse:
    """Decoded ``POST /v1/forecast`` reply."""

    model: str
    forecast: np.ndarray     # (H, W, 3) float32 in [0, 1]
    cached: bool
    latency_ms: float


class ForecastClient:
    """JSON-over-HTTP client bound to one server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 timeout: float = 60.0, retries: int = 0,
                 retry_base: float = 0.05, retry_cap: float = 2.0,
                 retry_seed: int | None = None):
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = retries
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self._rng = random.Random(retry_seed)

    # -- transport ---------------------------------------------------------

    def _request_once(self, path: str, payload: dict | None = None,
                      accept: str | None = None) -> dict:
        url = self.base_url + path
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        if accept is not None:
            headers["Accept"] = accept
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read()).get("error", str(error))
            except (json.JSONDecodeError, ValueError):
                message = str(error)
            retry_after = None
            header = error.headers.get("Retry-After") \
                if error.headers is not None else None
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass
            raise ClientError(error.code, message,
                              retry_after=retry_after) from None

    def _backoff(self, attempt: int, hint: float | None) -> float:
        if hint is not None:
            return hint
        return min(self.retry_cap,
                   self.retry_base * (2.0 ** attempt)) \
            * (0.5 + 0.5 * self._rng.random())

    def _request(self, path: str, payload: dict | None = None,
                 accept: str | None = None) -> dict:
        attempt = 0
        while True:
            try:
                return self._request_once(path, payload, accept=accept)
            except ClientError as error:
                if (error.status not in RETRYABLE_STATUSES
                        or attempt >= self.retries):
                    raise
                time.sleep(self._backoff(attempt, error.retry_after))
                attempt += 1

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("/healthz")

    def models(self) -> list[dict]:
        return self._request("/v1/models")["models"]

    def metrics(self) -> dict:
        """The legacy JSON metrics document (explicitly negotiated —
        ``GET /metrics`` defaults to Prometheus text)."""
        return self._request("/metrics", accept="application/json")

    def metrics_text(self) -> str:
        """The Prometheus text exposition of ``GET /metrics``."""
        url = self.base_url + "/metrics"
        request = urllib.request.Request(
            url, headers={"Accept": "text/plain"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ClientError(error.code, str(error)) from None

    def forecast(self, model: str, x: np.ndarray | None = None,
                 place_image: np.ndarray | None = None,
                 connect_image: np.ndarray | None = None,
                 connect_weight: float = 0.1) -> ForecastResponse:
        """Request one forecast.

        Pass either ``x`` (a ``(C, H, W)`` normalized input) or
        ``place_image`` + ``connect_image`` (rendered [0, 1] images, built
        into the input stack server-side).
        """
        if (x is None) == (place_image is None):
            raise ValueError("pass exactly one of x or place_image")
        payload: dict = {"model": model}
        if x is not None:
            payload["input"] = np.asarray(x, dtype=np.float32).tolist()
        else:
            if connect_image is None:
                raise ValueError("place_image requires connect_image")
            payload["place_image"] = np.asarray(
                place_image, dtype=np.float32).tolist()
            payload["connect_image"] = np.asarray(
                connect_image, dtype=np.float32).tolist()
            payload["connect_weight"] = connect_weight
        reply = self._request("/v1/forecast", payload)
        return ForecastResponse(
            model=reply["model"],
            forecast=np.asarray(reply["forecast"], dtype=np.float32),
            cached=bool(reply["cached"]),
            latency_ms=float(reply["latency_ms"]),
        )
