"""Small stdlib client for the forecast HTTP API.

Used by the tests, the serving example, and the benchmark; also a reference
for what a placement tool would embed to query the service.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass

import numpy as np


class ClientError(Exception):
    """Server returned an error status; carries the decoded JSON message."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


@dataclass
class ForecastResponse:
    """Decoded ``POST /v1/forecast`` reply."""

    model: str
    forecast: np.ndarray     # (H, W, 3) float32 in [0, 1]
    cached: bool
    latency_ms: float


class ForecastClient:
    """JSON-over-HTTP client bound to one server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 timeout: float = 60.0):
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(self, path: str, payload: dict | None = None,
                 accept: str | None = None) -> dict:
        url = self.base_url + path
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        if accept is not None:
            headers["Accept"] = accept
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read()).get("error", str(error))
            except (json.JSONDecodeError, ValueError):
                message = str(error)
            raise ClientError(error.code, message) from None

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("/healthz")

    def models(self) -> list[dict]:
        return self._request("/v1/models")["models"]

    def metrics(self) -> dict:
        """The legacy JSON metrics document (explicitly negotiated —
        ``GET /metrics`` defaults to Prometheus text)."""
        return self._request("/metrics", accept="application/json")

    def metrics_text(self) -> str:
        """The Prometheus text exposition of ``GET /metrics``."""
        url = self.base_url + "/metrics"
        request = urllib.request.Request(
            url, headers={"Accept": "text/plain"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ClientError(error.code, str(error)) from None

    def forecast(self, model: str, x: np.ndarray | None = None,
                 place_image: np.ndarray | None = None,
                 connect_image: np.ndarray | None = None,
                 connect_weight: float = 0.1) -> ForecastResponse:
        """Request one forecast.

        Pass either ``x`` (a ``(C, H, W)`` normalized input) or
        ``place_image`` + ``connect_image`` (rendered [0, 1] images, built
        into the input stack server-side).
        """
        if (x is None) == (place_image is None):
            raise ValueError("pass exactly one of x or place_image")
        payload: dict = {"model": model}
        if x is not None:
            payload["input"] = np.asarray(x, dtype=np.float32).tolist()
        else:
            if connect_image is None:
                raise ValueError("place_image requires connect_image")
            payload["place_image"] = np.asarray(
                place_image, dtype=np.float32).tolist()
            payload["connect_image"] = np.asarray(
                connect_image, dtype=np.float32).tolist()
            payload["connect_weight"] = connect_weight
        reply = self._request("/v1/forecast", payload)
        return ForecastResponse(
            model=reply["model"],
            forecast=np.asarray(reply["forecast"], dtype=np.float32),
            cached=bool(reply["cached"]),
            latency_ms=float(reply["latency_ms"]),
        )
