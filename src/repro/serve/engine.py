"""Micro-batching inference engine.

Requests from any number of client threads are funneled into one queue; a
single worker thread drains it, groups up to ``max_batch`` requests (waiting
at most ``max_wait_ms`` for stragglers once the first arrives), stacks each
model's inputs into one NCHW batch, and runs a single generator forward per
model.  Because deterministic inference is batch-invariant (see
:meth:`repro.gan.Pix2Pix.forecast`), a request's result is bitwise the same
whether it rode a full batch or ran alone — batching is purely a throughput
optimization, amortizing the per-forward Python and im2col overhead.

Running every forward on one worker thread is also what makes the engine
safe: the numpy layers cache activations on ``forward``, so a model must
never run two passes concurrently.  The engine therefore assumes it owns
its models — don't train a registered model while the engine is running.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, get_tracer
from repro.serve.cache import ForecastCache, input_digest
from repro.serve.registry import ModelRegistry


@dataclass(slots=True)
class ForecastResult:
    """One served forecast plus how it was produced.

    ``image`` is read-only (cache hits share the cached array; misses are
    frozen too so both paths behave identically) — copy before mutating.
    """

    model_id: str
    image: np.ndarray        # (H, W, 3) float32 in [0, 1], read-only
    cached: bool
    latency_seconds: float


@dataclass(slots=True)
class _Request:
    model_id: str
    x: np.ndarray            # (C, H, W)
    digest: str | None
    future: Future
    submitted_at: float
    deadline: float | None = None   # perf_counter time after which the
                                    # caller has given up on the result


_STOP = object()


class BatchingEngine:
    """Queue + worker thread turning a :class:`ModelRegistry` into a service.

    Parameters
    ----------
    registry:
        Models to serve; requests name one by id.
    max_batch:
        Largest number of requests stacked into one forward.
    max_wait_ms:
        How long the worker holds an open batch for more arrivals after the
        first request.  ``0`` serves every request immediately (batch of
        whatever is already queued).
    cache:
        Optional :class:`ForecastCache`; hits resolve at submit time without
        touching the queue.
    warm_start:
        Run one full-width dummy forward per registered model when the
        engine starts.  Forecasts go through the generators' fused
        ``forward_eval`` path, whose workspace arena sizes its scratch to
        the largest batch seen — warming at ``max_batch`` moves that
        one-time allocation cost out of the first real request.
    metrics:
        A :class:`repro.obs.MetricsRegistry` to publish into (one is
        created when omitted).  Everything ``/metrics`` serves — batch
        counters, latency histogram, queue depth, cache hit/miss — lives
        here; :meth:`stats` reconstructs the legacy JSON shape from it.
    tracer:
        A :class:`repro.obs.Tracer` for per-request spans
        (queue-wait → batch → forward).  Defaults to the process tracer,
        which is a no-op unless ``REPRO_TRACE`` is set.
    drift:
        Optional :class:`repro.obs.drift.DriftMonitor`.  Every served
        forecast (cache hits included — drift tracks traffic, not
        forwards) is folded into its sliding windows, publishing the
        ``serve_drift_*`` gauges into this engine's metrics registry.
        Monitor errors are swallowed: drift observes, it never fails a
        request.
    threads:
        Gemm thread count applied process-wide via
        :func:`repro.nn.parallel.set_num_threads` when the engine
        starts.  ``None`` (default) leaves the current/``REPRO_THREADS``
        setting untouched; any count produces bitwise-identical
        forecasts (work shards only on the sample axis).
    inference_mode:
        ``"float32"`` (default) or ``"int8"``; applied to every
        registered model at start.  int8 runs the fused eval path over
        per-output-channel quantized weights — faster, lossy within the
        golden-fixture NRMS tolerance (see ``Module.set_inference_mode``).
    """

    def __init__(self, registry: ModelRegistry, max_batch: int = 8,
                 max_wait_ms: float = 2.0,
                 cache: ForecastCache | None = None,
                 warm_start: bool = False,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 drift=None,
                 threads: int | None = None,
                 inference_mode: str = "float32"):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if threads is not None and threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        if inference_mode not in ("float32", "int8"):
            raise ValueError(f"inference_mode must be 'float32' or 'int8', "
                             f"got {inference_mode!r}")
        self.registry = registry
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.threads = threads
        self.inference_mode = inference_mode
        self.cache = cache
        self.warm_start = warm_start
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.drift = drift
        # SimpleQueue: C-implemented put/get, measurably cheaper per
        # request than queue.Queue on the single-worker hot path.
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        # The registry is append-only (re-registration raises), so model
        # and expected-shape lookups are memoized.  The memo dict is
        # written from every submitter thread and read by the worker, so
        # it gets its own lock (cheap: one uncontended acquire per call).
        self._model_cache: dict[str, tuple] = {}
        self._model_lock = threading.Lock()
        self._stack_bufs: dict[tuple, np.ndarray] = {}
        self._worker: threading.Thread | None = None
        self._stopping = False
        # Serializes the stopping-flag check against enqueueing: a submit
        # holding this lock either lands its request ahead of the _STOP
        # marker (so the drain loop serves it) or observes _stopping and
        # raises — a request can never slip in after the drain.
        self._submit_lock = threading.Lock()
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Create the engine's metrics in the registry.

        Derived legacy numbers come from the histograms themselves —
        ``completed`` is the latency histogram's count, ``batches`` /
        ``batched_requests`` the occupancy histogram's count/sum — so
        the snapshot invariants (histogram sums to batch count) hold by
        construction rather than by multi-counter locking.
        """
        m = self.metrics
        self._m_requests = m.counter(
            "serve_requests_total",
            "Forecast requests accepted (cache hits included).")
        self._m_forward_seconds = m.counter(
            "serve_forward_seconds_total",
            "Wall seconds spent inside model forwards.")
        self._m_latency = m.histogram(
            "serve_request_latency_seconds",
            "Submit-to-result latency per completed request.")
        self._m_occupancy = m.histogram(
            "serve_batch_occupancy",
            "Requests per served micro-batch.",
            buckets=range(1, self.max_batch + 1))
        self._m_expired = m.counter(
            "serve_expired_total",
            "Requests dropped unserved because their deadline passed "
            "while they sat in the batch queue.")
        m.gauge("serve_queue_depth", "Requests waiting in the batch queue.",
                fn=self._queue.qsize)
        m.gauge("serve_workspace_bytes",
                "Scratch-arena capacity across served models.",
                fn=self._workspace_bytes)
        cache = self.cache
        if cache is not None:
            m.counter("serve_cache_hits_total",
                      "Forecast cache hits.", fn=lambda: cache.hits)
            m.counter("serve_cache_misses_total",
                      "Forecast cache misses.", fn=lambda: cache.misses)
            m.counter("serve_cache_evictions_total",
                      "Forecast cache LRU evictions.",
                      fn=lambda: cache.evictions)
            m.gauge("serve_cache_size", "Entries currently cached.",
                    fn=cache.__len__)
            m.gauge("serve_cache_hit_ratio",
                    "Cache hits over total lookups.",
                    fn=lambda: cache.hit_rate)

    def _workspace_bytes(self) -> int:
        return sum(
            model.workspace.nbytes
            for model in (self.registry.get(model_id)
                          for model_id in self.registry.model_ids)
            if getattr(model, "workspace", None) is not None)

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._worker is not None and self._worker.is_alive()

    def start(self) -> "BatchingEngine":
        if self._worker is not None:
            raise RuntimeError("engine is already running (or a previous "
                               "stop() timed out; see stop())")
        from repro.nn import parallel as nn_parallel
        if self.threads is not None:
            nn_parallel.set_num_threads(self.threads)
        nn_parallel.attach_metrics(self.metrics)
        for model_id in self.registry.model_ids:
            model = self.registry.get(model_id)
            if hasattr(model, "set_inference_mode"):
                model.set_inference_mode(self.inference_mode)
        if self.warm_start:
            self._warm_models()
        self._stopping = False
        self._worker = threading.Thread(
            target=self._run, name="forecast-engine", daemon=True)
        self._worker.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Drain in-flight work, then stop the worker.

        New submissions are rejected as soon as stop begins; requests still
        queued behind the stop marker fail with ``RuntimeError``.  If the
        worker is wedged in a forward longer than ``timeout``, raises
        ``RuntimeError`` and leaves the engine as-is (so a second worker
        can never run the same models concurrently).
        """
        worker = self._worker
        if worker is None:
            return
        with self._submit_lock:
            # Atomic with submit's check: everything enqueued before the
            # _STOP marker is served by the drain loop; every submit that
            # loses the race observes _stopping and raises instead of
            # enqueueing a request nobody will ever resolve.
            self._stopping = True
            self._queue.put(_STOP)
        worker.join(timeout)
        if worker.is_alive():
            raise RuntimeError(
                f"engine worker did not stop within {timeout}s")
        from repro.nn import parallel as nn_parallel
        nn_parallel.detach_metrics(self.metrics)
        self._worker = None
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                item.future.set_exception(
                    RuntimeError("engine stopped before request ran"))

    def _warm_models(self) -> None:
        """Preallocate every model's workspace at full batch width."""
        for model_id in self.registry.model_ids:
            model = self.registry.get(model_id)
            cfg = model.config
            dummy = np.zeros((self.max_batch, cfg.input_channels,
                              cfg.image_size, cfg.image_size),
                             dtype=np.float32)
            model.forecast(dummy)

    def __enter__(self) -> "BatchingEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request paths -----------------------------------------------------

    def submit(self, model_id: str, x: np.ndarray,
               timeout: float | None = None) -> Future:
        """Enqueue one input; the future resolves to a :class:`ForecastResult`.

        ``x`` is a single (C, H, W) input in [-1, 1] matching the model's
        configured channels and image size.  Cache hits resolve immediately.

        ``timeout`` marks the request with a deadline ``timeout`` seconds
        from now: if the worker reaches it after the deadline passed (the
        caller has already given up), it is dropped instead of burning a
        batch slot on a result nobody reads, and its future fails with
        ``TimeoutError``.
        """
        if self._stopping or not self.running:
            raise RuntimeError("engine is not running (call start())")
        _, expected = self._lookup(model_id)
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 4 and x.shape[0] == 1:
            x = x[0]
        if x.shape != expected:
            raise ValueError(f"model {model_id!r} expects input shape "
                             f"{expected}, got {x.shape}")
        now = time.perf_counter()
        future: Future = Future()
        digest = None
        if self.cache is not None or self.drift is not None:
            # The drift monitor's novelty signal rides the same content
            # hash the cache keys on, so it is computed when either
            # consumer is present.
            digest = input_digest(x)
        if self.cache is not None:
            hit = self.cache.get(model_id, digest)
            if hit is not None:
                self._m_requests.inc()
                latency = time.perf_counter() - now
                self._m_latency.observe(latency)
                self.tracer.instant("serve.cache_hit", model=model_id)
                future.set_result(ForecastResult(
                    model_id=model_id, image=hit, cached=True,
                    latency_seconds=latency))
                self._observe_drift(model_id, hit, digest)
                return future
        self._m_requests.inc()
        request = _Request(
            model_id=model_id, x=x, digest=digest, future=future,
            submitted_at=now,
            deadline=now + timeout if timeout is not None else None)
        with self._submit_lock:
            if self._stopping:
                raise RuntimeError(
                    "engine is stopping; request rejected")
            self._queue.put(request)
        return future

    def _lookup(self, model_id: str) -> tuple:
        with self._model_lock:
            cached = self._model_cache.get(model_id)
            if cached is None:
                model = self.registry.get(model_id)
                cfg = model.config
                cached = (model, (cfg.input_channels, cfg.image_size,
                                  cfg.image_size))
                self._model_cache[model_id] = cached
            return cached

    def forecast(self, model_id: str, x: np.ndarray,
                 timeout: float | None = 30.0) -> np.ndarray:
        """Blocking convenience wrapper: the forecast image (H, W, 3)."""
        return self.forecast_result(model_id, x, timeout=timeout).image

    def forecast_result(self, model_id: str, x: np.ndarray,
                        timeout: float | None = 30.0) -> ForecastResult:
        """Blocking wrapper returning the full :class:`ForecastResult`.

        The timeout is propagated onto the queued request as a deadline,
        so a request this caller gives up on is also dropped by the
        worker instead of occupying a batch slot.
        """
        return self.submit(model_id, x, timeout=timeout).result(
            timeout=timeout)

    # -- worker ------------------------------------------------------------

    def _run(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if first is _STOP:
                return
            batch = [first]
            deadline = time.perf_counter() + self.max_wait_ms / 1000.0
            stop_after = False
            while len(batch) < self.max_batch:
                # Drain without timeout bookkeeping while requests are
                # already queued (the saturated fast path); fall back to a
                # deadline wait only when the queue momentarily runs dry.
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    try:
                        item = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if item is _STOP:
                    stop_after = True
                    break
                batch.append(item)
            self._serve_batch(batch)
            if stop_after:
                return

    def _serve_batch(self, batch: list[_Request]) -> None:
        tracer = self.tracer
        # Deadline check happens here — the last moment before real work
        # starts — so a request whose caller timed out while it queued
        # never reaches the (expensive) stacked forward.
        now = time.perf_counter()
        expired = [request for request in batch
                   if request.deadline is not None
                   and now > request.deadline]
        if expired:
            self._m_expired.inc(len(expired))
            for request in expired:
                request.future.set_exception(TimeoutError(
                    f"request expired after "
                    f"{now - request.submitted_at:.3f}s in queue"))
            batch = [request for request in batch
                     if request.deadline is None
                     or now <= request.deadline]
            if not batch:
                return
        self._m_occupancy.observe(len(batch))
        if tracer.enabled:
            # Queue wait per request: submitted_at is a perf_counter
            # float, the same clock perf_counter_ns reads in ns.
            now_ns = time.perf_counter_ns()
            for request in batch:
                start_ns = int(request.submitted_at * 1e9)
                tracer.complete("serve.queue_wait", start_ns,
                                now_ns - start_ns, model=request.model_id)
        # One forward per distinct model, in arrival order of first request.
        groups: dict[str, list[_Request]] = {}
        for request in batch:
            groups.setdefault(request.model_id, []).append(request)
        with tracer.span("serve.batch", size=len(batch),
                         models=len(groups)):
            for model_id, requests in groups.items():
                self._serve_group(model_id, requests)

    def _serve_group(self, model_id: str, requests: list[_Request]) -> None:
        try:
            model = self._lookup(model_id)[0]
            stacked = self._stack_inputs(model_id, requests)
            start = time.perf_counter()
            with self.tracer.span("serve.forward", model=model_id,
                                  batch=len(requests)):
                images = model.forecast(stacked)
            forward_seconds = time.perf_counter() - start
        except Exception as error:  # surface to every waiting caller
            for request in requests:
                request.future.set_exception(error)
            return
        done = time.perf_counter()
        self._m_forward_seconds.inc(forward_seconds)
        for request in requests:
            self._m_latency.observe(done - request.submitted_at)
        caching = self.cache is not None
        if not caching:
            # No cache: hand out read-only row views of the batch
            # result directly.  The batch array is modest (it lives
            # exactly as long as its views) and skipping per-request
            # copies is measurable at small image sizes.
            images = np.ascontiguousarray(images)
            images.flags.writeable = False
        for request, image in zip(requests, images):
            if caching:
                # Copy out of the batch (a row view would pin the
                # whole batch in the cache) and freeze — results are
                # read-only on the hit path too.
                image = np.ascontiguousarray(image)
                image.flags.writeable = False
                if request.digest is not None:
                    self.cache.put(model_id, request.digest, image)
            request.future.set_result(ForecastResult(
                model_id=model_id, image=image, cached=False,
                latency_seconds=done - request.submitted_at))
            self._observe_drift(model_id, image, request.digest)

    def _observe_drift(self, model_id: str, image: np.ndarray,
                       digest: str | None) -> None:
        if self.drift is None:
            return
        try:
            self.drift.observe(model_id, image, digest=digest)
        except Exception:
            # Quality monitoring must never take down serving.
            pass

    def _stack_inputs(self, model_id: str,
                      requests: list[_Request]) -> np.ndarray:
        """Stack request inputs into a per-(model, batch-size) reused
        buffer — the worker is single-threaded and the forward consumes
        the batch before the buffer can be reused."""
        key = (model_id, len(requests))
        buf = self._stack_bufs.get(key)
        if buf is None or buf.shape[1:] != requests[0].x.shape:
            buf = np.empty((len(requests),) + requests[0].x.shape,
                           dtype=np.float32)
            self._stack_bufs[key] = buf
        for index, request in enumerate(requests):
            buf[index] = request.x
        return buf

    # -- metrics -----------------------------------------------------------

    def stats(self) -> dict:
        """Legacy counters snapshot (the ``/metrics`` JSON shape).

        Every number is reconstructed from the metrics registry — the
        registry is the single source of truth; this method only adapts
        it to the response shape pre-registry clients expect.  The
        Prometheus rendering of the same state is
        ``self.metrics.render_prometheus()``.
        """
        occupancy = self._m_occupancy
        latency = self._m_latency
        batches = occupancy.count
        batched_requests = int(occupancy.sum)
        completed = latency.count
        snapshot = {
            "requests": int(self._m_requests.value),
            "expired": int(self._m_expired.value),
            "completed": completed,
            "batches": batches,
            "batched_requests": batched_requests,
            "mean_batch_occupancy": (
                batched_requests / batches if batches else 0.0),
            "max_batch_occupancy": int(occupancy.max_observed or 0),
            # Micro-batch size histogram: {occupancy: batch count}.  The
            # metric's buckets are exactly the integers 1..max_batch, so
            # the exact per-size counts survive; zero-count sizes are
            # omitted as the hand-rolled dict omitted them.
            "batch_occupancy_histogram": {
                size: count
                for size, count in occupancy.bucket_counts().items()
                if count and size != "+Inf"},
            "forward_seconds_total": self._m_forward_seconds.value,
            "mean_latency_ms": (
                1e3 * latency.sum / completed if completed else 0.0),
            "latency_p50_ms": 1e3 * latency.quantile(0.5),
            "latency_p99_ms": 1e3 * latency.quantile(0.99),
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "queue_depth": self._queue.qsize(),
            # Scratch-arena capacity across served models: steady state
            # means forwards allocate (almost) nothing per request.
            "workspace_bytes": self._workspace_bytes(),
        }
        # Forecast-cache hit/miss counters, surfaced at the top level next
        # to the batching counters (the cache itself owns the state).
        if self.cache is not None:
            cache_stats = self.cache.stats()
            snapshot["cache"] = cache_stats
            snapshot["cache_hits"] = cache_stats["hits"]
            snapshot["cache_misses"] = cache_stats["misses"]
        else:
            snapshot["cache_hits"] = 0
            snapshot["cache_misses"] = 0
        return snapshot
