"""Placement container and wirelength cost models.

Implements the VPR linear-congestion bounding-box cost the annealer optimizes:
``sum over nets of q(t) * (bb_x + bb_y)`` where ``q(t)`` is the classic
crossing-count correction for multi-terminal nets, plus the two alternative
cost modes behind the paper's ``place_algorithm`` sweep option.
"""

from __future__ import annotations

import numpy as np

from repro.fpga.arch import BlockType, FpgaArchitecture, Site
from repro.fpga.netlist import Net, Netlist

#: VPR's crossing-count table, indexed by number of net terminals (<= 50).
_CROSSING = [
    1.0, 1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
    1.4493, 1.4974, 1.5455, 1.5937, 1.6418, 1.6899, 1.7304, 1.7709, 1.8114,
    1.8519, 1.8924, 1.9288, 1.9652, 2.0015, 2.0379, 2.0743, 2.1061, 2.1379,
    2.1698, 2.2016, 2.2334, 2.2646, 2.2958, 2.3271, 2.3583, 2.3895, 2.4187,
    2.4479, 2.4772, 2.5064, 2.5356, 2.5610, 2.5864, 2.6117, 2.6371, 2.6625,
    2.6887, 2.7148, 2.7410, 2.7671, 2.7933,
]


def crossing_count(num_terminals: int) -> float:
    """q(t): expected wiring correction for a t-terminal net (VPR)."""
    if num_terminals < 0:
        raise ValueError("terminal count must be non-negative")
    if num_terminals < len(_CROSSING):
        return _CROSSING[num_terminals]
    return 2.7933 + 0.02616 * (num_terminals - 50)


def net_bounding_box(xs: np.ndarray, ys: np.ndarray, net: Net
                     ) -> tuple[int, int, int, int]:
    """(xmin, xmax, ymin, ymax) of a net's terminals under positions xs/ys."""
    terminals = net.terminals
    tx = xs[list(terminals)]
    ty = ys[list(terminals)]
    return int(tx.min()), int(tx.max()), int(ty.min()), int(ty.max())


class Placement:
    """Assignment of every block to a compatible site.

    Maintains position arrays for fast cost evaluation and an occupancy map
    keyed by ``(x, y, subtile)`` for legality and swap moves.
    """

    def __init__(self, netlist: Netlist, arch: FpgaArchitecture,
                 sites: list[Site]):
        if len(sites) != netlist.num_blocks:
            raise ValueError("need exactly one site per block")
        self.netlist = netlist
        self.arch = arch
        self.site_of: list[Site] = list(sites)
        # Parallel coordinate stores: numpy for vectorized consumers (router,
        # renderers) and plain lists for the annealer's hot loop, where numpy
        # scalar indexing would dominate the move time.
        self.xs = np.array([site.x for site in sites], dtype=np.int32)
        self.ys = np.array([site.y for site in sites], dtype=np.int32)
        self.x_list: list[int] = [site.x for site in sites]
        self.y_list: list[int] = [site.y for site in sites]
        self._occupants: dict[tuple[int, int, int], int] = {}
        for block_id, site in enumerate(sites):
            key = (site.x, site.y, site.subtile)
            if key in self._occupants:
                raise ValueError(f"site {site} double-booked")
            self._occupants[key] = block_id
        self.validate()

    # -- construction ----------------------------------------------------------

    @classmethod
    def random(cls, netlist: Netlist, arch: FpgaArchitecture,
               rng: np.random.Generator) -> "Placement":
        """Uniform random legal placement (the annealer's starting point)."""
        sites: list[Site | None] = [None] * netlist.num_blocks
        for block_type in BlockType:
            blocks = netlist.blocks_of_type(block_type)
            pool = list(arch.sites_for(block_type))
            if len(blocks) > len(pool):
                raise ValueError(
                    f"{netlist.name}: {len(blocks)} {block_type.value} blocks "
                    f"but only {len(pool)} sites")
            order = rng.permutation(len(pool))
            for block, site_index in zip(blocks, order):
                sites[block.id] = pool[site_index]
        return cls(netlist, arch, sites)  # type: ignore[arg-type]

    # -- mutation ---------------------------------------------------------------

    def move(self, block_id: int, new_site: Site) -> None:
        """Move a block to a free compatible site."""
        key = (new_site.x, new_site.y, new_site.subtile)
        if key in self._occupants:
            raise ValueError(f"site {new_site} is occupied")
        old = self.site_of[block_id]
        del self._occupants[(old.x, old.y, old.subtile)]
        self._occupants[key] = block_id
        self.site_of[block_id] = new_site
        self.xs[block_id] = new_site.x
        self.ys[block_id] = new_site.y
        self.x_list[block_id] = new_site.x
        self.y_list[block_id] = new_site.y

    def swap(self, block_a: int, block_b: int) -> None:
        """Exchange the sites of two same-type blocks."""
        site_a, site_b = self.site_of[block_a], self.site_of[block_b]
        self._occupants[(site_a.x, site_a.y, site_a.subtile)] = block_b
        self._occupants[(site_b.x, site_b.y, site_b.subtile)] = block_a
        self.site_of[block_a], self.site_of[block_b] = site_b, site_a
        self.xs[block_a], self.ys[block_a] = site_b.x, site_b.y
        self.xs[block_b], self.ys[block_b] = site_a.x, site_a.y
        self.x_list[block_a], self.y_list[block_a] = site_b.x, site_b.y
        self.x_list[block_b], self.y_list[block_b] = site_a.x, site_a.y

    def occupant(self, site: Site) -> int | None:
        """Block at a site, or None."""
        return self._occupants.get((site.x, site.y, site.subtile))

    def copy(self) -> "Placement":
        return Placement(self.netlist, self.arch, list(self.site_of))

    # -- legality -----------------------------------------------------------------

    def validate(self) -> None:
        """Raise if any block sits on an incompatible site."""
        for block in self.netlist.blocks:
            site = self.site_of[block.id]
            if not self.arch.compatible(block.type, site):
                raise ValueError(
                    f"block {block.name} ({block.type.value}) at "
                    f"illegal site {site}")

    def io_fill_fraction(self, x: int, y: int) -> float:
        """Fraction of an I/O pad's ports that are occupied (for rendering)."""
        used = sum(
            1 for sub in range(self.arch.io_capacity)
            if (x, y, sub) in self._occupants)
        return used / self.arch.io_capacity


def hpwl_cost(netlist: Netlist, placement: Placement) -> float:
    """Total q(t)-corrected half-perimeter wirelength."""
    total = 0.0
    xs, ys = placement.xs, placement.ys
    for net in netlist.nets:
        xmin, xmax, ymin, ymax = net_bounding_box(xs, ys, net)
        total += crossing_count(net.fanout + 1) * ((xmax - xmin) + (ymax - ymin))
    return total


class CostModel:
    """Net-separable placement cost: sum over nets of ``net_cost``.

    Subclasses customize static net weights and a (lazily refreshed)
    congestion multiplier.  Net-separability is what makes the annealer's
    delta evaluation O(affected nets).
    """

    def __init__(self, netlist: Netlist, arch: FpgaArchitecture):
        self.netlist = netlist
        self.arch = arch
        self._q = np.array(
            [crossing_count(net.fanout + 1) for net in netlist.nets])
        self.weights = np.ones(netlist.num_nets)
        # Hot-loop caches: terminal id tuples and combined weight*q floats.
        self._terminals = [net.terminals for net in netlist.nets]
        self._wq = [float(w * q) for w, q in zip(self.weights, self._q)]

    def _sync_weights(self) -> None:
        """Recompute the fused weight*q cache after editing ``weights``."""
        self._wq = [float(w * q) for w, q in zip(self.weights, self._q)]

    def refresh(self, placement: Placement) -> None:
        """Hook called once per temperature; default does nothing."""

    def net_cost(self, net_id: int, placement: Placement) -> float:
        xs = placement.x_list
        ys = placement.y_list
        terminals = self._terminals[net_id]
        first = terminals[0]
        xmin = xmax = xs[first]
        ymin = ymax = ys[first]
        for terminal in terminals[1:]:
            x = xs[terminal]
            y = ys[terminal]
            if x < xmin:
                xmin = x
            elif x > xmax:
                xmax = x
            if y < ymin:
                ymin = y
            elif y > ymax:
                ymax = y
        return self._wq[net_id] * ((xmax - xmin) + (ymax - ymin))

    def total(self, placement: Placement) -> float:
        return float(sum(self.net_cost(net.id, placement)
                         for net in self.netlist.nets))


class BoundingBoxCost(CostModel):
    """VPR's default linear-congestion bounding-box cost."""


class CongestionAwareCost(CostModel):
    """Bounding-box cost scaled by a RUDY-style demand map.

    The demand map is rebuilt at every temperature (``refresh``) rather than
    per move; this keeps deltas net-separable.  Stand-in for VPR's congestion-
    aware modes in the ``place_algorithm`` sweep.
    """

    def __init__(self, netlist: Netlist, arch: FpgaArchitecture,
                 beta: float = 1.0):
        super().__init__(netlist, arch)
        self.beta = beta
        self._demand = np.zeros((arch.width + 2, arch.height + 2))

    def refresh(self, placement: Placement) -> None:
        demand = np.zeros_like(self._demand)
        xs, ys = placement.xs, placement.ys
        for net in self.netlist.nets:
            xmin, xmax, ymin, ymax = net_bounding_box(xs, ys, net)
            w = xmax - xmin + 1
            h = ymax - ymin + 1
            density = self._q[net.id] * (w + h) / (w * h)
            demand[xmin:xmax + 1, ymin:ymax + 1] += density
        peak = demand.max()
        self._demand = demand / peak if peak > 0 else demand

    def net_cost(self, net_id: int, placement: Placement) -> float:
        xs = placement.x_list
        ys = placement.y_list
        terminals = self._terminals[net_id]
        first = terminals[0]
        xmin = xmax = xs[first]
        ymin = ymax = ys[first]
        for terminal in terminals[1:]:
            x = xs[terminal]
            y = ys[terminal]
            if x < xmin:
                xmin = x
            elif x > xmax:
                xmax = x
            if y < ymin:
                ymin = y
            elif y > ymax:
                ymax = y
        base = self._wq[net_id] * ((xmax - xmin) + (ymax - ymin))
        multiplier = 1.0 + self.beta * self._demand[
            (xmin + xmax) // 2, (ymin + ymax) // 2]
        return base * multiplier


class CriticalityCost(CostModel):
    """Depth-weighted cost: the ``path_timing_driven`` stand-in.

    Nets spanning many logic levels get a higher weight, biasing the annealer
    toward shortening long combinational paths, which is the placement-side
    effect of VPR's timing-driven mode.
    """

    def __init__(self, netlist: Netlist, arch: FpgaArchitecture,
                 criticality_weight: float = 1.5):
        super().__init__(netlist, arch)
        levels = netlist.levelize()
        depth = max(levels.values()) or 1
        for net in netlist.nets:
            terminal_levels = [levels[t] for t in net.terminals]
            span = max(terminal_levels) - min(terminal_levels)
            self.weights[net.id] = 1.0 + criticality_weight * span / depth
        self._sync_weights()


PLACE_ALGORITHMS = {
    "bounding_box": BoundingBoxCost,
    "congestion_driven": CongestionAwareCost,
    "criticality": CriticalityCost,
}


def make_cost_model(name: str, netlist: Netlist,
                    arch: FpgaArchitecture) -> CostModel:
    """Factory for the ``place_algorithm`` option values."""
    try:
        factory = PLACE_ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown place_algorithm {name!r}; "
            f"choose from {sorted(PLACE_ALGORITHMS)}") from None
    return factory(netlist, arch)
