"""VPR-like FPGA place-and-route substrate.

This package replaces the VTR 8.0 / VPR toolchain the paper uses to produce
its dataset: a heterogeneous island-style FPGA architecture
(:mod:`repro.fpga.arch`), packed netlists (:mod:`repro.fpga.netlist`),
seeded synthetic benchmark designs matching the paper's Table 2 statistics
(:mod:`repro.fpga.generators`), a VPR-style simulated-annealing placer
(:mod:`repro.fpga.placer`), and a PathFinder negotiated-congestion router
(:mod:`repro.fpga.router`) whose per-channel utilization is the ground truth
the cGAN learns to paint.
"""

from repro.fpga.arch import BlockType, FpgaArchitecture, Site, paper_architecture
from repro.fpga.generators import (
    PAPER_SUITE,
    DesignSpec,
    generate_design,
    paper_suite,
    scaled_suite,
)
from repro.fpga.netlist import Block, Net, Netlist
from repro.fpga.packing import (
    FlatNetlist,
    PackingResult,
    Primitive,
    PrimitiveType,
    generate_flat_design,
    generate_packed_design,
    pack,
)
from repro.fpga.placement import Placement, hpwl_cost, net_bounding_box
from repro.fpga.placer import PlacerOptions, PlacerResult, SimulatedAnnealingPlacer
from repro.fpga.router import PathFinderRouter, RouterOptions, RoutingResult
from repro.fpga.timing import TimingAnalyzer, TimingReport

__all__ = [
    "Block",
    "BlockType",
    "DesignSpec",
    "FlatNetlist",
    "FpgaArchitecture",
    "Net",
    "Netlist",
    "PAPER_SUITE",
    "PackingResult",
    "PathFinderRouter",
    "Placement",
    "PlacerOptions",
    "PlacerResult",
    "Primitive",
    "PrimitiveType",
    "RouterOptions",
    "RoutingResult",
    "SimulatedAnnealingPlacer",
    "Site",
    "TimingAnalyzer",
    "TimingReport",
    "generate_design",
    "generate_flat_design",
    "generate_packed_design",
    "hpwl_cost",
    "net_bounding_box",
    "pack",
    "paper_architecture",
    "paper_suite",
    "scaled_suite",
]
