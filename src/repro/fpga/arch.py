"""Island-style heterogeneous FPGA architecture model.

The model mirrors the floorplan in Figure 2 of the paper: a W x H grid of
logic tiles ringed by I/O pads (eight ports per pad), with dedicated memory
and multiplier columns among the CLB columns, and routing channels running
between all rows and columns.

Grid coordinates: interior tiles occupy ``x in 1..width``, ``y in 1..height``;
the I/O ring sits at ``x in {0, width+1}`` and ``y in {0, height+1}`` (corners
are empty).  ``y`` grows upward; image rendering flips it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import cached_property


class BlockType(str, Enum):
    """Block categories, one per color in the paper's Table 1 scheme."""

    CLB = "clb"
    IO = "io"
    MEM = "mem"
    MUL = "mul"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class Site(object):
    """A legal anchor location: grid tile plus subtile slot.

    I/O pads hold up to ``io_capacity`` blocks (``subtile`` selects the port);
    all other sites hold one block at ``subtile=0``.  Memory and multiplier
    blocks anchor at ``(x, y)`` and span ``height`` rows upward.
    """

    x: int
    y: int
    subtile: int = 0


class FpgaArchitecture:
    """Heterogeneous FPGA floorplan and site compatibility oracle."""

    def __init__(
        self,
        width: int,
        height: int | None = None,
        io_capacity: int = 8,
        mem_columns: tuple[int, ...] = (),
        mul_columns: tuple[int, ...] = (),
        mem_height: int = 2,
        mul_height: int = 2,
        channel_width: int = 24,
    ):
        height = width if height is None else height
        if width < 3 or height < 3:
            raise ValueError(f"grid must be at least 3x3, got {width}x{height}")
        if io_capacity < 1:
            raise ValueError("io_capacity must be >= 1")
        for col in (*mem_columns, *mul_columns):
            if not 1 <= col <= width:
                raise ValueError(f"special column {col} outside 1..{width}")
        if set(mem_columns) & set(mul_columns):
            raise ValueError("a column cannot be both memory and multiplier")
        if mem_height < 1 or mul_height < 1:
            raise ValueError("block heights must be >= 1")
        if channel_width < 1:
            raise ValueError("channel_width must be >= 1")

        self.width = width
        self.height = height
        self.io_capacity = io_capacity
        self.mem_columns = tuple(sorted(mem_columns))
        self.mul_columns = tuple(sorted(mul_columns))
        self.mem_height = mem_height
        self.mul_height = mul_height
        self.channel_width = channel_width

    # -- column / tile classification ---------------------------------------

    def column_type(self, x: int) -> BlockType:
        """Block type hosted by interior column ``x``."""
        if not 1 <= x <= self.width:
            raise ValueError(f"column {x} outside interior 1..{self.width}")
        if x in self.mem_columns:
            return BlockType.MEM
        if x in self.mul_columns:
            return BlockType.MUL
        return BlockType.CLB

    def block_height(self, block_type: BlockType) -> int:
        """Rows spanned by a block of the given type."""
        if block_type is BlockType.MEM:
            return self.mem_height
        if block_type is BlockType.MUL:
            return self.mul_height
        return 1

    def is_io_tile(self, x: int, y: int) -> bool:
        """True for perimeter (non-corner) pad locations."""
        on_x_edge = x in (0, self.width + 1)
        on_y_edge = y in (0, self.height + 1)
        if on_x_edge and on_y_edge:
            return False  # corners hold no pads
        if on_x_edge:
            return 1 <= y <= self.height
        if on_y_edge:
            return 1 <= x <= self.width
        return False

    # -- site enumeration -----------------------------------------------------

    @cached_property
    def io_sites(self) -> tuple[Site, ...]:
        sites = []
        for x in range(1, self.width + 1):
            for y in (0, self.height + 1):
                sites.extend(Site(x, y, sub) for sub in range(self.io_capacity))
        for y in range(1, self.height + 1):
            for x in (0, self.width + 1):
                sites.extend(Site(x, y, sub) for sub in range(self.io_capacity))
        return tuple(sites)

    @cached_property
    def clb_sites(self) -> tuple[Site, ...]:
        return tuple(
            Site(x, y)
            for x in range(1, self.width + 1)
            if self.column_type(x) is BlockType.CLB
            for y in range(1, self.height + 1)
        )

    @cached_property
    def mem_sites(self) -> tuple[Site, ...]:
        return self._macro_sites(self.mem_columns, self.mem_height)

    @cached_property
    def mul_sites(self) -> tuple[Site, ...]:
        return self._macro_sites(self.mul_columns, self.mul_height)

    def _macro_sites(self, columns: tuple[int, ...], block_height: int
                     ) -> tuple[Site, ...]:
        """Anchors for multi-row blocks, quantized so slots never overlap."""
        sites = []
        for x in columns:
            y = 1
            while y + block_height - 1 <= self.height:
                sites.append(Site(x, y))
                y += block_height
        return tuple(sites)

    def sites_for(self, block_type: BlockType) -> tuple[Site, ...]:
        """All anchor sites able to host blocks of ``block_type``."""
        return {
            BlockType.IO: self.io_sites,
            BlockType.CLB: self.clb_sites,
            BlockType.MEM: self.mem_sites,
            BlockType.MUL: self.mul_sites,
        }[block_type]

    def capacity(self, block_type: BlockType) -> int:
        """Total number of blocks of a type the architecture can host."""
        return len(self.sites_for(block_type))

    def site_block_type(self, site: Site) -> BlockType:
        """Block type hosted at a site (IO ring or interior column type)."""
        if self.is_io_tile(site.x, site.y):
            return BlockType.IO
        return self.column_type(site.x)

    def compatible(self, block_type: BlockType, site: Site) -> bool:
        """True when a block of ``block_type`` may anchor at ``site``."""
        if self.is_io_tile(site.x, site.y):
            return (block_type is BlockType.IO
                    and 0 <= site.subtile < self.io_capacity)
        if site.subtile != 0:
            return False
        if not (1 <= site.x <= self.width and 1 <= site.y <= self.height):
            return False
        if self.column_type(site.x) is not block_type:
            return False
        span = self.block_height(block_type)
        return (site.y - 1) % span == 0 and site.y + span - 1 <= self.height


def paper_architecture(width: int, height: int | None = None,
                       io_capacity: int = 8,
                       channel_width: int = 24) -> FpgaArchitecture:
    """Architecture in the style of the paper's Figure 2 floorplan.

    For an 8-wide grid this yields a memory column at x=3 and a multiplier
    column at x=7, exactly the motivating example; wider grids repeat the
    pattern with period 10.
    """
    height = width if height is None else height
    mem_columns = tuple(x for x in range(3, width + 1, 10))
    mul_columns = tuple(x for x in range(7, width + 1, 10) if x not in mem_columns)
    return FpgaArchitecture(
        width=width,
        height=height,
        io_capacity=io_capacity,
        mem_columns=mem_columns,
        mul_columns=mul_columns,
        mem_height=2,
        mul_height=2,
        channel_width=channel_width,
    )
