"""Seeded synthetic benchmark designs.

The paper evaluates on eight VTR designs whose published statistics are the
#LUTs / #FF / #Nets columns of Table 2.  The netlists themselves are not
shippable here, so :func:`generate_design` synthesizes a design with the same
statistics and with the property the experiments actually rely on: nets have
*spatial locality structure* (Rent's-rule-flavoured clustering plus a power-law
fanout distribution), so that good placements genuinely reduce routing
congestion and bad ones increase it.

Blocks are assigned latent positions on a unit square; a net drawn from a
cluster connects its driver to sinks sampled mostly from the driver's latent
neighborhood, with a small long-range fraction.  The latent positions are
discarded afterwards — the placer never sees them.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.config import ExperimentScale
from repro.fpga.arch import BlockType
from repro.fpga.netlist import Block, DesignStats, Net, Netlist


@dataclass(frozen=True)
class DesignSpec:
    """Published statistics of one benchmark design (Table 2)."""

    name: str
    num_luts: int
    num_ffs: int
    num_nets: int


#: The eight designs of Table 2 with their published statistics.
PAPER_SUITE: tuple[DesignSpec, ...] = (
    DesignSpec("diffeq1", 563, 193, 2_059),
    DesignSpec("diffeq2", 419, 96, 1_560),
    DesignSpec("raygentop", 1_920, 1_047, 5_023),
    DesignSpec("SHA", 2_501, 911, 10_910),
    DesignSpec("OR1200", 2_823, 670, 12_336),
    DesignSpec("ode", 5_488, 1_316, 20_981),
    DesignSpec("dcsg", 9_088, 1_618, 36_912),
    DesignSpec("bfly", 9_503, 1_748, 38_582),
)


def paper_suite() -> tuple[DesignSpec, ...]:
    """The Table 2 designs at their published sizes."""
    return PAPER_SUITE


def scaled_suite(scale: ExperimentScale) -> tuple[DesignSpec, ...]:
    """The Table 2 designs scaled into a CPU budget, ordering preserved.

    LUT counts map through :meth:`ExperimentScale.scaled_luts`; FF and net
    counts keep their published ratios to the LUT count.
    """
    specs = []
    for spec in PAPER_SUITE:
        luts = scale.scaled_luts(spec.num_luts)
        ratio = luts / spec.num_luts
        specs.append(DesignSpec(
            name=spec.name,
            num_luts=luts,
            num_ffs=max(1, int(round(spec.num_ffs * ratio))),
            num_nets=max(luts + 8, int(round(spec.num_nets * ratio))),
        ))
    return tuple(specs)


def _sample_fanout(rng: np.random.Generator, max_fanout: int) -> int:
    """Power-law-ish fanout: mostly 1-3, occasional high-fanout nets."""
    u = rng.random()
    if u < 0.45:
        return 1
    if u < 0.75:
        return 2
    if u < 0.90:
        return 3
    # Heavy tail, truncated.
    fanout = 4 + int(rng.exponential(3.0))
    return min(fanout, max_fanout)


def generate_design(
    spec: DesignSpec,
    cluster_size: int = 10,
    seed: int = 0,
    io_fraction: float = 0.08,
    mem_per_clbs: int = 24,
    mul_per_clbs: int = 30,
    locality: float = 0.9,
    neighborhood: int = 24,
    absorption: float = 0.62,
) -> Netlist:
    """Synthesize a packed netlist with the statistics of ``spec``.

    Parameters
    ----------
    spec:
        Target statistics (#LUTs, #FF, #Nets).
    cluster_size:
        LUTs packed per CLB (VTR's k6_N10 architecture packs 10).
    seed:
        Generator seed; the same (spec, seed) always yields the same netlist.
    io_fraction:
        I/O pads as a fraction of CLB count (clamped to at least 4).
    mem_per_clbs, mul_per_clbs:
        One memory (multiplier) block per this many CLBs.
    locality:
        Fraction of sink choices drawn from the driver's latent neighborhood;
        the remainder are uniform long-range connections.
    neighborhood:
        Number of latent nearest neighbors considered local.
    absorption:
        Fraction of ``spec.num_nets`` absorbed *inside* clusters by packing
        and therefore invisible to placement and routing.  VTR packing with
        large CLBs typically absorbs 50-70% of nets; only the remainder
        become inter-block nets here.
    """
    if not 0.0 <= locality <= 1.0:
        raise ValueError(f"locality must be in [0, 1], got {locality}")
    if not 0.0 <= absorption < 1.0:
        raise ValueError(f"absorption must be in [0, 1), got {absorption}")
    # Stable name hash: Python's hash() is salted per process and would
    # make "same (spec, seed)" produce different netlists across runs.
    rng = np.random.default_rng(seed ^ zlib.crc32(spec.name.encode()))

    num_clbs = max(1, math.ceil(spec.num_luts / cluster_size))
    num_ios = max(4, int(round(num_clbs * io_fraction)) * 2)
    num_mems = max(1, num_clbs // mem_per_clbs)
    num_muls = max(1, num_clbs // mul_per_clbs)

    blocks: list[Block] = []

    def add_blocks(count: int, block_type: BlockType, prefix: str) -> list[int]:
        ids = []
        for index in range(count):
            block_id = len(blocks)
            blocks.append(Block(block_id, f"{prefix}{index}", block_type))
            ids.append(block_id)
        return ids

    clb_ids = add_blocks(num_clbs, BlockType.CLB, "clb")
    io_ids = add_blocks(num_ios, BlockType.IO, "io")
    mem_ids = add_blocks(num_mems, BlockType.MEM, "mem")
    mul_ids = add_blocks(num_muls, BlockType.MUL, "mul")

    # Latent geometry: logic blocks clustered on a unit square, I/Os on the rim.
    positions = np.empty((len(blocks), 2))
    num_clusters = max(1, num_clbs // 12)
    centers = rng.random((num_clusters, 2))
    for block_id in (*clb_ids, *mem_ids, *mul_ids):
        center = centers[rng.integers(num_clusters)]
        positions[block_id] = np.clip(
            center + rng.normal(scale=0.08, size=2), 0.0, 1.0)
    for block_id in io_ids:
        edge = rng.integers(4)
        t = rng.random()
        positions[block_id] = [
            (t, 0.0), (t, 1.0), (0.0, t), (1.0, t)][edge]

    tree = cKDTree(positions)
    k_neighbors = min(neighborhood + 1, len(blocks))

    driver_pool = np.array(clb_ids + io_ids[: num_ios // 2] + mem_ids + mul_ids)
    sink_pool = np.array(clb_ids + io_ids[num_ios // 2:] + mem_ids + mul_ids)
    max_fanout = max(2, len(blocks) // 4)

    num_external = max(num_clbs + 4, int(round(spec.num_nets * (1 - absorption))))
    nets: list[Net] = []
    for net_index in range(num_external):
        driver = int(driver_pool[rng.integers(len(driver_pool))])
        fanout = _sample_fanout(rng, max_fanout)
        _, neighbor_ids = tree.query(positions[driver], k=k_neighbors)
        neighbor_ids = np.atleast_1d(neighbor_ids)
        sinks: list[int] = []
        attempts = 0
        while len(sinks) < fanout and attempts < 8 * fanout + 16:
            attempts += 1
            if rng.random() < locality and len(neighbor_ids) > 1:
                candidate = int(neighbor_ids[1 + rng.integers(len(neighbor_ids) - 1)])
            else:
                candidate = int(sink_pool[rng.integers(len(sink_pool))])
            if candidate != driver and candidate not in sinks:
                sinks.append(candidate)
        if not sinks:
            fallback = int(sink_pool[rng.integers(len(sink_pool))])
            if fallback == driver:
                fallback = clb_ids[0] if driver != clb_ids[0] else io_ids[0]
            sinks.append(fallback)
        nets.append(Net(net_index, f"net{net_index}", driver, tuple(sinks)))

    stats = DesignStats(num_luts=spec.num_luts, num_ffs=spec.num_ffs)
    return Netlist(spec.name, blocks, nets, stats)


def minimum_architecture_size(netlist: Netlist,
                              utilization: float = 0.6) -> int:
    """Smallest square grid width that fits the netlist.

    Sized so CLBs occupy at most ``utilization`` of the CLB sites, with the
    paper-style column pattern (memory at x=3(+10k), multipliers at x=7(+10k))
    and the I/O ring taken into account.
    """
    from repro.fpga.arch import paper_architecture

    width = 4
    while width < 200:
        arch = paper_architecture(width)
        fits = (
            netlist.count_type(BlockType.CLB)
            <= int(arch.capacity(BlockType.CLB) * utilization)
            and netlist.count_type(BlockType.IO) <= arch.capacity(BlockType.IO)
            and netlist.count_type(BlockType.MEM) <= arch.capacity(BlockType.MEM)
            and netlist.count_type(BlockType.MUL) <= arch.capacity(BlockType.MUL)
        )
        if fits:
            return width
        width += 1
    raise ValueError(f"netlist {netlist.name} too large for supported grids")
