"""VPR-style simulated-annealing placer.

Reproduces the placement stage the paper sweeps to build its dataset: the
classic adaptive annealing schedule (Betz & Rose) with the VPR options the
paper lists — ``seed``, ``ALPHA_T``, ``INNER_NUM`` and ``place_algorithm`` —
exposed on :class:`PlacerOptions`.  A snapshot callback streams intermediate
placements for the paper's Section 5.4 real-time forecasting application.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.fpga.arch import BlockType, FpgaArchitecture, Site
from repro.fpga.netlist import Netlist
from repro.fpga.placement import CostModel, Placement, make_cost_model


@dataclass(frozen=True)
class PlacerOptions:
    """The VPR placement options the paper sweeps (Section 5, Datasets)."""

    seed: int = 1
    alpha_t: float | None = None      # fixed cooling rate; None = adaptive VPR
    inner_num: float = 1.0            # moves per temperature multiplier
    place_algorithm: str = "bounding_box"
    initial_temp_scale: float = 20.0  # T0 = scale * std(random move deltas)
    exit_temp_fraction: float = 0.005  # stop when T < frac * cost / num_nets
    max_temperatures: int = 120
    rlim_min: float = 1.0


@dataclass
class PlacerResult:
    """Output of one annealing run."""

    placement: Placement
    final_cost: float
    initial_cost: float
    num_moves: int
    num_accepted: int
    temperatures: list[float] = field(default_factory=list)
    cost_trace: list[float] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float:
        return self.num_accepted / self.num_moves if self.num_moves else 0.0

    @property
    def improvement(self) -> float:
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


SnapshotCallback = Callable[[int, float, Placement], None]


class SimulatedAnnealingPlacer:
    """Adaptive simulated annealing over legal placements."""

    def __init__(self, netlist: Netlist, arch: FpgaArchitecture,
                 options: PlacerOptions | None = None):
        self.netlist = netlist
        self.arch = arch
        self.options = options if options is not None else PlacerOptions()
        self.cost_model: CostModel = make_cost_model(
            self.options.place_algorithm, netlist, arch)
        self._site_pools = {
            block_type: list(arch.sites_for(block_type))
            for block_type in BlockType
        }
        self._movable = [block.id for block in netlist.blocks]

    # -- public API -----------------------------------------------------------

    def place(self, snapshot_callback: SnapshotCallback | None = None,
              snapshot_every: int = 1) -> PlacerResult:
        """Run the full annealing schedule and return the final placement."""
        options = self.options
        rng = np.random.default_rng(options.seed)
        placement = Placement.random(self.netlist, self.arch, rng)
        self.cost_model.refresh(placement)
        cost = self.cost_model.total(placement)
        initial_cost = cost

        temperature = self._initial_temperature(placement, rng)
        rlim = float(max(self.arch.width, self.arch.height))
        moves_per_temp = max(
            8, int(options.inner_num * self.netlist.num_blocks ** (4 / 3)))

        result = PlacerResult(
            placement=placement, final_cost=cost, initial_cost=initial_cost,
            num_moves=0, num_accepted=0)

        for temp_index in range(options.max_temperatures):
            self.cost_model.refresh(placement)
            cost = self.cost_model.total(placement)
            accepted = 0
            for _ in range(moves_per_temp):
                delta, applied = self._try_move(placement, rng, rlim,
                                                temperature)
                result.num_moves += 1
                if applied:
                    accepted += 1
                    cost += delta
            result.num_accepted += accepted
            result.temperatures.append(temperature)
            result.cost_trace.append(cost)

            if snapshot_callback is not None and temp_index % snapshot_every == 0:
                snapshot_callback(temp_index, temperature, placement)

            success_rate = accepted / moves_per_temp
            temperature *= self._cooling_rate(success_rate)
            rlim = self._update_rlim(rlim, success_rate)
            if temperature < (options.exit_temp_fraction * cost
                              / max(1, self.netlist.num_nets)):
                break

        self.cost_model.refresh(placement)
        result.final_cost = self.cost_model.total(placement)
        return result

    # -- schedule helpers ------------------------------------------------------

    def _initial_temperature(self, placement: Placement,
                             rng: np.random.Generator) -> float:
        """VPR rule: T0 = 20 * std of deltas over num_blocks random moves."""
        deltas = []
        num_probe = min(max(16, self.netlist.num_blocks), 256)
        for _ in range(num_probe):
            delta, applied = self._try_move(
                placement, rng, rlim=float(max(self.arch.width,
                                               self.arch.height)),
                temperature=float("inf"))
            if applied:
                deltas.append(delta)
        std = float(np.std(deltas)) if deltas else 1.0
        return max(self.options.initial_temp_scale * std, 1e-6)

    def _cooling_rate(self, success_rate: float) -> float:
        """Fixed ALPHA_T when provided, else VPR's adaptive schedule."""
        if self.options.alpha_t is not None:
            return self.options.alpha_t
        if success_rate > 0.96:
            return 0.5
        if success_rate > 0.8:
            return 0.9
        if success_rate > 0.15:
            return 0.95
        return 0.8

    def _update_rlim(self, rlim: float, success_rate: float) -> float:
        """VPR aims for 44% acceptance by shrinking/growing the move range."""
        rlim *= 1.0 - 0.44 + success_rate
        return float(np.clip(rlim, self.options.rlim_min,
                             max(self.arch.width, self.arch.height)))

    # -- move engine ------------------------------------------------------------

    def _try_move(self, placement: Placement, rng: np.random.Generator,
                  rlim: float, temperature: float) -> tuple[float, bool]:
        """Propose one move/swap; apply it with Metropolis acceptance.

        Returns ``(delta_cost, applied)``.
        """
        block = self.netlist.blocks[
            self._movable[rng.integers(len(self._movable))]]
        target = self._random_target(placement, block.id, block.type, rlim, rng)
        if target is None:
            return 0.0, False
        occupant = placement.occupant(target)
        if occupant == block.id:
            return 0.0, False

        affected = set(self.netlist.nets_of_block(block.id))
        if occupant is not None:
            affected |= set(self.netlist.nets_of_block(occupant))
        old_cost = sum(self.cost_model.net_cost(n, placement) for n in affected)

        if occupant is None:
            old_site = placement.site_of[block.id]
            placement.move(block.id, target)
            revert = lambda: placement.move(block.id, old_site)  # noqa: E731
        else:
            placement.swap(block.id, occupant)
            revert = lambda: placement.swap(block.id, occupant)  # noqa: E731

        new_cost = sum(self.cost_model.net_cost(n, placement) for n in affected)
        delta = new_cost - old_cost
        if delta <= 0 or (temperature > 0
                          and rng.random() < math.exp(-delta / temperature)):
            return delta, True
        revert()
        return 0.0, False

    def _random_target(self, placement: Placement, block_id: int,
                       block_type: BlockType, rlim: float,
                       rng: np.random.Generator) -> Site | None:
        """Random compatible site within the range limit (rejection sample)."""
        pool = self._site_pools[block_type]
        x0 = int(placement.xs[block_id])
        y0 = int(placement.ys[block_id])
        for _ in range(12):
            site = pool[rng.integers(len(pool))]
            if abs(site.x - x0) <= rlim and abs(site.y - y0) <= rlim:
                return site
        return None
