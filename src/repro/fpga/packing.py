"""LUT/FF-to-CLB packing (the "Packing" stage of the paper's Figure 1).

The synthetic generator in :mod:`repro.fpga.generators` emits already-packed
netlists with an assumed net-absorption ratio.  This module provides the
real thing: a flat primitive netlist (LUTs, FFs, I/Os, memories,
multipliers) and a VPack-style greedy clusterer that packs LUT/FF pairs
into cluster-based logic blocks, absorbing the nets that become internal.

The measured absorption of the packer on generated flat netlists is the
empirical justification for the generator's ``absorption`` default (see
``tests/test_fpga_packing.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.fpga.arch import BlockType
from repro.fpga.netlist import Block, DesignStats, Net, Netlist


class PrimitiveType(str, Enum):
    """Pre-packing primitive kinds."""

    LUT = "lut"
    FF = "ff"
    IO = "io"
    MEM = "mem"
    MUL = "mul"


@dataclass(frozen=True)
class Primitive:
    """One flat-netlist element."""

    id: int
    name: str
    type: PrimitiveType


@dataclass(frozen=True)
class FlatNet:
    """A net over primitives: one driver, one or more sinks."""

    id: int
    driver: int
    sinks: tuple[int, ...]


@dataclass
class FlatNetlist:
    """Technology-mapped netlist before packing."""

    name: str
    primitives: list[Primitive]
    nets: list[FlatNet]

    def count_type(self, kind: PrimitiveType) -> int:
        return sum(1 for p in self.primitives if p.type is kind)

    def nets_of(self) -> dict[int, list[int]]:
        """Primitive id -> incident net ids."""
        index: dict[int, list[int]] = {p.id: [] for p in self.primitives}
        for net in self.nets:
            seen = set()
            for terminal in (net.driver, *net.sinks):
                if terminal not in seen:
                    index[terminal].append(net.id)
                    seen.add(terminal)
        return index


def generate_flat_design(name: str, num_luts: int, num_ffs: int,
                         num_nets: int, seed: int = 0,
                         io_fraction: float = 0.08,
                         mem_per_luts: int = 96,
                         mul_per_luts: int = 120) -> FlatNetlist:
    """Synthesize a flat LUT/FF netlist with locality structure.

    LUT->FF pairs are chained (a FF latches its LUT's output), clusters of
    LUTs share nets, and a fraction of connections are long-range — the
    same latent-geometry recipe as the packed generator, at primitive
    granularity.
    """
    import zlib

    # Stable name hash (Python's hash() is salted per process).
    rng = np.random.default_rng(seed ^ zlib.crc32(name.encode()))
    primitives: list[Primitive] = []

    def add(count: int, kind: PrimitiveType, prefix: str) -> list[int]:
        ids = []
        for index in range(count):
            pid = len(primitives)
            primitives.append(Primitive(pid, f"{prefix}{index}", kind))
            ids.append(pid)
        return ids

    lut_ids = add(num_luts, PrimitiveType.LUT, "lut")
    ff_ids = add(num_ffs, PrimitiveType.FF, "ff")
    io_ids = add(max(4, int(num_luts * io_fraction)), PrimitiveType.IO, "io")
    mem_ids = add(max(1, num_luts // mem_per_luts), PrimitiveType.MEM, "mem")
    mul_ids = add(max(1, num_luts // mul_per_luts), PrimitiveType.MUL, "mul")

    positions = rng.random((len(primitives), 2))
    # FFs sit on top of their LUT: co-locate pairs.
    for index, ff in enumerate(ff_ids):
        positions[ff] = positions[lut_ids[index % num_luts]]

    from scipy.spatial import cKDTree

    tree = cKDTree(positions)
    k = min(17, len(primitives))
    drivers = np.array(lut_ids + io_ids[: len(io_ids) // 2] + mem_ids
                       + mul_ids)
    sinks_pool = np.array(lut_ids + ff_ids + io_ids[len(io_ids) // 2:]
                          + mem_ids + mul_ids)

    nets: list[FlatNet] = []
    # LUT -> FF latch nets first (these are the classic absorbed nets).
    for index, ff in enumerate(ff_ids):
        driver = lut_ids[index % num_luts]
        nets.append(FlatNet(len(nets), driver, (ff,)))
    while len(nets) < num_nets:
        driver = int(drivers[rng.integers(len(drivers))])
        fanout = 1 + int(rng.exponential(1.2))
        _, neighbors = tree.query(positions[driver], k=k)
        neighbors = np.atleast_1d(neighbors)
        chosen: list[int] = []
        attempts = 0
        while len(chosen) < fanout and attempts < 6 * fanout + 8:
            attempts += 1
            if rng.random() < 0.85 and len(neighbors) > 1:
                candidate = int(neighbors[1 + rng.integers(len(neighbors) - 1)])
            else:
                candidate = int(sinks_pool[rng.integers(len(sinks_pool))])
            if candidate != driver and candidate not in chosen:
                chosen.append(candidate)
        if not chosen:
            continue
        nets.append(FlatNet(len(nets), driver, tuple(chosen)))
    return FlatNetlist(name, primitives, nets)


_PRIM_TO_BLOCK = {
    PrimitiveType.IO: BlockType.IO,
    PrimitiveType.MEM: BlockType.MEM,
    PrimitiveType.MUL: BlockType.MUL,
}


@dataclass
class PackingResult:
    """Packed netlist plus statistics about what packing absorbed."""

    netlist: Netlist
    clusters: list[list[int]]            # primitive ids per CLB
    absorbed_nets: int
    external_nets: int

    @property
    def absorption(self) -> float:
        total = self.absorbed_nets + self.external_nets
        return self.absorbed_nets / total if total else 0.0


def pack(flat: FlatNetlist, cluster_size: int = 10,
         allow_unrelated: bool = True) -> PackingResult:
    """Greedy VPack-style clustering of LUT/FF primitives into CLBs.

    Seeds each cluster with the unclustered LUT of highest connectivity,
    then greedily adds the primitive sharing the most nets with the cluster
    (attraction function) until the cluster is full.  When no connected
    candidate remains and ``allow_unrelated`` is set (VPR's default
    "unrelated clustering"), the fullest-connectivity leftover primitive
    fills the slot instead.  A FF may ride along with its driving LUT
    without consuming a LUT slot, as in VTR architectures; nets whose
    terminals all land in one cluster are absorbed.
    """
    if cluster_size < 1:
        raise ValueError("cluster_size must be >= 1")
    incident = flat.nets_of()
    packable = {p.id for p in flat.primitives
                if p.type in (PrimitiveType.LUT, PrimitiveType.FF)}
    unclustered = set(packable)
    net_terms = {net.id: set((net.driver, *net.sinks)) for net in flat.nets}

    clusters: list[list[int]] = []
    while unclustered:
        seed = max(
            (p for p in unclustered),
            key=lambda p: (len(incident[p]), -p))
        cluster = [seed]
        unclustered.discard(seed)
        cluster_nets = set(incident[seed])
        luts_used = 1 if flat.primitives[seed].type is PrimitiveType.LUT else 0
        while luts_used < cluster_size and unclustered:
            # Attraction: candidates sharing nets with the cluster.
            scores: dict[int, int] = {}
            for net_id in cluster_nets:
                for terminal in net_terms[net_id]:
                    if terminal in unclustered:
                        scores[terminal] = scores.get(terminal, 0) + 1
            if scores:
                best = max(scores, key=lambda p: (scores[p], -p))
            elif allow_unrelated:
                best = max(unclustered,
                           key=lambda p: (len(incident[p]), -p))
            else:
                break
            cluster.append(best)
            unclustered.discard(best)
            cluster_nets.update(incident[best])
            if flat.primitives[best].type is PrimitiveType.LUT:
                luts_used += 1
        clusters.append(cluster)

    # Build the packed netlist: one CLB block per cluster, plus pass-through
    # blocks for I/O / memory / multiplier primitives.
    prim_to_block: dict[int, int] = {}
    blocks: list[Block] = []
    for index, cluster in enumerate(clusters):
        block_id = len(blocks)
        blocks.append(Block(block_id, f"clb{index}", BlockType.CLB))
        for prim in cluster:
            prim_to_block[prim] = block_id
    for prim in flat.primitives:
        if prim.type in _PRIM_TO_BLOCK:
            block_id = len(blocks)
            blocks.append(Block(block_id, prim.name,
                                _PRIM_TO_BLOCK[prim.type]))
            prim_to_block[prim.id] = block_id

    nets: list[Net] = []
    absorbed = 0
    for net in flat.nets:
        driver_block = prim_to_block[net.driver]
        sink_blocks = []
        for sink in net.sinks:
            block = prim_to_block[sink]
            if block != driver_block and block not in sink_blocks:
                sink_blocks.append(block)
        if not sink_blocks:
            absorbed += 1
            continue
        nets.append(Net(len(nets), f"net{len(nets)}", driver_block,
                        tuple(sink_blocks)))

    stats = DesignStats(num_luts=flat.count_type(PrimitiveType.LUT),
                        num_ffs=flat.count_type(PrimitiveType.FF))
    packed = Netlist(flat.name, blocks, nets, stats)
    return PackingResult(netlist=packed, clusters=clusters,
                         absorbed_nets=absorbed, external_nets=len(nets))


def generate_packed_design(name: str, num_luts: int, num_ffs: int,
                           num_nets: int, cluster_size: int = 10,
                           seed: int = 0) -> PackingResult:
    """Flat synthesis followed by packing: the full Figure 1 front half."""
    flat = generate_flat_design(name, num_luts, num_ffs, num_nets, seed=seed)
    return pack(flat, cluster_size=cluster_size)
