"""Packed netlist representation: Graph(V, E) of the paper's Section 2.2.

A :class:`Netlist` is a hypergraph — blocks (cluster-based logic blocks,
I/O pads, memory and multiplier blocks) connected by multi-terminal nets,
each driven by one block and fanning out to one or more sinks.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.fpga.arch import BlockType


@dataclass(frozen=True)
class Block:
    """A placeable element of the packed netlist."""

    id: int
    name: str
    type: BlockType


@dataclass(frozen=True)
class Net:
    """A multi-terminal net: one driver block, one or more sink blocks."""

    id: int
    name: str
    driver: int
    sinks: tuple[int, ...]

    @property
    def fanout(self) -> int:
        return len(self.sinks)

    @property
    def terminals(self) -> tuple[int, ...]:
        return (self.driver, *self.sinks)


@dataclass
class DesignStats:
    """Pre-packing statistics, carried for reporting (Table 2 columns)."""

    num_luts: int = 0
    num_ffs: int = 0


class Netlist:
    """A packed design: blocks plus nets, with derived indexes.

    The class validates its invariants on construction: net terminals
    reference existing blocks, drivers do not appear among their own sinks,
    and every net has at least one sink.
    """

    def __init__(self, name: str, blocks: list[Block], nets: list[Net],
                 stats: DesignStats | None = None):
        self.name = name
        self.blocks = list(blocks)
        self.nets = list(nets)
        self.stats = stats if stats is not None else DesignStats()
        self._validate()
        self._block_nets: dict[int, tuple[int, ...]] = self._index_block_nets()

    def _validate(self) -> None:
        ids = [block.id for block in self.blocks]
        if ids != list(range(len(ids))):
            raise ValueError("block ids must be dense 0..n-1 in order")
        net_ids = [net.id for net in self.nets]
        if net_ids != list(range(len(net_ids))):
            raise ValueError("net ids must be dense 0..n-1 in order")
        num_blocks = len(self.blocks)
        for net in self.nets:
            if not net.sinks:
                raise ValueError(f"net {net.name} has no sinks")
            for terminal in net.terminals:
                if not 0 <= terminal < num_blocks:
                    raise ValueError(
                        f"net {net.name} references unknown block {terminal}")
            if net.driver in net.sinks:
                raise ValueError(f"net {net.name} drives itself")

    def _index_block_nets(self) -> dict[int, tuple[int, ...]]:
        index: dict[int, list[int]] = {block.id: [] for block in self.blocks}
        for net in self.nets:
            seen = set()
            for terminal in net.terminals:
                if terminal not in seen:
                    index[terminal].append(net.id)
                    seen.add(terminal)
        return {block_id: tuple(nets) for block_id, nets in index.items()}

    # -- queries ---------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def blocks_of_type(self, block_type: BlockType) -> list[Block]:
        return [block for block in self.blocks if block.type is block_type]

    def count_type(self, block_type: BlockType) -> int:
        return sum(1 for block in self.blocks if block.type is block_type)

    def nets_of_block(self, block_id: int) -> tuple[int, ...]:
        """Ids of nets incident to a block (used for incremental cost)."""
        return self._block_nets[block_id]

    def average_fanout(self) -> float:
        if not self.nets:
            return 0.0
        return sum(net.fanout for net in self.nets) / len(self.nets)

    # -- conversions -----------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """Directed graph view: driver -> sink edges, block attrs on nodes."""
        graph = nx.DiGraph(name=self.name)
        for block in self.blocks:
            graph.add_node(block.id, name=block.name, type=block.type.value)
        for net in self.nets:
            for sink in net.sinks:
                if graph.has_edge(net.driver, sink):
                    graph[net.driver][sink]["weight"] += 1
                else:
                    graph.add_edge(net.driver, sink, weight=1, net=net.id)
        return graph

    def levelize(self) -> dict[int, int]:
        """Topological level per block (combinational depth proxy).

        Cycles (from sequential feedback) are broken by ignoring back edges
        discovered on the fly; levels feed the criticality placement mode.
        """
        graph = self.to_networkx()
        levels = {block.id: 0 for block in self.blocks}
        try:
            order = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible:
            cycle_edges = list(nx.selfloop_edges(graph))
            graph.remove_edges_from(cycle_edges)
            while True:
                try:
                    order = list(nx.topological_sort(graph))
                    break
                except nx.NetworkXUnfeasible:
                    cycle = nx.find_cycle(graph)
                    graph.remove_edge(*cycle[0][:2])
        for node in order:
            for successor in graph.successors(node):
                levels[successor] = max(levels[successor], levels[node] + 1)
        return levels

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Netlist({self.name!r}, blocks={self.num_blocks}, "
                f"nets={self.num_nets})")
