"""Static timing analysis over placed (and optionally routed) designs.

A lightweight STA: the netlist's driver-to-sink edges form a timing graph
(sequential feedback broken as in :meth:`Netlist.levelize`); each edge's
delay is a logic delay plus a wire delay taken either from placement
geometry (Manhattan distance) or, when a routing result is supplied, from
the actual routed tree size.  Used to validate the ``criticality``
placement mode (the ``path_timing_driven`` stand-in): timing-driven
placements should carry shorter critical paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.fpga.netlist import Netlist
from repro.fpga.placement import Placement
from repro.fpga.router import RoutingResult


@dataclass(frozen=True)
class TimingReport:
    """Critical-path summary."""

    critical_delay: float
    critical_path: tuple[int, ...]   # block ids, source to endpoint
    mean_arrival: float

    @property
    def depth(self) -> int:
        return len(self.critical_path)


class TimingAnalyzer:
    """Arrival-time propagation over the design's timing graph."""

    def __init__(self, netlist: Netlist, placement: Placement,
                 routing: RoutingResult | None = None,
                 logic_delay: float = 1.0, wire_delay: float = 0.1):
        self.netlist = netlist
        self.placement = placement
        self.routing = routing
        self.logic_delay = logic_delay
        self.wire_delay = wire_delay
        self._graph = self._build_graph()

    def _edge_delay(self, net_id: int, driver: int, sink: int) -> float:
        if self.routing is not None:
            tree = self.routing.net_trees.get(net_id)
            if tree:
                # Routed wire delay: proportional to the tree's segment
                # count (a linear-delay interconnect model).
                return self.logic_delay + self.wire_delay * len(tree)
        dx = abs(int(self.placement.xs[driver]) - int(self.placement.xs[sink]))
        dy = abs(int(self.placement.ys[driver]) - int(self.placement.ys[sink]))
        return self.logic_delay + self.wire_delay * (dx + dy)

    def _build_graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        graph.add_nodes_from(block.id for block in self.netlist.blocks)
        for net in self.netlist.nets:
            for sink in net.sinks:
                delay = self._edge_delay(net.id, net.driver, sink)
                existing = graph.get_edge_data(net.driver, sink)
                if existing is None or existing["delay"] < delay:
                    graph.add_edge(net.driver, sink, delay=delay)
        # Break sequential feedback so arrival propagation terminates.
        graph.remove_edges_from(nx.selfloop_edges(graph))
        while True:
            try:
                nx.find_cycle(graph)
            except nx.NetworkXNoCycle:
                break
            cycle = nx.find_cycle(graph)
            graph.remove_edge(*cycle[0][:2])
        return graph

    def arrival_times(self) -> dict[int, float]:
        """Latest arrival time at every block (sources arrive at 0)."""
        arrivals = {node: 0.0 for node in self._graph.nodes}
        for node in nx.topological_sort(self._graph):
            for _, successor, data in self._graph.out_edges(node, data=True):
                candidate = arrivals[node] + data["delay"]
                if candidate > arrivals[successor]:
                    arrivals[successor] = candidate
        return arrivals

    def report(self) -> TimingReport:
        """Critical path: the endpoint with the latest arrival, traced back."""
        arrivals = self.arrival_times()
        endpoint = max(arrivals, key=arrivals.get)
        path = [endpoint]
        node = endpoint
        while True:
            predecessors = [
                (pred, data) for pred, _, data
                in self._graph.in_edges(node, data=True)
                if abs(arrivals[pred] + data["delay"] - arrivals[node]) < 1e-9
            ]
            if not predecessors:
                break
            node = predecessors[0][0]
            path.append(node)
        path.reverse()
        values = list(arrivals.values())
        return TimingReport(
            critical_delay=arrivals[endpoint],
            critical_path=tuple(path),
            mean_arrival=sum(values) / len(values) if values else 0.0,
        )
