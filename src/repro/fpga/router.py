"""PathFinder negotiated-congestion router over a channel-segment graph.

The routing fabric is modelled at the granularity the paper's heat maps are
painted at: one node per *channel segment* — the stretch of horizontal channel
above each tile and of vertical channel to the right of each tile (plus the
ring segments between the I/O pads and the outermost tile rows/columns).
Each segment holds ``channel_width`` wires.

Nets are routed as Steiner-ish trees grown sink-by-sink with A* searches,
under the classic PathFinder cost

    cost(n) = (1 + hist(n)) * (1 + pres_fac * max(0, occ(n) + 1 - cap(n)))

with history updates and present-factor escalation per iteration until no
segment is overused.  Per-segment ``occupancy / capacity`` at convergence is
the routing *utilization* the cGAN learns to forecast.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from repro.fpga.arch import BlockType, FpgaArchitecture, Site
from repro.fpga.netlist import Netlist
from repro.fpga.placement import Placement


class ChannelGraph:
    """Channel-segment adjacency for an architecture.

    Horizontal segments ``H(x, y)`` for ``x in 1..W, y in 0..H`` sit in the
    channel between row ``y`` and row ``y+1`` (``y=0`` borders the I/O ring).
    Vertical segments ``V(x, y)`` for ``x in 0..W, y in 1..H`` sit between
    column ``x`` and column ``x+1``.  Segments meet at switchboxes on shared
    channel corners.
    """

    def __init__(self, arch: FpgaArchitecture):
        self.arch = arch
        width, height = arch.width, arch.height
        self.num_h = width * (height + 1)
        self.num_v = (width + 1) * height
        self.num_nodes = self.num_h + self.num_v

        coords = np.empty((self.num_nodes, 2), dtype=np.float64)
        for x in range(1, width + 1):
            for y in range(0, height + 1):
                coords[self.h_index(x, y)] = (x, y + 0.5)
        for x in range(0, width + 1):
            for y in range(1, height + 1):
                coords[self.v_index(x, y)] = (x + 0.5, y)
        self.coords = coords

        adjacency: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for x in range(1, width + 1):
            for y in range(0, height + 1):
                node = self.h_index(x, y)
                if x > 1:
                    adjacency[node].append(self.h_index(x - 1, y))
                if x < width:
                    adjacency[node].append(self.h_index(x + 1, y))
                # Corners (x-1, y) and (x, y) connect to vertical segments.
                for cx in (x - 1, x):
                    for vy in (y, y + 1):
                        if 0 <= cx <= width and 1 <= vy <= height:
                            adjacency[node].append(self.v_index(cx, vy))
        for x in range(0, width + 1):
            for y in range(1, height + 1):
                node = self.v_index(x, y)
                if y > 1:
                    adjacency[node].append(self.v_index(x, y - 1))
                if y < height:
                    adjacency[node].append(self.v_index(x, y + 1))
                # Corners (x, y-1) and (x, y) connect to horizontal segments.
                for cy in (y - 1, y):
                    for hx in (x, x + 1):
                        if 1 <= hx <= width and 0 <= cy <= height:
                            adjacency[node].append(self.h_index(hx, cy))
        self.adjacency = [np.array(sorted(set(n)), dtype=np.int32)
                          for n in adjacency]
        # Plain-python mirrors for the A* inner loop.
        self.adjacency_lists = [sorted(set(n)) for n in adjacency]
        self.coord_x = coords[:, 0].tolist()
        self.coord_y = coords[:, 1].tolist()
        self.capacity = np.full(self.num_nodes, arch.channel_width,
                                dtype=np.int32)

    def h_index(self, x: int, y: int) -> int:
        """Node id of horizontal segment H(x, y)."""
        if not (1 <= x <= self.arch.width and 0 <= y <= self.arch.height):
            raise ValueError(f"H({x},{y}) out of range")
        return y * self.arch.width + (x - 1)

    def v_index(self, x: int, y: int) -> int:
        """Node id of vertical segment V(x, y)."""
        if not (0 <= x <= self.arch.width and 1 <= y <= self.arch.height):
            raise ValueError(f"V({x},{y}) out of range")
        return self.num_h + x * self.arch.height + (y - 1)

    def tile_access(self, x: int, y: int) -> list[int]:
        """Segments a pin on interior tile (x, y) can directly reach."""
        arch = self.arch
        if not (1 <= x <= arch.width and 1 <= y <= arch.height):
            raise ValueError(f"tile ({x},{y}) not interior")
        return [
            self.h_index(x, y - 1),   # channel below
            self.h_index(x, y),       # channel above
            self.v_index(x - 1, y),   # channel left
            self.v_index(x, y),       # channel right
        ]

    def block_access(self, site: Site, block_type: BlockType) -> list[int]:
        """Segments adjacent to a block anchored at ``site``."""
        arch = self.arch
        if block_type is BlockType.IO:
            x, y = site.x, site.y
            if x == 0:
                return [self.v_index(0, y)]
            if x == arch.width + 1:
                return [self.v_index(arch.width, y)]
            if y == 0:
                return [self.h_index(x, 0)]
            if y == arch.height + 1:
                return [self.h_index(x, arch.height)]
            raise ValueError(f"I/O site {site} not on the ring")
        height = arch.block_height(block_type)
        access: list[int] = []
        for row in range(site.y, site.y + height):
            access.extend(self.tile_access(site.x, row))
        return sorted(set(access))


@dataclass(frozen=True)
class RouterOptions:
    """PathFinder knobs (defaults follow common VPR settings)."""

    max_iterations: int = 12
    pres_fac_initial: float = 0.6
    pres_fac_mult: float = 1.7
    history_increment: float = 0.4
    astar_weight: float = 1.0  # heuristic multiplier (1.0 = admissible-ish)


@dataclass
class RoutingResult:
    """Routed design: per-segment occupancy and utilization."""

    graph: ChannelGraph
    occupancy: np.ndarray
    converged: bool
    iterations: int
    wirelength: int
    route_seconds: float
    net_trees: dict[int, frozenset[int]] = field(repr=False,
                                                 default_factory=dict)

    @property
    def utilization(self) -> np.ndarray:
        """Per-segment occupancy / capacity (may exceed 1 if unresolved)."""
        return self.occupancy / self.graph.capacity

    @property
    def overuse(self) -> int:
        return int(np.maximum(
            self.occupancy - self.graph.capacity, 0).sum())

    @property
    def mean_utilization(self) -> float:
        return float(self.utilization.mean())

    @property
    def max_utilization(self) -> float:
        return float(self.utilization.max())

    def h_utilization(self) -> np.ndarray:
        """Horizontal-channel utilization, shape (width, height+1)."""
        arch = self.graph.arch
        util = self.utilization[: self.graph.num_h]
        return util.reshape(arch.height + 1, arch.width).T

    def v_utilization(self) -> np.ndarray:
        """Vertical-channel utilization, shape (width+1, height)."""
        arch = self.graph.arch
        util = self.utilization[self.graph.num_h:]
        return util.reshape(arch.width + 1, arch.height)


class PathFinderRouter:
    """Negotiated-congestion router for a placed netlist."""

    def __init__(self, netlist: Netlist, arch: FpgaArchitecture,
                 placement: Placement,
                 options: RouterOptions | None = None,
                 graph: ChannelGraph | None = None):
        self.netlist = netlist
        self.arch = arch
        self.placement = placement
        self.options = options if options is not None else RouterOptions()
        self.graph = graph if graph is not None else ChannelGraph(arch)
        self._access_cache: dict[int, list[int]] = {}

    # -- public API --------------------------------------------------------------

    def route(self) -> RoutingResult:
        """Run PathFinder until no overuse or the iteration cap."""
        start = time.perf_counter()
        graph = self.graph
        options = self.options
        occupancy = np.zeros(graph.num_nodes, dtype=np.int32)
        history = np.zeros(graph.num_nodes, dtype=np.float64)
        trees: dict[int, frozenset[int]] = {}

        # Longest nets first: they have the fewest detour options.
        order = sorted(
            self.netlist.nets,
            key=lambda net: -self._net_span(net.id))

        pres_fac = options.pres_fac_initial
        iterations = 0
        converged = False
        capacity = graph.capacity
        for iteration in range(options.max_iterations):
            iterations = iteration + 1
            if iteration == 0:
                to_route = [net.id for net in order]
            else:
                overused = occupancy > capacity
                to_route = [net_id for net_id, tree in trees.items()
                            if any(overused[node] for node in tree)]
                for net_id in to_route:
                    for node in trees[net_id]:
                        occupancy[node] -= 1
                    del trees[net_id]

            # PathFinder node cost, vectorized once per iteration and patched
            # per node as occupancy evolves (python list: the A* inner loop
            # indexes it millions of times).
            cost_vec = ((1.0 + history)
                        * (1.0 + pres_fac
                           * np.maximum(occupancy + 1 - capacity, 0)))
            self._cost_list = cost_vec.tolist()
            self._history_list = history.tolist()
            self._occ_list = occupancy.tolist()
            self._cap_list = capacity.tolist()
            self._pres_fac = pres_fac

            for net_id in to_route:
                tree = self._route_net(net_id)
                trees[net_id] = tree
                for node in tree:
                    occupancy[node] += 1
                    self._occ_list[node] += 1
                    self._refresh_node_cost(node)

            over = occupancy - capacity
            if not np.any(over > 0):
                converged = True
                break
            history += options.history_increment * np.maximum(over, 0)
            pres_fac *= options.pres_fac_mult

        wirelength = int(sum(len(tree) for tree in trees.values()))
        return RoutingResult(
            graph=graph,
            occupancy=occupancy,
            converged=converged,
            iterations=iterations,
            wirelength=wirelength,
            route_seconds=time.perf_counter() - start,
            net_trees=trees,
        )

    # -- internals -----------------------------------------------------------------

    def _block_access(self, block_id: int) -> list[int]:
        cached = self._access_cache.get(block_id)
        if cached is None:
            block = self.netlist.blocks[block_id]
            site = self.placement.site_of[block_id]
            cached = self.graph.block_access(site, block.type)
            self._access_cache[block_id] = cached
        return cached

    def _net_span(self, net_id: int) -> int:
        net = self.netlist.nets[net_id]
        xs = self.placement.xs[list(net.terminals)]
        ys = self.placement.ys[list(net.terminals)]
        return int((xs.max() - xs.min()) + (ys.max() - ys.min()))

    def _refresh_node_cost(self, node: int) -> None:
        """Patch the cached cost list after an occupancy change at ``node``."""
        over = self._occ_list[node] + 1 - self._cap_list[node]
        congestion = 1.0 + (self._pres_fac * over if over > 0 else 0.0)
        self._cost_list[node] = (1.0 + self._history_list[node]) * congestion

    def _route_net(self, net_id: int) -> frozenset[int]:
        """Grow the net's routing tree sink by sink (nearest first)."""
        net = self.netlist.nets[net_id]
        driver_access = self._block_access(net.driver)
        tree: set[int] = set()

        dx = self.placement.xs[list(net.sinks)] - self.placement.xs[net.driver]
        dy = self.placement.ys[list(net.sinks)] - self.placement.ys[net.driver]
        sink_order = np.argsort(np.abs(dx) + np.abs(dy))

        for sink_pos in sink_order:
            sink = net.sinks[int(sink_pos)]
            targets = self._block_access(sink)
            sources = driver_access if not tree else list(tree) + driver_access
            path = self._shortest_path(sources, targets)
            tree.update(path)
        return frozenset(tree)

    def _shortest_path(self, sources: list[int],
                       targets: list[int]) -> list[int]:
        """A* over segments from any source to any target.

        Node costs come from the per-iteration cached cost list; the
        heuristic is the minimum Manhattan distance to any target segment.
        """
        graph = self.graph
        target_set = set(targets)
        shared = target_set.intersection(sources)
        if shared:
            return [next(iter(shared))]

        cost_list = self._cost_list
        adjacency = graph.adjacency_lists
        cx = graph.coord_x
        cy = graph.coord_y
        weight = self.options.astar_weight
        target_xy = [(cx[t], cy[t]) for t in target_set]

        h_cache: dict[int, float] = {}

        def heuristic(node: int) -> float:
            value = h_cache.get(node)
            if value is None:
                nx_, ny_ = cx[node], cy[node]
                value = weight * min(
                    abs(nx_ - tx) + abs(ny_ - ty) for tx, ty in target_xy)
                h_cache[node] = value
            return value

        dist: dict[int, float] = {}
        parent: dict[int, int] = {}
        frontier: list[tuple[float, float, int]] = []
        inf = float("inf")
        for source in set(sources):
            cost = cost_list[source]
            dist[source] = cost
            parent[source] = -1
            heapq.heappush(frontier, (cost + heuristic(source), cost, source))

        while frontier:
            _, cost, node = heapq.heappop(frontier)
            if cost > dist.get(node, inf):
                continue
            if node in target_set:
                path = [node]
                while parent[node] != -1:
                    node = parent[node]
                    path.append(node)
                return path
            for neighbor in adjacency[node]:
                next_cost = cost + cost_list[neighbor]
                if next_cost < dist.get(neighbor, inf):
                    dist[neighbor] = next_cost
                    parent[neighbor] = node
                    heapq.heappush(
                        frontier,
                        (next_cost + heuristic(neighbor), next_cost, neighbor))
        raise RuntimeError("disconnected routing graph (should not happen)")


def estimate_channel_width(netlist: Netlist, arch: FpgaArchitecture,
                           placement: Placement,
                           margin: float = 1.25) -> int:
    """VPR-style channel-width sizing.

    Routes the placement once on a copy of the architecture with effectively
    unbounded channels (so the router takes shortest paths) and returns
    ``margin`` times the peak segment occupancy.  VPR evaluates designs at
    ~1.2-1.3x the minimum routable channel width; datasets built at this width
    show meaningful utilization contrast without mass routing failures.
    """
    relaxed = FpgaArchitecture(
        width=arch.width,
        height=arch.height,
        io_capacity=arch.io_capacity,
        mem_columns=arch.mem_columns,
        mul_columns=arch.mul_columns,
        mem_height=arch.mem_height,
        mul_height=arch.mul_height,
        channel_width=10_000,
    )
    router = PathFinderRouter(
        netlist, relaxed, placement,
        options=RouterOptions(max_iterations=1))
    result = router.route()
    peak = int(result.occupancy.max())
    return max(4, int(np.ceil(margin * peak)))
