"""Trainer tests: epoch loop, evaluation, transfer fine-tuning."""

import numpy as np
import pytest

from repro.gan import Dataset, Pix2Pix, Pix2PixConfig, Pix2PixTrainer
from tests.conftest import make_dataset


@pytest.fixture
def trainer():
    model = Pix2Pix(Pix2PixConfig(image_size=16, base_filters=4,
                                  disc_filters=4, learning_rate=2e-3, seed=1))
    return Pix2PixTrainer(model, seed=1)


@pytest.fixture
def data():
    return make_dataset(4, size=16, design="a")


class TestFit:
    def test_history_lengths(self, trainer, data):
        history = trainer.fit(data, epochs=3)
        assert history.epochs == 3
        assert len(history.g_gan) == 3
        assert len(history.d_total) == 3
        assert all(s > 0 for s in history.epoch_seconds)

    def test_cumulative_history(self, trainer, data):
        trainer.fit(data, epochs=2)
        trainer.fit(data, epochs=1)
        assert trainer.history.epochs == 3

    def test_empty_dataset_raises(self, trainer):
        with pytest.raises(ValueError):
            trainer.fit(Dataset(), epochs=1)

    def test_training_reduces_l1(self, trainer, data):
        history = trainer.fit(data, epochs=12)
        assert history.g_l1[-1] < history.g_l1[0]

    def test_deterministic_given_seeds(self, data):
        def run():
            model = Pix2Pix(Pix2PixConfig(image_size=16, base_filters=4,
                                          disc_filters=4, seed=5))
            t = Pix2PixTrainer(model, seed=5)
            return t.fit(data, epochs=2).g_total

        assert run() == pytest.approx(run())


class TestEvaluate:
    def test_accuracy_in_unit_interval(self, trainer, data):
        trainer.fit(data, epochs=1)
        scores = trainer.evaluate(data)
        assert len(scores) == len(data)
        assert all(0.0 <= s <= 1.0 for s in scores)

    def test_forecast_shape(self, trainer, data):
        image = trainer.forecast(data[0])
        assert image.shape == (16, 16, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_forecast_deterministic_without_noise(self, trainer, data):
        a = trainer.forecast(data[0], sample_noise=False)
        b = trainer.forecast(data[0], sample_noise=False)
        np.testing.assert_allclose(a, b)

    def test_mean_accuracy_matches_evaluate(self, trainer, data):
        trainer.fit(data, epochs=1)
        assert trainer.mean_accuracy(data) == pytest.approx(
            float(np.mean(trainer.evaluate(data))))


class TestFineTune:
    def test_transfer_improves_on_new_design(self, trainer):
        """Strategy 2: fine-tuning on pairs from an unseen design improves
        accuracy on that design (the paper's Acc.1 -> Acc.2 gain)."""
        base = make_dataset(4, size=16, design="seen")
        # The unseen design has systematically different targets.
        unseen = make_dataset(4, size=16, design="unseen", seed0=100)
        for sample in unseen:
            sample.y = np.clip(sample.y * 0.2 + 0.5, -1, 1)
        trainer.fit(base, epochs=6)
        before = trainer.mean_accuracy(unseen, tolerance=0.25)
        trainer.fine_tune(unseen[:2], epochs=8)
        after = trainer.mean_accuracy(unseen[2:], tolerance=0.25)
        # Not strictly guaranteed sample-by-sample, but with a strong target
        # shift the transfer must not be worse by a wide margin.
        assert after >= before - 0.05
