"""Dataset container, normalization, and metric tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gan import (
    Dataset,
    image_congestion_score,
    make_input_stack,
    per_pixel_accuracy,
    speedup,
    top_k_overlap,
)
from repro.gan.dataset import (
    from_unit_range,
    input_from_images,
    target_from_image,
    to_unit_range,
)
from repro.gan.metrics import regional_congestion_score
from repro.viz.colors import utilization_to_rgb
from tests.conftest import make_sample


class TestNormalization:
    def test_unit_range_roundtrip(self):
        image = np.random.default_rng(0).random((4, 4, 3)).astype(np.float32)
        np.testing.assert_allclose(from_unit_range(to_unit_range(image)),
                                   image, atol=1e-6)

    def test_input_stack_shape_and_scaling(self):
        place = np.full((8, 8, 3), 0.5, dtype=np.float32)
        connect = np.full((8, 8), 1.0, dtype=np.float32)
        x = make_input_stack(place, connect, connect_weight=0.1)
        assert x.shape == (4, 8, 8)
        np.testing.assert_allclose(x[:3], 0.0, atol=1e-6)   # 0.5 -> 0
        np.testing.assert_allclose(x[3], 0.1, atol=1e-6)    # lambda * (+1)

    def test_input_stack_validates_shapes(self):
        with pytest.raises(ValueError):
            make_input_stack(np.zeros((8, 8)), np.zeros((8, 8)))
        with pytest.raises(ValueError):
            make_input_stack(np.zeros((8, 8, 3)), np.zeros((4, 4)))

    def test_batched_input(self):
        x = input_from_images(np.zeros((8, 8, 3)), np.zeros((8, 8)))
        assert x.shape == (1, 4, 8, 8)

    def test_target_is_chw(self):
        y = target_from_image(np.zeros((8, 8, 3)))
        assert y.shape == (3, 8, 8)
        np.testing.assert_allclose(y, -1.0)


class TestDataset:
    def test_leave_one_out_split(self):
        data = Dataset([make_sample("a", seed=1), make_sample("b", seed=2),
                        make_sample("a", seed=3)])
        train, test = data.leave_one_out("a")
        assert len(test) == 2 and len(train) == 1
        assert all(s.design == "a" for s in test)
        assert all(s.design != "a" for s in train)

    def test_leave_one_out_missing_raises(self):
        data = Dataset([make_sample("a")])
        with pytest.raises(ValueError):
            data.leave_one_out("zzz")

    def test_designs_ordered_unique(self):
        data = Dataset([make_sample("b"), make_sample("a"), make_sample("b")])
        assert data.designs == ["b", "a"]

    def test_slicing_returns_dataset(self):
        data = Dataset([make_sample(seed=i) for i in range(5)])
        head = data[:2]
        assert isinstance(head, Dataset)
        assert len(head) == 2

    def test_shuffled_preserves_multiset(self):
        data = Dataset([make_sample(seed=i) for i in range(6)])
        shuffled = data.shuffled(np.random.default_rng(0))
        assert sorted(id(s) for s in data) == sorted(id(s) for s in shuffled)

    def test_save_load_roundtrip(self, tmp_path):
        data = Dataset([make_sample("a", seed=1, congestion=0.25),
                        make_sample("b", seed=2, congestion=0.75)])
        path = tmp_path / "data.npz"
        data.save(path)
        loaded = Dataset.load(path)
        assert len(loaded) == 2
        np.testing.assert_allclose(loaded[0].x, data[0].x)
        np.testing.assert_allclose(loaded[1].y, data[1].y)
        assert loaded[0].design == "a"
        assert loaded[0].true_congestion == 0.25
        assert loaded[0].placer_options["place_algorithm"] == "bounding_box"

    def test_sample_image_views(self):
        sample = make_sample()
        assert sample.y_image.shape == (8, 8, 3)
        assert sample.place_image.shape == (8, 8, 3)
        assert sample.y_image.min() >= 0 and sample.y_image.max() <= 1


class TestPerPixelAccuracy:
    def test_identical_is_one(self):
        image = np.random.default_rng(0).random((8, 8, 3))
        assert per_pixel_accuracy(image, image) == 1.0

    def test_all_wrong_is_zero(self):
        a = np.zeros((4, 4, 3))
        b = np.ones((4, 4, 3))
        assert per_pixel_accuracy(a, b) == 0.0

    def test_tolerance_boundary(self):
        a = np.zeros((1, 1, 3))
        b = np.full((1, 1, 3), 16.0 / 255.0)
        assert per_pixel_accuracy(a, b) == 1.0
        c = np.full((1, 1, 3), 17.0 / 255.0)
        assert per_pixel_accuracy(a, c) == 0.0

    def test_worst_channel_counts(self):
        a = np.zeros((1, 1, 3))
        b = np.array([[[0.0, 0.0, 0.5]]])
        assert per_pixel_accuracy(a, b) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            per_pixel_accuracy(np.zeros((2, 2, 3)), np.zeros((3, 3, 3)))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), tol=st.floats(0.0, 0.5))
    def test_bounded_and_monotone_in_tolerance(self, seed, tol):
        rng = np.random.default_rng(seed)
        a = rng.random((6, 6, 3))
        b = rng.random((6, 6, 3))
        acc = per_pixel_accuracy(a, b, tol)
        assert 0.0 <= acc <= 1.0
        assert per_pixel_accuracy(a, b, tol + 0.1) >= acc


class TestCongestionScores:
    def test_decodes_painted_utilization(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, :] = True
        image = np.zeros((4, 4, 3), dtype=np.float32)
        image[0, :] = utilization_to_rgb(0.3)
        assert image_congestion_score(image, mask) == pytest.approx(0.3,
                                                                    abs=1e-5)

    def test_requires_boolean_mask(self):
        with pytest.raises(ValueError):
            image_congestion_score(np.zeros((2, 2, 3)),
                                   np.zeros((2, 2), dtype=int))

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            image_congestion_score(np.zeros((2, 2, 3)),
                                   np.zeros((2, 2), dtype=bool))

    def test_regional_restriction(self):
        mask = np.ones((4, 4), dtype=bool)
        image = np.zeros((4, 4, 3), dtype=np.float32)
        image[:2] = utilization_to_rgb(0.9)
        image[2:] = utilization_to_rgb(0.1)
        top = np.zeros((4, 4), dtype=bool)
        top[:2] = True
        assert regional_congestion_score(image, mask, top) == pytest.approx(
            0.9, abs=1e-5)

    def test_region_without_channels_raises(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        region = np.zeros((4, 4), dtype=bool)
        region[3, 3] = True
        with pytest.raises(ValueError):
            regional_congestion_score(np.zeros((4, 4, 3)), mask, region)


class TestTopK:
    def test_perfect_prediction(self):
        scores = np.arange(20.0)
        assert top_k_overlap(scores, scores, k=10) == 1.0

    def test_reversed_prediction(self):
        true = np.arange(20.0)
        assert top_k_overlap(-true, true, k=10) == 0.0

    def test_partial_overlap(self):
        true = np.arange(10.0)
        predicted = true.copy()
        predicted[0] = 100.0  # demote the truly-best item
        # Predicted top-3: {1, 2, 3}; true top-3: {0, 1, 2} -> 2/3 overlap.
        assert top_k_overlap(predicted, true, k=3) == pytest.approx(2 / 3)

    def test_k_out_of_range_raises(self):
        with pytest.raises(ValueError):
            top_k_overlap(np.arange(5.0), np.arange(5.0), k=6)
        with pytest.raises(ValueError):
            top_k_overlap(np.arange(5.0), np.arange(5.0), k=0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            top_k_overlap(np.arange(4.0), np.arange(5.0), k=2)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500), k=st.integers(1, 8))
    def test_bounds_property(self, seed, k):
        rng = np.random.default_rng(seed)
        predicted = rng.random(16)
        true = rng.random(16)
        overlap = top_k_overlap(predicted, true, k=k)
        assert 0.0 <= overlap <= 1.0
        # Overlap is in units of 1/k.
        assert (overlap * k) == pytest.approx(round(overlap * k))


class TestSpeedup:
    def test_simple_ratio(self):
        assert speedup(9.0, 0.09) == pytest.approx(100.0)

    def test_zero_inference_raises(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
