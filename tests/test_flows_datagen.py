"""Dataset pipeline tests (Section 5 'Datasets')."""

import numpy as np
import pytest

from repro.config import SMOKE
from repro.flows import build_design_bundle, build_suite_bundles, sweep_placer_options
from repro.fpga.generators import DesignSpec, scaled_suite


@pytest.fixture(scope="module")
def bundle():
    spec = scaled_suite(SMOKE)[0]
    return build_design_bundle(spec, SMOKE, num_placements=4, seed=1)


class TestOptionSweep:
    def test_count_and_unique_seeds(self):
        options = sweep_placer_options(10, base_seed=5)
        assert len(options) == 10
        assert len({o.seed for o in options}) == 10

    def test_sweeps_all_paper_options(self):
        options = sweep_placer_options(30)
        assert len({o.alpha_t for o in options}) > 1       # ALPHA_T
        assert len({o.inner_num for o in options}) > 1     # INNER_NUM
        assert len({o.place_algorithm for o in options}) > 1

    def test_deterministic(self):
        a = sweep_placer_options(6, base_seed=2)
        b = sweep_placer_options(6, base_seed=2)
        assert a == b

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            sweep_placer_options(0)


class TestBundle:
    def test_sample_count(self, bundle):
        assert len(bundle.dataset) == 4
        assert len(bundle.placements) == 4

    def test_input_target_shapes(self, bundle):
        size = bundle.layout.image_size
        for sample in bundle.dataset:
            assert sample.x.shape == (4, size, size)
            assert sample.y.shape == (3, size, size)
            assert sample.x.dtype == np.float32

    def test_values_in_tanh_range(self, bundle):
        for sample in bundle.dataset:
            assert sample.x.min() >= -1.0 and sample.x.max() <= 1.0
            assert sample.y.min() >= -1.0 and sample.y.max() <= 1.0

    def test_distinct_placements_distinct_images(self, bundle):
        xs = [sample.x for sample in bundle.dataset]
        assert not np.allclose(xs[0], xs[1])

    def test_congestion_recorded_and_positive(self, bundle):
        for sample in bundle.dataset:
            assert sample.true_congestion > 0
            assert sample.route_seconds > 0
            assert sample.place_seconds > 0

    def test_options_recorded(self, bundle):
        options = bundle.dataset[0].placer_options
        assert set(options) == {"seed", "alpha_t", "inner_num",
                                "place_algorithm"}

    def test_heatmap_consistent_with_recorded_congestion(self, bundle):
        """Decoding the rendered ground-truth image approximates the routed
        mean utilization (clipping makes it slightly lossy)."""
        from repro.gan.metrics import image_congestion_score

        sample = bundle.dataset[0]
        decoded = image_congestion_score(sample.y_image, bundle.channel_mask)
        assert decoded == pytest.approx(min(sample.true_congestion, 1.0),
                                        abs=0.08)

    def test_cache_roundtrip(self, tmp_path):
        spec = scaled_suite(SMOKE)[1]
        fresh = build_design_bundle(spec, SMOKE, num_placements=2, seed=3,
                                    cache_dir=tmp_path)
        cached = build_design_bundle(spec, SMOKE, num_placements=2, seed=3,
                                     cache_dir=tmp_path)
        assert len(cached.dataset) == len(fresh.dataset)
        np.testing.assert_allclose(cached.dataset[0].x, fresh.dataset[0].x)
        assert cached.channel_width == fresh.channel_width
        # Replayed placements must match the original sites.
        assert (cached.placements[0].site_of
                == fresh.placements[0].site_of)

    def test_cache_is_a_sharded_store(self, tmp_path):
        from repro.data import ShardedStore

        spec = scaled_suite(SMOKE)[1]
        build_design_bundle(spec, SMOKE, num_placements=2, seed=3,
                            cache_dir=tmp_path)
        stores = [p for p in tmp_path.iterdir()
                  if ShardedStore.is_store(p)]
        assert len(stores) == 1
        store = ShardedStore.open(stores[0])
        assert store.num_samples == 2
        assert "channel_width" in store.metadata
        assert store.verify() == []

    def test_legacy_single_file_cache_converted(self, tmp_path):
        """Old <stem>.npz + <stem>.json caches load via conversion."""
        import json

        from repro.data import ShardedStore

        from repro.flows.datagen import _SWEEP_VERSION

        spec = scaled_suite(SMOKE)[1]
        fresh = build_design_bundle(spec, SMOKE, num_placements=2, seed=3)
        stem = (f"{SMOKE.name}_{spec.name}_n2_s3"
                f"_w{fresh.layout.image_size}_cw{SMOKE.connect_weight}"
                f"_v{_SWEEP_VERSION}")
        fresh.dataset.save(tmp_path / f"{stem}.npz")
        (tmp_path / f"{stem}.json").write_text(json.dumps(
            {"channel_width": fresh.channel_width, "grid_width": 5}))
        cached = build_design_bundle(spec, SMOKE, num_placements=2, seed=3,
                                     cache_dir=tmp_path)
        assert ShardedStore.is_store(tmp_path / stem)
        assert cached.channel_width == fresh.channel_width
        np.testing.assert_array_equal(cached.dataset[1].x,
                                      fresh.dataset[1].x)


class TestSuiteBundles:
    def test_shared_image_size_and_subset(self):
        bundles = build_suite_bundles(SMOKE, num_placements=2, seed=1,
                                      designs=["diffeq1", "diffeq2"])
        assert set(bundles) == {"diffeq1", "diffeq2"}
        sizes = {b.layout.image_size for b in bundles.values()}
        assert len(sizes) == 1

    def test_unknown_design_raises(self):
        with pytest.raises(ValueError):
            build_suite_bundles(SMOKE, designs=["nonexistent"])
