"""Golden-metric regression gate.

``tests/fixtures/eval/`` commits a fixed-seed dataset store, a tiny
checkpoint, and the pinned eval report the pair must keep producing.
Any change that moves a metric by more than its tolerance — a model
regression, a metric-implementation change, a data-pipeline drift —
fails here with a per-metric diff.  Intentional changes regenerate the
fixtures with ``python tests/fixtures/regen_eval_golden.py`` and commit
the result.
"""

from pathlib import Path

import pytest

from repro.data import ShardedStore
from repro.eval import (
    CheckpointForecaster,
    compare_reports,
    evaluate_store,
    evaluation_report,
    load_report,
    render_report,
)

FIXTURE_DIR = Path(__file__).parent / "fixtures" / "eval"

#: Absolute tolerance per pinned metric.  Loose enough for cross-platform
#: float drift (BLAS kernels differ), tight enough that any real change
#: to the model, the data, or a metric implementation trips the gate.
GOLDEN_TOLERANCES = {name: 1e-4 for name in (
    "accuracy", "mae", "rmse", "nrms", "ssim",
    "hotspot_precision@0.5", "hotspot_recall@0.5", "hotspot_iou@0.5",
    "hotspot_precision@0.7", "hotspot_recall@0.7", "hotspot_iou@0.7",
    "roc_auc@0.5",
)}


@pytest.fixture(scope="module")
def golden_store():
    store = ShardedStore.open(FIXTURE_DIR / "store")
    assert store.verify() == [], "golden store fixture is corrupted"
    return store


@pytest.fixture(scope="module")
def golden_report_fresh(golden_store):
    forecaster = CheckpointForecaster.from_checkpoint(
        FIXTURE_DIR / "model.npz")
    result = evaluate_store(golden_store, forecaster, batch_size=4)
    return evaluation_report(golden_store, result, forecaster.identity,
                             batch_size=4)


class TestGoldenMetrics:
    def test_metrics_match_committed_golden(self, golden_report_fresh):
        """The regression gate: fail with a readable per-metric diff."""
        golden = load_report(FIXTURE_DIR / "golden_report.json")
        comparison = compare_reports(golden, golden_report_fresh,
                                     tolerances=dict(GOLDEN_TOLERANCES),
                                     default_tolerance=1e-4)
        assert comparison.ok, (
            "eval metrics drifted from the committed golden report "
            "(regenerate with tests/fixtures/regen_eval_golden.py if "
            "intentional):\n" + comparison.format())

    def test_every_pinned_metric_is_still_reported(self,
                                                   golden_report_fresh):
        assert set(GOLDEN_TOLERANCES) == set(
            golden_report_fresh["metrics"])

    def test_dataset_fingerprint_is_pinned(self, golden_report_fresh):
        golden = load_report(FIXTURE_DIR / "golden_report.json")
        assert (golden_report_fresh["dataset"]["fingerprint"]
                == golden["dataset"]["fingerprint"]), (
            "the committed fixture store no longer hashes to the golden "
            "fingerprint — the dataset content itself changed")

    def test_checkpoint_checksum_is_pinned(self, golden_report_fresh):
        golden = load_report(FIXTURE_DIR / "golden_report.json")
        assert (golden_report_fresh["model"]["checksum"]
                == golden["model"]["checksum"])

    def test_report_bytes_stable_within_run(self, golden_store,
                                            golden_report_fresh):
        forecaster = CheckpointForecaster.from_checkpoint(
            FIXTURE_DIR / "model.npz")
        result = evaluate_store(golden_store, forecaster, batch_size=4)
        again = evaluation_report(golden_store, result,
                                  forecaster.identity, batch_size=4)
        assert render_report(again) == render_report(golden_report_fresh)
