"""Profiler: zero-cost detach, per-layer stats, gemm accounting."""

import numpy as np
import pytest

from repro.nn import Conv2d, LeakyReLU, Module, Sequential, Workspace
from repro.obs import Profiler


class TwoConv(Module):
    """A tiny container: two convs and an activation, named by attribute."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.first = Conv2d(2, 4, kernel=3, stride=1, pad=1, rng=rng)
        self.act = LeakyReLU()
        self.second = Conv2d(4, 2, kernel=3, stride=1, pad=1, rng=rng)

    def forward(self, x):
        return self.second.forward(self.act.forward(self.first.forward(x)))


@pytest.fixture()
def batch():
    return np.random.default_rng(1).normal(
        size=(2, 2, 8, 8)).astype(np.float32)


class TestAttachDetach:
    def test_disabled_means_literally_absent(self, batch):
        """Detach must leave no shims behind: the instance dict is clean
        and calls dispatch straight to the class method again."""
        model = TwoConv()
        profiler = Profiler().attach(model)
        assert "forward" in vars(model.first)
        profiler.detach()
        for leaf in (model.first, model.act, model.second):
            for method in ("forward", "backward", "forward_eval"):
                assert method not in vars(leaf)
        assert model.first.forward.__func__ is Conv2d.forward
        model.forward(batch)  # still runs
        assert profiler.attached is False

    def test_profiled_output_is_bitwise_identical(self, batch):
        reference = TwoConv().forward(batch)
        model = TwoConv()
        with Profiler().attach(model):
            profiled = model.forward(batch)
        np.testing.assert_array_equal(profiled, reference)

    def test_double_attach_rejected(self):
        model = TwoConv()
        profiler = Profiler().attach(model)
        try:
            with pytest.raises(RuntimeError, match="already wrapped"):
                Profiler().attach(model)
        finally:
            profiler.detach()

    def test_context_manager_detaches_on_exception(self, batch):
        model = TwoConv()
        with pytest.raises(RuntimeError, match="sentinel"):
            with Profiler().attach(model):
                raise RuntimeError("sentinel")
        assert "forward" not in vars(model.first)


class TestStats:
    def test_per_layer_calls_and_paths(self, batch):
        model = TwoConv()
        with Profiler().attach(model, prefix="gen.") as profiler:
            model.forward(batch)
            model.forward(batch)
            snapshot = profiler.snapshot()
        layers = snapshot["layers"]
        assert set(layers) == {"gen.first", "gen.act", "gen.second"}
        assert layers["gen.first"]["forward"]["calls"] == 2
        assert layers["gen.first"]["forward"]["ms"] >= 0
        assert snapshot["totals"]["calls"] == 6

    def test_forward_gemm_counts(self, batch):
        model = TwoConv()
        with Profiler().attach(model) as profiler:
            model.forward(batch)
            snapshot = profiler.snapshot()
        assert snapshot["layers"]["first"]["forward"]["gemms"] == 1
        # Activations do no gemms.
        assert snapshot["layers"]["act"]["forward"]["gemms"] == 0
        assert snapshot["totals"]["gemms"] == 2

    def test_backward_skipping_input_grad_counts_one_gemm(self, batch):
        conv = Conv2d(2, 4, kernel=3, stride=1, pad=1,
                      rng=np.random.default_rng(0))
        with Profiler().attach(conv) as profiler:
            out = conv.forward(batch)
            conv.backward(np.ones_like(out))                        # 2 gemms
            conv.forward(batch)
            conv.backward(np.ones_like(out), need_input_grad=False)  # 1 gemm
            snapshot = profiler.snapshot()
        assert snapshot["layers"][""]["backward"]["gemms"] == 3

    def test_sequential_leaves_get_index_paths(self, batch):
        model = Sequential(
            Conv2d(2, 4, kernel=3, stride=1, pad=1,
                   rng=np.random.default_rng(0)),
            LeakyReLU(),
        )
        with Profiler().attach(model, prefix="d.") as profiler:
            model.forward(batch)
            layers = profiler.snapshot()["layers"]
        assert set(layers) == {"d.layers.0", "d.layers.1"}

    def test_reset_zeroes_accumulators(self, batch):
        model = TwoConv()
        with Profiler().attach(model) as profiler:
            model.forward(batch)
            profiler.reset()
            snapshot = profiler.snapshot()
        assert snapshot["totals"] == {"calls": 0, "ms": 0.0, "gemms": 0}

    def test_format_table_lists_slowest_first(self, batch):
        model = TwoConv()
        with Profiler().attach(model) as profiler:
            model.forward(batch)
            table = profiler.format_table()
        lines = table.splitlines()
        assert "layer" in lines[0] and "gemms" in lines[0]
        assert len(lines) == 4  # header + three active leaves


class TestWorkspaceHighWater:
    def test_peak_tracks_high_water_and_survives_clear(self):
        workspace = Workspace()
        owner = object()
        workspace.buffer(owner, "big", (1024,), np.float32)
        peak = workspace.peak_nbytes
        assert peak >= 1024 * 4
        workspace.clear()
        assert workspace.nbytes == 0
        assert workspace.peak_nbytes == peak  # high-water survives clear

    def test_snapshot_embeds_workspace_bytes(self):
        workspace = Workspace()
        workspace.buffer(object(), "buf", (16,), np.float32)
        snapshot = Profiler().snapshot(workspace=workspace)
        assert snapshot["workspace"]["nbytes"] == workspace.nbytes
        assert snapshot["workspace"]["peak_nbytes"] == workspace.peak_nbytes
