"""Property tests for dihedral augmentation correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import NUM_DIHEDRAL, apply_dihedral, augment_pair

INDICES = st.integers(0, NUM_DIHEDRAL - 1)


def random_pair(seed: int, size: int = 6):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(4, size, size)).astype(np.float32)
    y = rng.normal(size=(3, size, size)).astype(np.float32)
    return x, y


class TestApplyDihedral:
    def test_identity_is_noop(self):
        x, _ = random_pair(0)
        out = apply_dihedral(x, 0)
        assert out is x                      # not even a copy

    @settings(max_examples=NUM_DIHEDRAL, deadline=None)
    @given(index=INDICES)
    def test_preserves_shape_and_values(self, index):
        x, _ = random_pair(1)
        out = apply_dihedral(x, index)
        assert out.shape == x.shape
        np.testing.assert_allclose(np.sort(out.ravel()),
                                   np.sort(x.ravel()))

    def test_all_eight_transforms_distinct(self):
        x, _ = random_pair(2)
        images = [apply_dihedral(x, i) for i in range(NUM_DIHEDRAL)]
        for i in range(NUM_DIHEDRAL):
            for j in range(i + 1, NUM_DIHEDRAL):
                assert not np.array_equal(images[i], images[j]), (i, j)

    @settings(max_examples=NUM_DIHEDRAL, deadline=None)
    @given(index=INDICES)
    def test_transforms_channels_jointly(self, index):
        """Every channel undergoes the same spatial transform."""
        x, _ = random_pair(3)
        out = apply_dihedral(x, index)
        for channel in range(x.shape[0]):
            np.testing.assert_array_equal(
                out[channel], apply_dihedral(x[channel], index))

    def test_rejects_invalid_index(self):
        x, _ = random_pair(4)
        with pytest.raises(ValueError):
            apply_dihedral(x, NUM_DIHEDRAL)
        with pytest.raises(ValueError):
            apply_dihedral(x, -1)


class TestAugmentPair:
    @settings(max_examples=24, deadline=None)
    @given(index=INDICES, seed=st.integers(0, 100))
    def test_input_and_target_get_identical_transform(self, index, seed):
        """The acceptance property: whatever dihedral transform hits the
        input stack hits the target identically — congestion stays over
        the tiles that produced it."""
        x, y = random_pair(seed)
        out_x, out_y = augment_pair(x, y, index)
        np.testing.assert_array_equal(out_x, apply_dihedral(x, index))
        np.testing.assert_array_equal(out_y, apply_dihedral(y, index))
        # Spatial alignment: a marker planted at one pixel of both arrays
        # lands at the same (row, col) in both outputs.
        marked_x = np.zeros_like(x)
        marked_y = np.zeros_like(y)
        marked_x[0, 1, 2] = 1.0
        marked_y[0, 1, 2] = 1.0
        moved_x, moved_y = augment_pair(marked_x, marked_y, index)
        assert (np.argwhere(moved_x[0] == 1.0).tolist()
                == np.argwhere(moved_y[0] == 1.0).tolist())

    def test_identity_pair_is_noop(self):
        x, y = random_pair(5)
        out_x, out_y = augment_pair(x, y, 0)
        assert out_x is x
        assert out_y is y

    @settings(max_examples=NUM_DIHEDRAL, deadline=None)
    @given(index=INDICES)
    def test_involution_or_inverse_exists(self, index):
        """Each transform has an inverse within the group (it permutes
        pixels), so some second transform restores the original."""
        x, _ = random_pair(6)
        transformed = apply_dihedral(x, index)
        restored = [np.array_equal(apply_dihedral(transformed, j), x)
                    for j in range(NUM_DIHEDRAL)]
        assert any(restored)
